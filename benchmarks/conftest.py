"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure: it computes the
series through the memoized experiment driver, writes an ASCII artifact
under ``benchmarks/results/``, prints it, and asserts the *shape* the
paper reports (who wins, rough factors, crossovers) — never absolute
cycle counts, which depend on the simulator substrate.
"""

from __future__ import annotations

import pytest

#: The 11 resource-sensitive apps of paper Table 3 (Figure 13 order).
SENSITIVE = [
    "BLK", "CFD", "DTC", "ESP", "FDTD", "HST", "KMN", "LBM", "SPMV",
    "STE", "STM",
]

#: The 11 resource-insensitive apps (Figure 19).
INSENSITIVE = [
    "BAK", "BFS", "B+T", "GAU", "LUD", "MUM", "NEED", "PTF", "PATH",
    "SGM", "SRAD",
]

#: Apps whose default register count already matches the demand
#: (Section 7.2: register utilization not improved, CRAT == OptTLP).
DEFAULT_OPTIMAL = ["STM", "SPMV", "KMN", "LBM"]

#: Apps where spilling survives CRAT and Algorithm 1 matters (Fig 16).
SPILLING_APPS = ["DTC", "FDTD", "CFD", "STE"]


@pytest.fixture
def record(capsys):
    """Print + persist one experiment table."""
    from repro.bench import write_result

    def _record(name: str, text: str) -> None:
        path = write_result(name, text)
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
