"""Ablation: allocator design choices (DESIGN.md Section 5).

Compares spill volume across: Briggs-optimistic coloring (default),
pessimistic Chaitin, coalescing off, rematerialization off, and the
linear-scan reference — quantifying what each classic extension buys.
"""

from conftest import run_once

from repro.bench import format_table
from repro.regalloc import allocate, allocate_linear_scan, register_demand
from repro.workloads import load_workload

APPS = ["CFD", "HST", "BLK"]


def _collect():
    rows = []
    for abbr in APPS:
        workload = load_workload(abbr)
        limit = workload.default_reg
        base = dict(enable_shm_spill=False)

        full = allocate(workload.kernel, limit, **base)
        pessimistic = allocate(workload.kernel, limit, optimistic=False, **base)
        no_coalesce = allocate(workload.kernel, limit, coalesce=False, **base)
        no_remat = allocate(workload.kernel, limit, remat=False, **base)
        linear = allocate_linear_scan(workload.kernel, limit)

        rows.append(
            (
                abbr,
                limit,
                full.num_local_insts,
                pessimistic.num_local_insts,
                no_coalesce.num_local_insts,
                no_remat.num_local_insts,
                linear.num_local_insts,
            )
        )
    return rows


def test_ablation_allocator_features(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "reg limit", "full", "pessimistic", "no-coalesce",
         "no-remat", "linear-scan"],
        rows,
        title="Ablation: static spill instructions by allocator variant",
    )
    record("ablation_allocator", table)

    for row in rows:
        abbr, _, full, pessimistic, no_coalesce, no_remat, linear = row
        # Briggs optimism never spills more than pessimistic Chaitin.
        assert full <= pessimistic, abbr
        # Rematerialization strictly reduces memory spills here (the
        # workloads carry constant ballast).
        assert full <= no_remat, abbr
        # The full allocator at least matches the linear-scan reference.
        assert full <= linear, abbr
    # Remat matters materially on at least one app.
    assert any(r[5] > r[2] for r in rows)
