"""Ablation: single-SM + interference slice vs full multi-SM simulation.

All per-figure benchmarks simulate ONE SM with an interference-divided
L2 slice (DESIGN.md Section 4b).  This bench validates that shortcut on
the cache-sensitive apps: the chip-level model (N SMs contending the
real shared L2 and a shared DRAM channel) must rank TLPs the same way
and produce comparable per-block throughput.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.sim import makespan, simulate_multi_sm, simulate_traces, trace_grid
from repro.core import default_allocation

APPS = ["KMN", "HST"]
NUM_SMS = 4


def _collect():
    rows = []
    rank_agreement = {}
    for abbr in APPS:
        ev = evaluate_app(abbr)
        workload = ev.workload
        usage = ev.crat.usage
        allocation = default_allocation(workload.kernel, usage)
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        single_cycles = {}
        multi_cycles = {}
        for tlp in range(1, usage.max_tlp + 1):
            single = simulate_traces(traces, FERMI, tlp)
            multi = simulate_multi_sm(traces, FERMI, tlp, num_sms=NUM_SMS)
            single_cycles[tlp] = single.cycles / len(traces)
            multi_cycles[tlp] = makespan(multi) / (len(traces) / NUM_SMS)
            rows.append(
                (abbr, tlp, f"{single_cycles[tlp]:.0f}",
                 f"{multi_cycles[tlp]:.0f}",
                 multi_cycles[tlp] / single_cycles[tlp])
            )
        best_single = min(single_cycles, key=single_cycles.get)
        best_multi = min(multi_cycles, key=multi_cycles.get)
        rank_agreement[abbr] = (best_single, best_multi)
    return rows, rank_agreement


def test_ablation_single_sm_is_representative(benchmark, record):
    rows, rank_agreement = run_once(benchmark, _collect)
    table = format_table(
        ["app", "TLP", "cycles/block (1 SM)", f"cycles/block ({NUM_SMS} SM)",
         "ratio"],
        rows,
        title="Ablation: single-SM interference model vs chip-level simulation",
    )
    summary = "\n".join(
        f"{abbr}: best TLP single={s}, multi={m}"
        for abbr, (s, m) in rank_agreement.items()
    )
    record("ablation_multisim", table + "\n" + summary)

    # Shape: per-block throughput within 2x at every point, and the
    # optimal TLP agrees within one block.
    for abbr, tlp, _, _, ratio in rows:
        assert 0.5 <= ratio <= 2.0, (abbr, tlp, ratio)
    for abbr, (best_single, best_multi) in rank_agreement.items():
        assert abs(best_single - best_multi) <= 1, (abbr, best_single, best_multi)
