"""Ablation: design-space pruning + TPSC vs exhaustive search.

The pruned staircase plus the TPSC metric must land within a few
percent of the point an exhaustive simulation of every stair point
would pick — the paper's justification for pruning ("the overhead of
design space exploration is so small that can be ignored" precisely
because the pruned set is tiny).
"""

from conftest import run_once

from repro.arch import FERMI, compute_occupancy, max_reg_at_tlp
from repro.bench import evaluate_app, format_table
from repro.regalloc import allocate
from repro.sim import simulate_traces, trace_grid
from repro.workloads import load_workload

APPS = ["CFD", "HST", "BLK"]


def _exhaustive_best(abbr):
    """Simulate every stair point (no OptTLP pruning, no TPSC)."""
    workload = load_workload(abbr)
    ev = evaluate_app(abbr)
    usage = ev.crat.usage
    best = None
    evaluated = 0
    ceiling = compute_occupancy(
        FERMI, usage.min_reg, usage.shm_size, usage.block_size
    ).blocks
    for tlp in range(1, ceiling + 1):
        reg = min(
            max_reg_at_tlp(FERMI, tlp, usage.shm_size, usage.block_size),
            usage.max_reg,
            FERMI.max_reg_per_thread,
        )
        try:
            allocation = allocate(workload.kernel, reg, enable_shm_spill=False)
        except Exception:
            continue
        occ = compute_occupancy(
            FERMI, allocation.reg_per_thread, usage.shm_size, usage.block_size
        )
        if occ.blocks < tlp:
            continue
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        cycles = simulate_traces(traces, FERMI, tlp).cycles
        evaluated += 1
        if best is None or cycles < best[2]:
            best = (reg, tlp, cycles)
    return best, evaluated


def _collect():
    rows = []
    for abbr in APPS:
        ev = evaluate_app(abbr)
        best, evaluated = _exhaustive_best(abbr)
        rows.append(
            (
                abbr,
                f"({ev.crat.reg},{ev.crat.tlp})",
                len(ev.crat.candidates),
                f"({best[0]},{best[1]})",
                evaluated,
                ev.crat.sim.cycles / best[2],
            )
        )
    return rows


def test_ablation_pruned_search_near_exhaustive(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "CRAT point", "candidates scored", "exhaustive best",
         "points simulated", "CRAT/exhaustive cycles"],
        rows,
        title="Ablation: pruned TPSC search vs exhaustive simulation",
    )
    record("ablation_pruning", table)

    for row in rows:
        abbr, _, n_candidates, _, n_sim, ratio = row
        # The pruned search stays within ~1/3 of the exhaustive optimum
        # (TPSC prefers spill-free points; the paper accepts the same
        # bounded slip in exchange for a prediction-only search).
        assert ratio <= 1.35, (abbr, ratio)
        # And it scored no more candidates than the exhaustive pass
        # simulated (the whole point of pruning + prediction).
        assert n_candidates <= n_sim
