"""Ablation: spill-stack split granularity (paper's future work).

Algorithm 1 splits the spill stack by data type; the paper notes that
"alternative split methods may lead to different result, we leave it as
future work."  This bench compares by-type (paper), single-stack, and
per-variable splits on knapsack gain under the same budget.
"""

from conftest import run_once

from repro.bench import format_table
from repro.cfg import LivenessInfo
from repro.regalloc import (
    allocate,
    plan_shared_spilling,
    split_by_type,
    split_per_variable,
    split_single,
)
from repro.workloads import load_workload

APPS = ["CFD", "DTC", "STE"]
BUDGETS = [2048, 6144, 12288]


def _collect():
    rows = []
    for abbr in APPS:
        workload = load_workload(abbr)
        # Get the real spill set at the default allocation.
        allocation = allocate(
            workload.kernel, workload.default_reg, enable_shm_spill=False
        )
        spilled = allocation.spilled
        info = LivenessInfo(workload.kernel)
        for budget in BUDGETS:
            gains = {}
            for name, split in (
                ("by-type", split_by_type),
                ("single", split_single),
                ("per-var", split_per_variable),
            ):
                plan = plan_shared_spilling(
                    spilled, info, budget, workload.kernel.block_size, split=split
                )
                gains[name] = plan.total_gain
            rows.append(
                (abbr, budget, len(spilled), gains["single"], gains["by-type"],
                 gains["per-var"])
            )
    return rows


def test_ablation_split_granularity(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "budget B", "spilled vars", "gain single", "gain by-type",
         "gain per-var"],
        rows,
        title="Ablation: Algorithm 1 sub-stack split granularity",
    )
    record("ablation_split", table)

    for abbr, budget, n, single, by_type, per_var in rows:
        # Finer splits never lose gain: per-variable >= by-type >= single.
        assert per_var >= by_type >= single, (abbr, budget)
    # The paper's by-type split recovers most of the per-variable gain
    # somewhere (cheap to implement, nearly as good).
    recoverable = [r for r in rows if r[5] > 0]
    assert recoverable
    assert any(r[4] >= 0.6 * r[5] for r in recoverable)
    # A tight budget must show the granularity gap (single-stack fails
    # to fit where sub-stacks fit).
    assert any(r[4] > r[3] for r in rows)
