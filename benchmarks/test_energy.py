"""Paper Section 7.2 (energy): CRAT saves energy over OptTLP.

"Due to the performance gain, experiments show that CRAT achieves on
average 16.5% energy savings compared with OptTLP."  Shorter runtime
cuts static energy; removed spill traffic cuts L1/L2/DRAM energy.
"""

from conftest import SENSITIVE, run_once

from repro.bench import evaluate_app, format_table, geomean


def _collect():
    rows = []
    for abbr in SENSITIVE:
        ev = evaluate_app(abbr)
        opttlp = ev.energy_of("opttlp")
        crat = ev.energy_of("crat")
        rows.append((abbr, opttlp, crat, 1.0 - crat / opttlp))
    return rows


def test_energy_savings(benchmark, record):
    rows = run_once(benchmark, _collect)
    mean_saving = sum(r[3] for r in rows) / len(rows)
    table = format_table(
        ["app", "OptTLP energy (nJ)", "CRAT energy (nJ)", "saving"],
        [(a, f"{o:.0f}", f"{c:.0f}", f"{s:.1%}") for a, o, c, s in rows],
        title="Energy: CRAT vs OptTLP (GPUWattch-style model)",
    )
    record(
        "energy",
        table + f"\nmean saving: {mean_saving:.1%} (paper: 16.5%)",
    )

    # Shape: CRAT saves energy on average, in the paper's neighbourhood.
    assert 0.03 <= mean_saving <= 0.45
    # No app burns dramatically more energy under CRAT.
    assert all(s >= -0.08 for _, _, _, s in rows)
    # The spill-heavy apps save the most (their DRAM traffic vanished).
    heavy = [s for a, _, _, s in rows if a in ("CFD", "DTC", "STE", "FDTD")]
    light = [s for a, _, _, s in rows if a in ("KMN", "LBM", "SPMV", "STM")]
    assert min(heavy) > max(light) - 0.05
