"""Extension: CRAT composed with static cache bypassing (paper Sec. 8).

"Our CRAT framework can be used together with cache bypassing
techniques to further improve the cache performance."  This bench
applies the static bypass pass to the CRAT-chosen kernel of the
streaming-heavy apps and measures the composition.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.opt import apply_static_bypass
from repro.sim import simulate_traces, trace_grid

STREAMING_APPS = ["LBM", "SPMV", "BLK"]


def _collect():
    rows = []
    for abbr in STREAMING_APPS:
        ev = evaluate_app(abbr)
        workload = ev.workload
        crat_kernel = ev.crat.chosen.allocation.kernel
        bypass = apply_static_bypass(crat_kernel)
        traces = trace_grid(
            bypass.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        sim = simulate_traces(traces, FERMI, ev.crat.tlp)
        rows.append(
            (
                abbr,
                bypass.bypassed_loads,
                f"{ev.crat.sim.cycles:.0f}",
                f"{sim.cycles:.0f}",
                ev.crat.sim.cycles / sim.cycles,
                f"{ev.crat.sim.l1_hit_rate:.1%}",
                f"{sim.l1_hit_rate:.1%}",
            )
        )
    return rows


def test_extension_crat_plus_bypassing(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "bypassed loads", "CRAT cycles", "CRAT+bypass cycles",
         "extra speedup", "L1 hit (CRAT)", "L1 hit (+bypass)"],
        rows,
        title="Extension: CRAT composed with static cache bypassing",
    )
    record("extension_bypass", table)

    # Shape: bypassing composes — streaming apps mark loads and never
    # lose materially; at least one gains.
    marked = [r for r in rows if r[1] > 0]
    assert marked, "streaming apps must have bypassable loads"
    assert all(r[4] >= 0.97 for r in rows)
    assert any(r[4] >= 1.01 for r in marked)
