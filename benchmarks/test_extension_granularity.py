"""Extension: throttling granularity — warps [2] vs thread blocks [3].

Paper Section 2.1: "The granularity of thread throttling can vary from
fine-grained (warps) [2] to coarse-grained (thread blocks) [3]."  The
paper builds on block-level throttling; this bench sweeps both knobs on
the cache-sensitive apps and compares their best points — fine-grained
limiting can land between two block-level stairs.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.core import default_allocation
from repro.sim import trace_grid
from repro.sim.sm import SMSimulator

APPS = ["KMN", "STM", "HST"]


def _collect():
    rows = []
    for abbr in APPS:
        ev = evaluate_app(abbr)
        workload = ev.workload
        usage = ev.crat.usage
        allocation = default_allocation(workload.kernel, usage)
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        warps_per_block = workload.kernel.block_size // FERMI.warp_size

        block_best = None
        for tlp in range(1, usage.max_tlp + 1):
            cycles = SMSimulator(FERMI, traces, tlp=tlp).run().cycles
            if block_best is None or cycles < block_best[1]:
                block_best = (tlp, cycles)

        warp_best = None
        max_warps = usage.max_tlp * warps_per_block
        limits = sorted({w for w in range(2, max_warps + 1, 2)} | {max_warps})
        for limit in limits:
            cycles = SMSimulator(
                FERMI, traces, tlp=usage.max_tlp, warp_limit=limit
            ).run().cycles
            if warp_best is None or cycles < warp_best[1]:
                warp_best = (limit, cycles)

        rows.append(
            (
                abbr,
                f"TLP={block_best[0]} ({block_best[0] * warps_per_block} warps)",
                f"{block_best[1]:.0f}",
                f"{warp_best[0]} warps",
                f"{warp_best[1]:.0f}",
                block_best[1] / warp_best[1],
            )
        )
    return rows


def test_extension_throttling_granularity(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "best block-level", "cycles", "best warp-level", "cycles",
         "warp/block speedup"],
        rows,
        title="Extension: thread-throttling granularity (warps vs blocks)",
    )
    record("extension_granularity", table)

    # Shape: fine-grained throttling matches or beats coarse-grained on
    # every cache-sensitive app (it can stop between stairs), and wins
    # outright somewhere.
    assert all(r[5] >= 0.97 for r in rows)
    assert any(r[5] >= 1.03 for r in rows)
