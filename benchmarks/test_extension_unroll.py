"""Extension: unrolling + MLP scheduling under CRAT's coordination.

Unrolling with load hoisting buys memory-level parallelism at the cost
of register pressure — exactly the single-thread-performance-vs-TLP
tension CRAT manages (related work [27] applies loop optimization;
CRAT decides whether the registers it costs are worth it).  This bench
transforms cache-sensitive kernels at several unroll factors and lets
CRAT re-coordinate each variant.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.core import CRATOptimizer
from repro.opt import schedule_for_mlp, unroll_loops
from repro.regalloc import register_demand

APPS = ["KMN", "STM"]
FACTORS = [2, 4]


def _collect():
    rows = []
    for abbr in APPS:
        ev = evaluate_app(abbr)
        workload = ev.workload
        base_cycles = ev.crat.sim.cycles
        rows.append(
            (abbr, 1, register_demand(workload.kernel),
             f"({ev.crat.reg},{ev.crat.tlp})", f"{base_cycles:.0f}", 1.0)
        )
        for factor in FACTORS:
            unrolled = unroll_loops(workload.kernel, factor)
            if not unrolled.unrolled_loops:
                continue
            transformed = schedule_for_mlp(unrolled.kernel).kernel
            optimizer = CRATOptimizer(FERMI)
            result = optimizer.optimize(
                transformed,
                grid_blocks=workload.grid_blocks,
                param_sizes=workload.param_sizes,
            )
            rows.append(
                (
                    abbr,
                    factor,
                    register_demand(transformed),
                    f"({result.reg},{result.tlp})",
                    f"{result.sim.cycles:.0f}",
                    base_cycles / result.sim.cycles,
                )
            )
    return rows


def test_extension_unroll_under_crat(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "unroll", "MaxReg", "CRAT point", "cycles",
         "speedup vs CRAT(x1)"],
        rows,
        title="Extension: unrolling + load hoisting, re-coordinated by CRAT",
    )
    record("extension_unroll", table)

    by_app = {}
    for row in rows:
        by_app.setdefault(row[0], []).append(row)
    for abbr, app_rows in by_app.items():
        assert len(app_rows) >= 2, f"{abbr}: no unrolled variant ran"
        # Pressure grows with the unroll factor...
        demands = [r[2] for r in app_rows]
        assert demands == sorted(demands), abbr
        # ...and CRAT turns the transformation into a net win somewhere.
        assert max(r[5] for r in app_rows[1:]) >= 1.05, abbr
        # Coordination never lets the transformed kernel collapse.
        assert all(r[5] >= 0.8 for r in app_rows), abbr
