"""Paper Figure 1: thread throttling helps, but strands registers.

Figure 1(a): OptTLP outperforms MaxTLP on the resource-sensitive suite
(paper: 1.42X average).  Figure 1(b): the throttled configuration
leaves a large fraction of the register file unused (paper: 51.3%
average waste at OptTLP vs MaxTLP utilization).
"""

from conftest import SENSITIVE, run_once

from repro.bench import evaluate_app, format_table, geomean, write_result


def _collect():
    rows = []
    for abbr in SENSITIVE:
        ev = evaluate_app(abbr)
        maxtlp = ev.baselines["maxtlp"]
        opttlp = ev.baselines["opttlp"]
        speedup = maxtlp.sim.cycles / opttlp.sim.cycles
        util_max = ev.register_utilization_of("maxtlp")
        util_opt = ev.register_utilization_of("opttlp")
        rows.append(
            (abbr, maxtlp.tlp, opttlp.tlp, speedup, util_max, util_opt)
        )
    return rows


def test_fig01_throttling_gain_and_register_waste(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "MaxTLP", "OptTLP", "OptTLP speedup", "util@MaxTLP", "util@OptTLP"],
        rows,
        title="Fig 1: thread throttling benefit and register waste (vs MaxTLP)",
    )
    speedups = [r[3] for r in rows]
    summary = (
        f"\nthrottling geomean speedup: {geomean(speedups):.3f} "
        f"(paper: ~1.42X)\n"
        f"mean register utilization at OptTLP: "
        f"{sum(r[5] for r in rows) / len(rows):.1%} (paper: ~48.7%)"
    )
    record("fig01_throttling", table + summary)

    # Shape assertions.
    # (1) Throttling never hurts: OptTLP is the profile minimum.
    assert all(s >= 1.0 for s in speedups)
    # (2) At least one app gains substantially from throttling (KMN).
    assert max(speedups) >= 1.3
    # (3) Throttled register utilization is visibly below full for the
    #     throttled apps: registers are being stranded.
    throttled = [r for r in rows if r[2] < r[1]]
    assert throttled, "some apps must throttle below MaxTLP"
    assert all(r[5] < 0.95 for r in throttled)
