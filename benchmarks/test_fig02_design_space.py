"""Paper Figure 2: the (reg, TLP) design space of CFD.

The paper sweeps register-per-thread against TLP on real hardware and
finds a non-trivial interior optimum ("CRAT is (reg=50, TLP=5), 1.78X
over MaxTLP" on GTX680).  Here the sweep runs on the simulator over the
staircase: for each feasible TLP, the rightmost register count, plus
sub-stair points, simulated end to end.
"""

from conftest import run_once

from repro.arch import FERMI, compute_occupancy, max_reg_at_tlp
from repro.bench import format_table, write_result
from repro.core import collect_resource_usage, default_allocation
from repro.regalloc import allocate
from repro.sim import simulate_traces, trace_grid
from repro.workloads import load_workload


def _sweep():
    workload = load_workload("CFD")
    usage = collect_resource_usage(
        workload.kernel, FERMI, default_reg=workload.default_reg
    )
    rows = []
    reg_values = sorted(
        {
            min(max_reg_at_tlp(FERMI, tlp, usage.shm_size, usage.block_size),
                FERMI.max_reg_per_thread)
            for tlp in range(1, 6)
        }
        | {usage.default_reg, 24, 28}
    )
    for reg in reg_values:
        try:
            allocation = allocate(workload.kernel, reg, enable_shm_spill=False)
        except Exception:
            continue
        occ = compute_occupancy(
            FERMI, allocation.reg_per_thread, usage.shm_size, usage.block_size
        )
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        for tlp in range(1, occ.blocks + 1):
            result = simulate_traces(traces, FERMI, tlp)
            rows.append((reg, tlp, result.cycles, result.ipc))
    return rows, usage


def test_fig02_design_space_surface(benchmark, record):
    rows, usage = run_once(benchmark, _sweep)
    best = min(rows, key=lambda r: r[2])
    corner = [r for r in rows if r[0] == usage.default_reg]
    corner_best = min(corner, key=lambda r: r[2])
    table = format_table(
        ["reg/thread", "TLP", "cycles", "IPC"],
        [(r[0], r[1], f"{r[2]:.0f}", r[3]) for r in rows],
        title="Fig 2: CFD design space (reg per thread x TLP)",
    )
    summary = (
        f"\nbest point: (reg={best[0]}, TLP={best[1]}) at {best[2]:.0f} cycles"
        f"\nbest at default reg {usage.default_reg}: TLP={corner_best[1]}"
        f" at {corner_best[2]:.0f} cycles"
        f"\ncoordinated gain over default-reg best: "
        f"{corner_best[2] / best[2]:.2f}X"
    )
    record("fig02_design_space", table + summary)

    # Shape: the global optimum uses MORE registers than the default
    # (the coordinated point the paper finds), and beats the best pure
    # throttling point at the default allocation.
    assert best[0] > usage.default_reg
    assert best[2] < corner_best[2]
    # The surface is non-monotone in TLP at the best register count:
    # max TLP at that reg is not optimal or equals a small TLP.
    same_reg = [r for r in rows if r[0] == best[0]]
    assert max(r[1] for r in same_reg) >= best[1]
