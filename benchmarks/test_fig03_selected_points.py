"""Paper Figure 3: selected design points for CFD in detail.

Compares MaxTLP, OptTLP, OptTLP+Reg (the throttled TLP with the
registers the throttling freed), and CRAT on performance, L1 behaviour,
and register utilization — the motivating example of Section 1.
"""

from conftest import run_once

from repro.arch import FERMI, max_reg_at_tlp, register_utilization
from repro.bench import evaluate_app, format_table
from repro.regalloc import allocate
from repro.sim import simulate_traces, trace_grid


def _collect():
    ev = evaluate_app("CFD")
    usage = ev.crat.usage
    workload = ev.workload
    rows = []

    def row(name, reg, tlp, sim):
        rows.append(
            (
                name,
                reg,
                tlp,
                f"{sim.cycles:.0f}",
                f"{sim.l1_hit_rate:.1%}",
                f"{sim.mshr_stall_cycles:.0f}",
                f"{register_utilization(FERMI, reg, usage.block_size, tlp):.1%}",
            )
        )

    maxtlp = ev.baselines["maxtlp"]
    opttlp = ev.baselines["opttlp"]
    row("MaxTLP", maxtlp.reg, maxtlp.tlp, maxtlp.sim)
    row("OptTLP", opttlp.reg, opttlp.tlp, opttlp.sim)

    # OptTLP+Reg: keep the throttled TLP, raise registers to the stair.
    reg_plus = min(
        max_reg_at_tlp(FERMI, opttlp.tlp, usage.shm_size, usage.block_size),
        usage.max_reg,
        FERMI.max_reg_per_thread,
    )
    alloc_plus = allocate(workload.kernel, reg_plus, enable_shm_spill=False)
    traces = trace_grid(
        alloc_plus.kernel, FERMI, workload.grid_blocks, workload.param_sizes
    )
    sim_plus = simulate_traces(traces, FERMI, opttlp.tlp)
    row("OptTLP+Reg", alloc_plus.reg_per_thread, opttlp.tlp, sim_plus)

    row("CRAT", ev.crat.reg, ev.crat.tlp, ev.crat.sim)
    return rows, maxtlp.sim.cycles, opttlp.sim.cycles, sim_plus.cycles, ev.crat.sim.cycles


def test_fig03_selected_points(benchmark, record):
    rows, c_max, c_opt, c_plus, c_crat = run_once(benchmark, _collect)
    table = format_table(
        ["solution", "reg", "TLP", "cycles", "L1 hit", "MSHR stalls", "reg util"],
        rows,
        title="Fig 3: CFD selected design points",
    )
    record("fig03_selected_points", table)

    # Paper ordering: MaxTLP >= OptTLP >= OptTLP+Reg >= CRAT cycles.
    assert c_opt <= c_max
    assert c_plus <= c_opt * 1.02
    assert c_crat <= c_plus * 1.02
    # And CRAT improves noticeably on the throttling baseline.
    assert c_opt / c_crat >= 1.05
