"""Paper Figure 5: the impact of thread throttling on the L1.

(a) hit rate improves as TLP shrinks (locality preserved);
(b) pipeline stalls from cache-request congestion fall.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import format_table
from repro.core import collect_resource_usage, default_allocation
from repro.sim import simulate_traces, trace_grid
from repro.workloads import load_workload

CACHE_APPS = ["KMN", "STM", "HST"]


def _sweep():
    series = {}
    for abbr in CACHE_APPS:
        workload = load_workload(abbr)
        usage = collect_resource_usage(
            workload.kernel, FERMI, default_reg=workload.default_reg
        )
        allocation = default_allocation(workload.kernel, usage)
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        rows = []
        for tlp in range(1, usage.max_tlp + 1):
            result = simulate_traces(traces, FERMI, tlp)
            rows.append(
                (tlp, result.l1_hit_rate, result.mshr_stall_cycles, result.cycles)
            )
        series[abbr] = rows
    return series


def test_fig05_hit_rate_and_stalls_vs_tlp(benchmark, record):
    series = run_once(benchmark, _sweep)
    flat = [
        (abbr, tlp, f"{hit:.1%}", f"{stalls:.0f}", f"{cycles:.0f}")
        for abbr, rows in series.items()
        for tlp, hit, stalls, cycles in rows
    ]
    table = format_table(
        ["app", "TLP", "L1 hit rate", "MSHR stall cycles", "cycles"],
        flat,
        title="Fig 5: thread throttling impact on the L1 data cache",
    )
    record("fig05_cache_behavior", table)

    for abbr, rows in series.items():
        hit_low_tlp = rows[0][1]
        hit_high_tlp = rows[-1][1]
        stalls_low = rows[0][2]
        stalls_high = rows[-1][2]
        # (a) hit rate at minimal TLP clearly above the max-TLP rate.
        assert hit_low_tlp > hit_high_tlp + 0.15, abbr
        # (b) congestion stalls grow with TLP.
        assert stalls_high > stalls_low, abbr
    # KMN's collapse is dramatic (paper: +82.1% hit rate at TLP=1).
    kmn = series["KMN"]
    assert kmn[0][1] - kmn[-1][1] >= 0.5
