"""Paper Figure 6: register-per-thread impact for CFD.

(a) more registers per thread lower the achievable TLP (staircase);
(b) fewer registers per thread raise the instruction count (spills).
"""

from conftest import run_once

from repro.arch import FERMI, compute_occupancy
from repro.bench import format_table
from repro.regalloc import allocate
from repro.sim import trace_grid
from repro.workloads import load_workload


def _sweep():
    workload = load_workload("CFD")
    rows = []
    for reg in range(21, 64, 3):
        allocation = allocate(workload.kernel, reg, enable_shm_spill=False)
        occ = compute_occupancy(
            FERMI,
            allocation.reg_per_thread,
            workload.kernel.shared_bytes(),
            workload.kernel.block_size,
        )
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        dynamic_insts = sum(t.instruction_count for t in traces)
        rows.append(
            (reg, allocation.reg_per_thread, occ.blocks,
             allocation.num_local_insts, dynamic_insts)
        )
    return rows


def test_fig06_reg_vs_tlp_and_instruction_count(benchmark, record):
    rows = run_once(benchmark, _sweep)
    table = format_table(
        ["reg limit", "reg used", "TLP", "static spill insts", "dynamic insts"],
        rows,
        title="Fig 6: CFD register-per-thread vs TLP and instruction count",
    )
    record("fig06_reg_impact", table)

    tlps = [r[2] for r in rows]
    dyn = [r[4] for r in rows]
    # (a) TLP is monotone non-increasing in registers per thread.
    assert tlps == sorted(tlps, reverse=True)
    assert tlps[0] > tlps[-1]
    # (b) dynamic instruction count is monotone non-increasing as the
    # register limit grows (fewer spills), and the lowest limit pays a
    # visible overhead vs the highest.
    assert dyn == sorted(dyn, reverse=True)
    assert dyn[0] > dyn[-1] * 1.03
