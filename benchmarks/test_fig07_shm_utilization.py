"""Paper Figure 7: register vs shared-memory utilization.

Across the suite at MaxTLP, the register file is heavily used (paper
average 65.5%) while shared memory sits nearly idle (3.8%) — the slack
Algorithm 1 spends on spill sub-stacks.
"""

from conftest import INSENSITIVE, SENSITIVE, run_once

from repro.arch import FERMI, register_utilization, shared_memory_utilization
from repro.bench import format_table
from repro.core import collect_resource_usage
from repro.workloads import load_workload


def _collect():
    rows = []
    for abbr in SENSITIVE + INSENSITIVE:
        workload = load_workload(abbr)
        usage = collect_resource_usage(
            workload.kernel, FERMI, default_reg=workload.default_reg
        )
        reg_util = register_utilization(
            FERMI, usage.default_reg, usage.block_size, usage.max_tlp
        )
        shm_util = shared_memory_utilization(FERMI, usage.shm_size, usage.max_tlp)
        rows.append((abbr, usage.max_tlp, reg_util, shm_util))
    return rows


def test_fig07_register_vs_shared_memory_utilization(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "MaxTLP", "register util", "shared-mem util"],
        [(a, t, f"{r:.1%}", f"{s:.1%}") for a, t, r, s in rows],
        title="Fig 7: register file vs shared memory utilization at MaxTLP",
    )
    mean_reg = sum(r[2] for r in rows) / len(rows)
    mean_shm = sum(r[3] for r in rows) / len(rows)
    record(
        "fig07_shm_utilization",
        table + f"\nmean register util: {mean_reg:.1%} (paper 65.5%)"
        f"\nmean shared-mem util: {mean_shm:.1%} (paper 3.8%)",
    )

    # Shape: registers are the heavily used resource; shared memory is
    # mostly idle, leaving the spare capacity CRAT exploits.
    assert mean_reg > 0.45
    assert mean_shm < 0.25
    assert mean_reg > 3 * mean_shm
