"""Paper Figure 8: which variable to spill matters (FDTD's var1/var2).

Two spill candidates with long live ranges differ in access frequency;
spilling the colder one (var2) keeps the hot one (var1) in a register
and wins — "different variables have different spilling cost and
benefit" (Section 2.2).  The allocator's weighted spill heuristic must
make the same choice on its own.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.cfg import LivenessInfo
from repro.bench import format_table
from repro.ptx import CmpOp, DType, KernelBuilder, Space
from repro.regalloc import allocate, insert_spill_code, register_demand
from repro.sim import simulate


def var1_var2_kernel():
    """var1 updated every iteration (hot); var2 touched once at the end."""
    b = KernelBuilder("fdtd_vars", block_size=128)
    inp = b.param("input", DType.U64)
    out = b.param("output", DType.U64)
    tid = b.special("%tid.x")
    t64 = b.cvt(tid, DType.U64)
    off = b.mul(t64, b.imm(4, DType.U64), DType.U64)
    base = b.add(b.addr_of(inp), off, DType.U64)
    var1 = b.ld(Space.GLOBAL, base, offset=0, dtype=DType.F32)   # hot
    var2 = b.ld(Space.GLOBAL, base, offset=4, dtype=DType.F32)   # cold
    fill = [b.ld(Space.GLOBAL, base, offset=8 + 4 * j, dtype=DType.F32)
            for j in range(6)]
    i = b.mov(b.imm(0, DType.S32))
    loop = b.label("loop")
    done = b.label("done")
    b.place(loop)
    p = b.setp(CmpOp.GE, i, b.imm(24, DType.S32))
    b.bra(done, guard=p)
    v = b.ld(Space.GLOBAL, base, offset=64, dtype=DType.F32)
    b.mad(var1, b.imm(0.99, DType.F32), v, dst=var1)  # var1: every iter
    for f in fill:
        b.mad(f, b.imm(0.999, DType.F32), var1, dst=f)
    b.add(i, b.imm(1, DType.S32), dst=i)
    b.bra(loop)
    b.place(done)
    total = b.add(var1, var2)  # var2: single use
    for f in fill:
        total = b.add(total, f)
    oaddr = b.add(b.addr_of(out), off, DType.U64)
    b.st(Space.GLOBAL, oaddr, total)
    return b.build(), var1.name, var2.name


def _run():
    kernel, var1, var2 = var1_var2_kernel()
    sizes = {"input": 1 << 16, "output": 1 << 16}

    def cycles_spilling(name):
        spilled = insert_spill_code(
            kernel, {name: DType.F32}, space=Space.SHARED,
            stack_name="ShmSpill", per_thread_indexing=True,
        )
        return simulate(spilled.kernel, FERMI, tlp=4, grid_blocks=8,
                        param_sizes=sizes).cycles

    baseline = simulate(kernel, FERMI, tlp=4, grid_blocks=8,
                        param_sizes=sizes).cycles
    spill_hot = cycles_spilling(var1)
    spill_cold = cycles_spilling(var2)

    # The allocator's own choice under pressure of one register.
    demand = register_demand(kernel)
    allocation = allocate(kernel, demand - 1, enable_shm_spill=False,
                          remat=False, rename=False)
    info = LivenessInfo(kernel)
    weights = {name: info.ranges[name].weight for name in (var1, var2)}
    return baseline, spill_hot, spill_cold, allocation.spilled, var1, var2, weights


def test_fig08_spill_the_cold_variable(benchmark, record):
    baseline, spill_hot, spill_cold, chosen, var1, var2, weights = run_once(
        benchmark, _run
    )
    table = format_table(
        ["variant", "cycles", "slowdown vs no-spill"],
        [
            ("no spill", f"{baseline:.0f}", 1.0),
            (f"spill var1 ({var1}, hot)", f"{spill_hot:.0f}", spill_hot / baseline),
            (f"spill var2 ({var2}, cold)", f"{spill_cold:.0f}", spill_cold / baseline),
        ],
        title="Fig 8: spilling the hot vs the cold long-lived variable (FDTD-style)",
    )
    record(
        "fig08_spill_choice",
        table + f"\nallocator spilled under pressure: {sorted(chosen)}",
    )

    # Shape: spilling the cold variable costs less than the hot one.
    assert spill_cold < spill_hot
    # The access-frequency signal exists and points the right way.
    assert weights[var1] > weights[var2]
    # The allocator spontaneously spills var2, not var1.
    assert var2 in chosen
    assert var1 not in chosen
