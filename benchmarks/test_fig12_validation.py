"""Paper Figure 12: cross-validation of spill volume vs a reference.

The paper compares its allocator's spill load/store bytes against nvcc
across register limits for CFD, finding close agreement with small
discrepancies at a couple of points (different algorithms, PTX type
sensitivity).  nvcc is unavailable offline; a genuinely different
algorithm — linear scan — plays the reference role.
"""

from conftest import run_once

from repro.bench import format_table
from repro.regalloc import allocate, allocate_linear_scan
from repro.workloads import load_workload


def _sweep():
    workload = load_workload("CFD")
    rows = []
    for reg in range(30, 64, 2):
        cb = allocate(workload.kernel, reg, enable_shm_spill=False, remat=False)
        ls = allocate_linear_scan(workload.kernel, reg)
        rows.append((reg, cb.static_spill_bytes, ls.static_spill_bytes))
    return rows


def test_fig12_spill_bytes_vs_reference_allocator(benchmark, record):
    rows = run_once(benchmark, _sweep)
    table = format_table(
        ["reg limit", "CRAT spill bytes", "linear-scan spill bytes"],
        rows,
        title="Fig 12: CFD static spill bytes, Chaitin-Briggs vs linear scan",
    )
    record("fig12_validation", table)

    # Shape: both allocators' spill volume decreases with the limit and
    # they agree within small factors at most points (the paper reports
    # "very similar except when Reg=32 and Reg=35").
    crat = [r[1] for r in rows]
    ref = [r[2] for r in rows]
    # Decreasing trend with small local wiggle (heuristic allocators
    # are not strictly monotone, nor is nvcc in the paper's Fig 12).
    assert crat[0] > crat[-1]
    assert ref[0] > ref[-1]
    for a, b in zip(crat, crat[2:]):
        assert b <= a * 1.1 + 16
    for a, b in zip(ref, ref[2:]):
        assert b <= a * 1.1 + 16
    close = sum(
        1
        for c, l in zip(crat, ref)
        if c == l == 0 or (c > 0 and l > 0 and max(c, l) / max(1, min(c, l)) <= 2.5)
    )
    assert close >= int(0.7 * len(rows)), (crat, ref)
    # The graph-coloring allocator never spills more than linear scan.
    assert all(c <= l for c, l in zip(crat, ref))
