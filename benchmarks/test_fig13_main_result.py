"""Paper Figure 13 — the headline result.

MaxTLP, OptTLP, CRAT-local, and CRAT on the 11 resource-sensitive
apps, normalized to OptTLP.  The paper reports CRAT-local at 1.17X and
CRAT at 1.25X geometric mean (up to 1.79X); on our simulator substrate
the shape must hold: CRAT > CRAT-local >= OptTLP > MaxTLP overall, with
the per-app families behaving as Section 7.2 describes.
"""

from conftest import DEFAULT_OPTIMAL, SENSITIVE, run_once

from repro.bench import evaluate_app, format_table, geomean


def _collect():
    rows = []
    for abbr in SENSITIVE:
        ev = evaluate_app(abbr)
        rows.append(
            (
                abbr,
                ev.speedup("maxtlp"),
                1.0,
                ev.speedup("crat-local"),
                ev.speedup("crat"),
            )
        )
    return rows


def test_fig13_crat_headline(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "MaxTLP", "OptTLP", "CRAT-local", "CRAT"],
        rows,
        title="Fig 13: performance normalized to OptTLP (resource-sensitive suite)",
    )
    g_max = geomean([r[1] for r in rows])
    g_local = geomean([r[3] for r in rows])
    g_crat = geomean([r[4] for r in rows])
    summary = (
        f"\ngeomean: MaxTLP {g_max:.3f}, CRAT-local {g_local:.3f} (paper 1.17),"
        f" CRAT {g_crat:.3f} (paper 1.25, max 1.79)"
        f"\nmax CRAT speedup: {max(r[4] for r in rows):.2f}"
    )
    record("fig13_main_result", table + summary)

    by_app = {r[0]: r for r in rows}

    # Headline shape: CRAT beats the thread-throttling baseline by a
    # geometric mean in the paper's neighbourhood.
    assert 1.08 <= g_crat <= 1.55, g_crat
    assert max(r[4] for r in rows) <= 2.6
    # CRAT >= CRAT-local overall (shared-memory spilling only helps).
    assert g_crat >= g_local - 1e-9
    # MaxTLP is never better than OptTLP.
    assert g_max <= 1.0 + 1e-9

    # Section 7.2 families:
    # (1) default-optimal apps gain nothing (utilization unchanged).
    for abbr in DEFAULT_OPTIMAL:
        assert abs(by_app[abbr][4] - 1.0) < 0.05, abbr
    # (2) every non-default-optimal app improves.
    improving = [r for r in rows if r[0] not in DEFAULT_OPTIMAL]
    assert all(r[4] >= 1.05 for r in improving)
    # (3) apps whose demand fits under the cap eliminate spills, so
    #     shared-memory spilling adds nothing there (CRAT == CRAT-local).
    for abbr in ("BLK", "ESP"):
        assert abs(by_app[abbr][4] - by_app[abbr][3]) < 0.08, abbr
