"""Paper Figure 14: the TLP each scheme selects.

CRAT runs far fewer blocks than MaxTLP (paper: 2.6 vs 5.1 average),
trading parallelism for registers; KMN collapses to a single block.
"""

from conftest import SENSITIVE, run_once

from repro.bench import evaluate_app, format_table


def _collect():
    return [
        (abbr, evaluate_app(abbr).tlp_of("maxtlp"), evaluate_app(abbr).tlp_of("crat"))
        for abbr in SENSITIVE
    ]


def test_fig14_selected_tlp(benchmark, record):
    rows = run_once(benchmark, _collect)
    avg_max = sum(r[1] for r in rows) / len(rows)
    avg_crat = sum(r[2] for r in rows) / len(rows)
    table = format_table(
        ["app", "MaxTLP blocks/SM", "CRAT blocks/SM"],
        rows,
        title="Fig 14: selected TLP per scheme",
    )
    record(
        "fig14_selected_tlp",
        table + f"\naverage: MaxTLP {avg_max:.1f} (paper 5.1), "
        f"CRAT {avg_crat:.1f} (paper 2.6)",
    )

    # Shape: CRAT's average TLP is clearly below MaxTLP's.
    assert avg_crat < avg_max * 0.8
    # No scheme ever exceeds the hardware maximum.
    assert all(r[2] <= r[1] for r in rows)
    # KMN throttles hardest (paper: 1 block vs 6).
    kmn = next(r for r in rows if r[0] == "KMN")
    assert kmn[2] <= 2
    assert kmn[1] - kmn[2] >= 2
