"""Paper Figure 15: register utilization, OptTLP vs CRAT.

CRAT recovers the registers thread throttling strands (paper: +15-27%
average), except for STM/SPMV/KMN/LBM where the default allocation was
already optimal and utilization cannot move.
"""

from conftest import DEFAULT_OPTIMAL, SENSITIVE, run_once

from repro.bench import evaluate_app, format_table


def _collect():
    rows = []
    for abbr in SENSITIVE:
        ev = evaluate_app(abbr)
        rows.append(
            (
                abbr,
                ev.register_utilization_of("opttlp"),
                ev.register_utilization_of("crat"),
            )
        )
    return rows


def test_fig15_register_utilization(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "OptTLP util", "CRAT util"],
        [(a, f"{o:.1%}", f"{c:.1%}") for a, o, c in rows],
        title="Fig 15: register utilization of OptTLP vs CRAT",
    )
    improving = [r for r in rows if r[0] not in DEFAULT_OPTIMAL]
    # Apps whose OptTLP configuration already saturates the register
    # file cannot improve further; measure gains on the rest.
    gainable = [r for r in improving if r[1] < 0.98]
    mean_gain = sum(c - o for _, o, c in gainable) / len(gainable)
    record(
        "fig15_reg_utilization",
        table + f"\nmean improvement on the seven improving apps: "
        f"{mean_gain:+.1%} (paper: +15-27%)",
    )

    by_app = {r[0]: r for r in rows}
    # Default-optimal apps: utilization unchanged (paper Section 7.2).
    for abbr in DEFAULT_OPTIMAL:
        _, o, c = by_app[abbr]
        assert abs(o - c) < 1e-6, abbr
    # Every other app's utilization improves (unless the baseline was
    # already saturated), by a paper-like margin on average.
    assert all(c > o or o >= 0.95 for _, o, c in improving)
    assert 0.08 <= mean_gain <= 0.55
