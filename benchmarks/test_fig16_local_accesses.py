"""Paper Figure 16: local-memory accesses, CRAT-local vs CRAT.

For the apps where spilling survives CRAT (DTC, FDTD, CFD, STE),
Algorithm 1 moves spill sub-stacks to spare shared memory, cutting
local-memory accesses (paper: 42% average reduction).
"""

from conftest import SPILLING_APPS, run_once

from repro.bench import evaluate_app, format_table


def _collect():
    rows = []
    for abbr in SPILLING_APPS:
        ev = evaluate_app(abbr)
        local = ev.local_insts_of("crat-local")
        crat = ev.local_insts_of("crat")
        shm = ev.crat.sim.shared_insts
        reduction = 1.0 - crat / local if local else 0.0
        rows.append((abbr, local, crat, shm, reduction))
    return rows


def test_fig16_local_access_reduction(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "CRAT-local local insts", "CRAT local insts",
         "CRAT shm spill insts", "reduction"],
        [(a, l, c, s, f"{r:.1%}") for a, l, c, s, r in rows],
        title="Fig 16: dynamic local-memory accesses (Algorithm 1 effect)",
    )
    mean_red = sum(r[4] for r in rows) / len(rows)
    record(
        "fig16_local_accesses",
        table + f"\nmean reduction: {mean_red:.1%} (paper: 42%)",
    )

    # Shape: these apps still spill without the optimization...
    assert all(r[1] > 0 for r in rows), rows
    # ...and shared-memory spilling removes a large share of the local
    # traffic, replacing it with shared-memory accesses.
    assert all(r[2] <= r[1] for r in rows)
    assert mean_red >= 0.3
    assert any(r[3] > 0 for r in rows)
