"""Paper Figure 17: architecture scalability (Kepler-like SM).

With the register file doubled (256 KB) and 2048 threads/SM, the paper
reports a 1.32X geomean over OptTLP — slightly larger than Fermi's
1.25X, because higher thread counts worsen contention and widen the
design space.  Register-pressure apps like CFD/FDTD/LBM improve less
than on Fermi (the bigger file relieves their pressure).
"""

from conftest import DEFAULT_OPTIMAL, SENSITIVE, run_once

from repro.bench import evaluate_app, format_table, geomean


def _collect():
    rows = []
    for abbr in SENSITIVE:
        fermi = evaluate_app(abbr, "fermi")
        kepler = evaluate_app(abbr, "kepler")
        rows.append((abbr, fermi.speedup("crat"), kepler.speedup("crat")))
    return rows


def test_fig17_kepler_scalability(benchmark, record):
    rows = run_once(benchmark, _collect)
    g_fermi = geomean([r[1] for r in rows])
    g_kepler = geomean([r[2] for r in rows])
    table = format_table(
        ["app", "CRAT speedup (Fermi)", "CRAT speedup (Kepler)"],
        rows,
        title="Fig 17: CRAT speedup over OptTLP on a Kepler-like SM",
    )
    record(
        "fig17_kepler",
        table + f"\ngeomean: Fermi {g_fermi:.3f} (paper 1.25), "
        f"Kepler {g_kepler:.3f} (paper 1.32)",
    )

    # Shape: the coordinated approach keeps paying off on the larger
    # architecture.
    assert 1.02 <= g_kepler <= 1.6
    # CRAT never loses to OptTLP on Kepler either.
    assert all(r[2] >= 0.95 for r in rows)
    # The register-pressure-relief effect: at least one of the heavy
    # spilling apps (CFD/FDTD) improves less on Kepler than on Fermi.
    heavy = [r for r in rows if r[0] in ("CFD", "FDTD", "LBM")]
    assert any(r[2] <= r[1] + 0.02 for r in heavy)
