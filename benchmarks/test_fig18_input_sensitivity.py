"""Paper Figure 18: input sensitivity (CFD and BLK).

"For every application, different profiling inputs lead to the same
OptTLP" and CRAT's speedups are consistent across inputs (Section 7.4).
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.core import CRATOptimizer
from repro.workloads import inputs_for


def _collect():
    results = {}
    for abbr in ("CFD", "BLK"):
        rows = []
        for name, workload in inputs_for(abbr):
            optimizer = CRATOptimizer(FERMI)
            res = optimizer.optimize(
                workload.kernel,
                default_reg=workload.default_reg,
                grid_blocks=workload.grid_blocks,
                param_sizes=workload.param_sizes,
            )
            rows.append(
                (name, res.baselines["opttlp"].tlp, res.opt_tlp,
                 res.reg, res.tlp, res.speedup_vs("opttlp"))
            )
        results[abbr] = rows
    return results


def test_fig18_input_sensitivity(benchmark, record):
    results = run_once(benchmark, _collect)
    flat = [
        (abbr, name, opt_base, opt_ceil, reg, tlp, f"{su:.2f}")
        for abbr, rows in results.items()
        for name, opt_base, opt_ceil, reg, tlp, su in rows
    ]
    table = format_table(
        ["app", "input", "OptTLP", "prune ceiling", "CRAT reg", "CRAT TLP",
         "speedup"],
        flat,
        title="Fig 18: CRAT speedup across inputs (profiling-input stability)",
    )
    record("fig18_input_sensitivity", table)

    for abbr, rows in results.items():
        speedups = [r[5] for r in rows]
        opttlps = [r[1] for r in rows]
        # The paper's stability claim: OptTLP varies by at most one
        # block across inputs, and CRAT never loses.
        assert max(opttlps) - min(opttlps) <= 1, (abbr, opttlps)
        assert all(s >= 0.97 for s in speedups), (abbr, speedups)
        # Speedups stay in a consistent band across inputs.
        assert max(speedups) / min(speedups) <= 1.6, (abbr, speedups)
