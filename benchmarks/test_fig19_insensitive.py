"""Paper Figure 19: the resource-insensitive applications.

These apps face neither cache contention nor register pressure, so
MaxTLP with the default allocation is already good: "neither OptTLP nor
CRAT has remarkable improvement."
"""

from conftest import INSENSITIVE, run_once

from repro.bench import evaluate_app, format_table, geomean


def _collect():
    rows = []
    for abbr in INSENSITIVE:
        ev = evaluate_app(abbr)
        rows.append(
            (abbr, ev.speedup("maxtlp"), 1.0, ev.speedup("crat"))
        )
    return rows


def test_fig19_insensitive_apps_unchanged(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "MaxTLP", "OptTLP", "CRAT"],
        rows,
        title="Fig 19: resource-insensitive applications (normalized to OptTLP)",
    )
    g_max = geomean([r[1] for r in rows])
    g_crat = geomean([r[3] for r in rows])
    record(
        "fig19_insensitive",
        table + f"\ngeomean: MaxTLP {g_max:.3f}, CRAT {g_crat:.3f} "
        "(paper: ~1.0 across the board)",
    )

    # Shape: nothing moves much for these apps.
    for abbr, s_max, _, s_crat in rows:
        assert 0.85 <= s_max <= 1.15, (abbr, s_max)
        assert 0.9 <= s_crat <= 1.25, (abbr, s_crat)
    assert 0.95 <= g_crat <= 1.12
