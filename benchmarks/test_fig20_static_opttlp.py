"""Paper Figure 20 + Section 7.7: CRAT-static vs CRAT-profile.

Estimating OptTLP with the static GTO analysis instead of exhaustive
profiling loses almost nothing (paper: 1.22X vs 1.25X) at a tiny
fraction of the cost.
"""

from conftest import SENSITIVE, run_once

from repro.bench import (
    evaluate_app,
    evaluate_app_static,
    format_table,
    geomean,
)


def _collect():
    rows = []
    for abbr in SENSITIVE:
        profile = evaluate_app(abbr)
        static = evaluate_app_static(abbr)
        opttlp_cycles = profile.baselines["opttlp"].sim.cycles
        rows.append(
            (
                abbr,
                profile.crat.opt_tlp,
                static.opt_tlp,
                profile.speedup("crat"),
                opttlp_cycles / static.sim.cycles,
            )
        )
    return rows


def test_fig20_static_vs_profile(benchmark, record):
    rows = run_once(benchmark, _collect)
    g_profile = geomean([r[3] for r in rows])
    g_static = geomean([r[4] for r in rows])
    table = format_table(
        ["app", "OptTLP (profile)", "OptTLP (static)",
         "CRAT-profile speedup", "CRAT-static speedup"],
        rows,
        title="Fig 20: CRAT with profiled vs statically estimated OptTLP",
    )
    record(
        "fig20_static_opttlp",
        table + f"\ngeomean: profile {g_profile:.3f} (paper 1.25), "
        f"static {g_static:.3f} (paper 1.22)",
    )

    # Shape: the static estimate achieves comparable performance.
    assert g_static >= 0.9 * g_profile
    assert g_static >= 1.0
    # And the estimates are in the right neighbourhood per app.
    close = sum(1 for r in rows if abs(r[1] - r[2]) <= 2)
    assert close >= len(rows) * 0.6
