"""Paper Section 7.7: framework overhead.

OptTLP via profiling costs one simulation per TLP; the static code
analysis costs a single pass ("average overhead is only 1 millisecond"
on their setup).  The design-space exploration itself is negligible.
"""

import time

from conftest import run_once

from repro.arch import FERMI
from repro.analysis import estimate_opt_tlp
from repro.bench import format_table
from repro.core import collect_resource_usage, default_allocation, profile_tlp
from repro.sim import trace_grid
from repro.workloads import load_workload

APPS = ["CFD", "HST", "KMN"]


def _measure():
    rows = []
    for abbr in APPS:
        workload = load_workload(abbr)
        usage = collect_resource_usage(
            workload.kernel, FERMI, default_reg=workload.default_reg
        )
        allocation = default_allocation(workload.kernel, usage)
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )

        t0 = time.perf_counter()
        profile_tlp(traces, FERMI, usage.max_tlp)
        profiling_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        estimate_opt_tlp(allocation.kernel, FERMI, usage.max_tlp)
        static_s = time.perf_counter() - t1

        rows.append((abbr, usage.max_tlp, profiling_s, static_s))
    return rows


def test_overhead_static_vs_profiling(benchmark, record):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["app", "profiled TLPs", "profiling (s)", "static analysis (s)"],
        [(a, n, f"{p:.3f}", f"{s:.4f}") for a, n, p, s in rows],
        title="Section 7.7: OptTLP estimation overhead",
    )
    speedup = sum(r[2] for r in rows) / max(1e-9, sum(r[3] for r in rows))
    record(
        "overhead",
        table + f"\nstatic analysis is {speedup:.0f}x cheaper than profiling "
        "(paper: hours of simulation vs ~1 ms of analysis)",
    )

    # Shape: the static estimator is at least an order of magnitude
    # cheaper than exhaustive profiling on every app.
    for abbr, _, profiling_s, static_s in rows:
        assert static_s * 10 < profiling_s, abbr
