"""TPSC fidelity: does the prediction model rank candidates correctly?

Section 6 claims "TPSC metric can accurately capture the tradeoff
between single-thread performance and TLP."  This bench computes the
rank agreement between TPSC scores and simulated cycles over each
app's candidate set.
"""

from conftest import run_once

from repro.arch import FERMI
from repro.bench import evaluate_app, format_table
from repro.sim import simulate_traces, trace_grid

APPS = ["CFD", "DTC", "STE", "HST"]


def _kendall_like(pairs):
    """Fraction of concordant pairs between two rankings."""
    concordant = total = 0
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            a, b = pairs[i], pairs[j]
            if a[0] == b[0] or a[1] == b[1]:
                continue
            total += 1
            if (a[0] < b[0]) == (a[1] < b[1]):
                concordant += 1
    return concordant / total if total else 1.0


def _collect():
    rows = []
    for abbr in APPS:
        ev = evaluate_app(abbr)
        workload = ev.workload
        pairs = []
        for scored in ev.crat.candidates:
            traces = trace_grid(
                scored.allocation.kernel, FERMI, workload.grid_blocks,
                workload.param_sizes,
            )
            cycles = simulate_traces(traces, FERMI, scored.point.tlp).cycles
            pairs.append((scored.tpsc, cycles, scored.point))
        agreement = _kendall_like([(p[0], p[1]) for p in pairs])
        sim_best = min(pairs, key=lambda p: p[1])[2]
        tpsc_best = min(pairs, key=lambda p: p[0])[2]
        best_cycles = min(p[1] for p in pairs)
        chosen_cycles = next(p[1] for p in pairs if p[2] == tpsc_best)
        rows.append(
            (abbr, len(pairs), f"{agreement:.2f}", str(tpsc_best),
             str(sim_best), chosen_cycles / best_cycles)
        )
    return rows


def test_tpsc_ranks_candidates_like_the_simulator(benchmark, record):
    rows = run_once(benchmark, _collect)
    table = format_table(
        ["app", "candidates", "pairwise agreement", "TPSC pick", "sim best",
         "pick/best cycles"],
        rows,
        title="TPSC vs simulation: candidate ranking fidelity",
    )
    record("tpsc_ranking", table)

    # Shape: TPSC's pick is near the simulated optimum for every app,
    # and the ranking agrees on a clear majority of pairs.
    for abbr, n, agreement, _, _, ratio in rows:
        assert ratio <= 1.25, (abbr, ratio)
    mean_agree = sum(float(r[2]) for r in rows) / len(rows)
    assert mean_agree >= 0.6
