#!/usr/bin/env python
"""Chip-level (multi-SM) validation of the single-SM model.

The per-figure benchmarks simulate one SM with an interference-divided
L2 slice.  This example runs the full-chip mode — N SMs contending one
shared L2 and DRAM channel — for a cache-sensitive app across TLPs, and
shows that both models rank TLPs the same way (the property the paper's
single-simulator methodology relies on).

Run:  python examples/chip_level.py [APP] [NUM_SMS]
"""

import sys

from repro import FERMI, collect_resource_usage, load_workload
from repro.core import default_allocation
from repro.sim import makespan, simulate_multi_sm, simulate_traces, trace_grid


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "KMN"
    num_sms = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    workload = load_workload(abbr)
    usage = collect_resource_usage(
        workload.kernel, FERMI, default_reg=workload.default_reg
    )
    allocation = default_allocation(workload.kernel, usage)
    traces = trace_grid(
        allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
    )
    print(f"== {abbr}: {len(traces)} blocks, single SM vs {num_sms} SMs ==\n")
    print(f"{'TLP':>3} {'1-SM cyc/blk':>13} {f'{num_sms}-SM cyc/blk':>13} "
          f"{'ratio':>6}  {'L1 hit (1SM)':>12}")
    best_single, best_multi = None, None
    for tlp in range(1, usage.max_tlp + 1):
        single = simulate_traces(traces, FERMI, tlp)
        multi = simulate_multi_sm(traces, FERMI, tlp, num_sms=num_sms)
        per_single = single.cycles / len(traces)
        per_multi = makespan(multi) / (len(traces) / num_sms)
        if best_single is None or per_single < best_single[1]:
            best_single = (tlp, per_single)
        if best_multi is None or per_multi < best_multi[1]:
            best_multi = (tlp, per_multi)
        print(f"{tlp:>3} {per_single:>13.0f} {per_multi:>13.0f} "
              f"{per_multi / per_single:>6.2f}  {single.l1_hit_rate:>11.1%}")
    print(f"\nbest TLP: single-SM model {best_single[0]}, "
          f"chip-level model {best_multi[0]}")
    if best_single[0] == best_multi[0]:
        print("=> the cheap single-SM model picks the same optimum.")


if __name__ == "__main__":
    main()
