#!/usr/bin/env python
"""Build a custom PTX kernel, allocate it, and inspect the spill code.

Demonstrates the compiler surface end to end:

1. construct a register-hungry kernel with :class:`KernelBuilder`;
2. print its PTX text (SSA-style virtual registers, paper Listing 2);
3. allocate it at shrinking register limits and watch spill code appear
   (paper Listing 4), including Algorithm 1's shared-memory sub-stacks;
4. prove the rewrite is semantics-preserving by executing both versions
   functionally and comparing outputs.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import allocate, print_kernel, register_demand, verify_kernel
from repro.ptx import CmpOp, DType, KernelBuilder, Space
from repro.sim import GlobalMemory, run_grid


def build_kernel(nvals=18, trip=8):
    """A loop kernel carrying ``nvals`` f32 accumulators (high pressure)."""
    b = KernelBuilder("custom", block_size=64)
    inp = b.param("input", DType.U64)
    out = b.param("output", DType.U64)
    tid = b.special("%tid.x")
    t64 = b.cvt(tid, DType.U64)
    off = b.mul(t64, b.imm(4, DType.U64), DType.U64)
    base = b.add(b.addr_of(inp), off, DType.U64)
    vals = [b.mov(b.imm(0.1 * (j + 1), DType.F32)) for j in range(nvals)]
    i = b.mov(b.imm(0, DType.S32))
    loop = b.label("loop")
    done = b.label("done")
    b.place(loop)
    p = b.setp(CmpOp.GE, i, b.imm(trip, DType.S32))
    b.bra(done, guard=p)
    v = b.ld(Space.GLOBAL, base, dtype=DType.F32)
    for val in vals:
        b.mad(val, b.imm(0.75, DType.F32), v, dst=val)
    b.add(i, b.imm(1, DType.S32), dst=i)
    b.bra(loop)
    b.place(done)
    total = vals[0]
    for val in vals[1:]:
        total = b.add(total, val)
    oaddr = b.add(b.addr_of(out), off, DType.U64)
    b.st(Space.GLOBAL, oaddr, total)
    return b.build()


def run_functional(kernel):
    mem = GlobalMemory(kernel, {"input": 1 << 14, "output": 1 << 14})
    run_grid(kernel, mem, grid_blocks=2)
    return mem.read_buffer("output", DType.F32, 128)


def main() -> None:
    kernel = build_kernel()
    verify_kernel(kernel)
    demand = register_demand(kernel)
    print(f"kernel uses {kernel.register_count()} virtual registers, "
          f"register demand = {demand} slots\n")
    print("---- original PTX (first 12 lines) ----")
    print("\n".join(print_kernel(kernel).splitlines()[:12]))

    reference = run_functional(kernel)
    print("\nlimit  reg/thread  spilled  local-insts  shm-insts  remat  equivalent")
    for limit in (demand, demand - 4, demand - 8, max(14, demand // 2)):
        result = allocate(kernel, limit, spare_shm_bytes=1024)
        verify_kernel(result.kernel)
        output = run_functional(result.kernel)
        same = np.allclose(reference, output, rtol=1e-5)
        print(f"{limit:>5}  {result.reg_per_thread:>10}  "
              f"{len(result.spilled):>7}  {result.num_local_insts:>11}  "
              f"{result.num_shared_insts:>9}  {len(result.rematerialized):>5}  "
              f"{same}")

    tight = allocate(kernel, max(14, demand // 2), spare_shm_bytes=1024)
    print("\n---- allocated PTX at the tightest limit (first 16 lines) ----")
    print("\n".join(print_kernel(tight.kernel).splitlines()[:16]))
    if tight.shm_plan is not None:
        print("\nAlgorithm 1 placement:")
        for sub, picked in zip(tight.shm_plan.substacks, tight.shm_plan.chosen):
            where = "shared" if picked else "local"
            print(f"  sub-stack {sub.key}: {len(sub.variables)} vars, "
                  f"gain {sub.gain} -> {where}")


if __name__ == "__main__":
    main()
