#!/usr/bin/env python
"""Explore the (registers/thread, TLP) design space of a workload.

Reproduces paper Figure 2 interactively: simulates every feasible
(reg, TLP) stair point for an app, prints the surface as an ASCII
table, and marks the pure-throttling optimum versus the coordinated
optimum — the register/TLP tradeoff CRAT automates.

Run:  python examples/design_space.py [APP]
"""

import sys

from repro import FERMI, collect_resource_usage, load_workload
from repro.arch import compute_occupancy, max_reg_at_tlp
from repro.regalloc import allocate
from repro.sim import simulate_traces, trace_grid


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "CFD"
    workload = load_workload(abbr)
    usage = collect_resource_usage(
        workload.kernel, FERMI, default_reg=workload.default_reg
    )
    ceiling = compute_occupancy(
        FERMI, usage.min_reg, usage.shm_size, usage.block_size
    ).blocks
    print(f"== design space for {abbr}: MaxReg={usage.max_reg}, "
          f"default reg={usage.default_reg}, TLP ceiling={ceiling} ==\n")

    reg_points = sorted(
        {
            min(
                max_reg_at_tlp(FERMI, tlp, usage.shm_size, usage.block_size),
                FERMI.max_reg_per_thread,
                usage.max_reg,
            )
            for tlp in range(1, ceiling + 1)
        }
        | {usage.default_reg}
    )

    surface = {}
    for reg in reg_points:
        allocation = allocate(workload.kernel, reg, enable_shm_spill=False)
        blocks = compute_occupancy(
            FERMI, allocation.reg_per_thread, usage.shm_size, usage.block_size
        ).blocks
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        for tlp in range(1, blocks + 1):
            result = simulate_traces(traces, FERMI, tlp)
            surface[(reg, tlp)] = result.cycles

    tlps = sorted({t for _, t in surface})
    header = "reg\\TLP " + "".join(f"{t:>10}" for t in tlps)
    print(header)
    best = min(surface, key=surface.get)
    default_points = {k: v for k, v in surface.items() if k[0] == usage.default_reg}
    throttle_best = min(default_points, key=default_points.get)
    for reg in reg_points:
        cells = []
        for tlp in tlps:
            cycles = surface.get((reg, tlp))
            if cycles is None:
                cells.append(f"{'-':>10}")
            else:
                mark = "*" if (reg, tlp) == best else (
                    "o" if (reg, tlp) == throttle_best else " "
                )
                cells.append(f"{cycles:>9.0f}{mark}")
        print(f"{reg:>7} " + "".join(cells))

    print("\n  o = best pure thread-throttling point (default registers)")
    print("  * = best coordinated point")
    gain = surface[throttle_best] / surface[best]
    print(f"\ncoordinated optimum (reg={best[0]}, TLP={best[1]}) beats pure "
          f"throttling (reg={throttle_best[0]}, TLP={throttle_best[1]}) "
          f"by {gain:.2f}X")


if __name__ == "__main__":
    main()
