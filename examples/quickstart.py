#!/usr/bin/env python
"""Quickstart: optimize one workload with CRAT.

Loads the CFD workload (the paper's motivating example), runs the full
CRAT pipeline against the Fermi-like configuration of paper Table 2,
and prints what the paper's Figures 2/3 show: the baselines, the pruned
candidate set with TPSC scores, the chosen (reg, TLP) point, and the
resulting speedup.

Run:  python examples/quickstart.py [APP]
"""

import sys

from repro import CRATOptimizer, FERMI, load_workload


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "CFD"
    workload = load_workload(abbr)
    print(f"== {workload.app.app} / kernel {workload.app.kernel} ({abbr}) ==")
    print(f"block size {workload.kernel.block_size}, "
          f"{len(workload.kernel.instructions())} static instructions\n")

    optimizer = CRATOptimizer(FERMI)
    result = optimizer.optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
    )

    usage = result.usage
    print("Resource usage (paper Table 1):")
    print(f"  MaxReg={usage.max_reg}  MinReg={usage.min_reg}  "
          f"BlockSize={usage.block_size}  ShmSize={usage.shm_size}B")
    print(f"  MaxTLP={usage.max_tlp}  OptTLP={result.opt_tlp} "
          f"(via {result.opt_tlp_source})\n")

    maxtlp = result.baselines["maxtlp"]
    opttlp = result.baselines["opttlp"]
    print("Baselines:")
    print(f"  MaxTLP: reg={maxtlp.reg} TLP={maxtlp.tlp} "
          f"cycles={maxtlp.sim.cycles:.0f}")
    print(f"  OptTLP: reg={opttlp.reg} TLP={opttlp.tlp} "
          f"cycles={opttlp.sim.cycles:.0f}\n")

    print("Pruned candidates (rightmost stair points <= OptTLP):")
    for scored in result.candidates:
        marker = " <= chosen" if scored.point == result.chosen.point else ""
        print(f"  (reg={scored.point.reg:>2}, TLP={scored.point.tlp})  "
              f"spill_cost={scored.spill_cost:8.1f}  "
              f"TLP_gain={scored.tlp_gain:.3f}  "
              f"TPSC={scored.tpsc:8.1f}{marker}")

    alloc = result.chosen.allocation
    print(f"\nCRAT decision: reg={result.reg}, TLP={result.tlp}")
    print(f"  spilled vars: {len(alloc.spilled)}  "
          f"(local insts {alloc.num_local_insts}, "
          f"shm insts {alloc.num_shared_insts}, "
          f"rematerialized {len(alloc.rematerialized)})")
    print(f"  cycles={result.sim.cycles:.0f}  "
          f"L1 hit={result.sim.l1_hit_rate:.1%}")
    print(f"\nSpeedup vs OptTLP: {result.speedup_vs('opttlp'):.2f}X")
    print(f"Speedup vs MaxTLP: {result.speedup_vs('maxtlp'):.2f}X")


if __name__ == "__main__":
    main()
