#!/usr/bin/env python
"""Static OptTLP estimation vs exhaustive profiling (paper Fig 10/20).

For each resource-sensitive app this example:

1. segments the kernel into computation/memory phases (Figure 10a),
2. mimics GTO scheduling to estimate OptTLP statically (Figure 10b),
3. profiles every TLP on the simulator (the paper's offline search),
4. compares the two estimates and their cost.

Run:  python examples/static_analysis.py
"""

import time

from repro import FERMI, collect_resource_usage
from repro.analysis import estimate_opt_tlp, segment_kernel
from repro.arch import compute_occupancy
from repro.core import default_allocation, opt_tlp_from_profile, profile_tlp
from repro.sim import trace_grid
from repro.workloads import RESOURCE_SENSITIVE, load_workload


def main() -> None:
    print(f"{'app':6} {'segments':>8} {'mem-req':>8} {'static':>7} "
          f"{'profiled':>8} {'analysis':>9} {'profiling':>10}")
    for app in RESOURCE_SENSITIVE:
        workload = load_workload(app.abbr)
        usage = collect_resource_usage(
            workload.kernel, FERMI, default_reg=workload.default_reg
        )
        allocation = default_allocation(workload.kernel, usage)
        ceiling = compute_occupancy(
            FERMI, min(usage.min_reg, usage.default_reg), usage.shm_size,
            usage.block_size,
        ).blocks

        t0 = time.perf_counter()
        segments = segment_kernel(allocation.kernel, FERMI)
        estimate = estimate_opt_tlp(
            allocation.kernel, FERMI, ceiling, segments=segments
        )
        static_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        traces = trace_grid(
            allocation.kernel, FERMI, workload.grid_blocks, workload.param_sizes
        )
        profile = profile_tlp(traces, FERMI, ceiling)
        profiled = opt_tlp_from_profile(profile)
        profiling_seconds = time.perf_counter() - t1

        mem_requests = sum(s.mem_requests * s.weight for s in segments)
        print(f"{app.abbr:6} {len(segments):>8} {mem_requests:>8.0f} "
              f"{estimate.opt_tlp:>7} {profiled:>8} "
              f"{static_seconds:>8.4f}s {profiling_seconds:>9.2f}s")

    print("\nThe static estimate runs orders of magnitude faster than the")
    print("profiling pass while landing near the profiled optimum —")
    print("the paper's Section 7.6/7.7 result (1.22X vs 1.25X geomean).")


if __name__ == "__main__":
    main()
