#!/usr/bin/env python
"""Tour of the pre-allocation transforms and their CRAT interaction.

Takes one workload through the optimization pipeline —

1. copy propagation + dead-code elimination,
2. counted-loop unrolling with per-replica renaming,
3. MLP list scheduling (load hoisting),
4. static cache bypassing of streaming loads,

— showing at each step the instruction count, the register demand, and
finally what CRAT decides for the transformed kernel versus the
original.  The unroll/schedule steps raise register pressure to buy
memory-level parallelism; CRAT's job is to decide whether that trade
pays at the occupancy it costs.

Run:  python examples/transforms.py [APP] [UNROLL_FACTOR]
"""

import sys

from repro import CRATOptimizer, FERMI, load_workload, register_demand
from repro.opt import (
    apply_static_bypass,
    optimize_kernel,
    schedule_for_mlp,
    unroll_loops,
)


def report(stage, kernel):
    print(f"{stage:28} {len(kernel.instructions()):>5} insts   "
          f"demand {register_demand(kernel):>3} slots")
    return kernel


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "KMN"
    factor = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    workload = load_workload(abbr)
    kernel = workload.kernel
    print(f"== transform pipeline for {abbr} ==\n")
    report("original", kernel)

    cleaned = optimize_kernel(kernel)
    kernel = report(
        f"copy-prop+DCE (-{cleaned.removed_instructions})", cleaned.kernel
    )

    unrolled = unroll_loops(kernel, factor)
    if unrolled.unrolled_loops:
        kernel = report(f"unroll x{factor}", unrolled.kernel)
    else:
        print(f"unroll x{factor}: skipped (trip count mismatch)")

    scheduled = schedule_for_mlp(kernel)
    kernel = report(
        f"MLP schedule ({scheduled.moved_instructions} moved)",
        scheduled.kernel,
    )

    bypassed = apply_static_bypass(kernel)
    kernel = report(
        f"static bypass ({bypassed.bypassed_loads} loads .cg)",
        bypassed.kernel,
    )

    print("\nCRAT on the original vs the transformed kernel:")
    for name, k in (("original", workload.kernel), ("transformed", kernel)):
        optimizer = CRATOptimizer(FERMI)
        result = optimizer.optimize(
            k,
            default_reg=workload.default_reg if name == "original" else None,
            grid_blocks=workload.grid_blocks,
            param_sizes=workload.param_sizes,
        )
        print(f"  {name:12} -> (reg={result.reg}, TLP={result.tlp}), "
              f"{result.sim.cycles:.0f} cycles, "
              f"L1 hit {result.sim.l1_hit_rate:.1%}")


if __name__ == "__main__":
    main()
