"""CRAT: Coordinated Register Allocation and Thread-level parallelism.

Reproduction of Xie et al., "Enabling Coordinated Register Allocation
and Thread-level Parallelism Optimization for GPUs" (MICRO-48, 2015).

Quickstart::

    from repro import CRATOptimizer, FERMI, load_workload

    workload = load_workload("CFD")
    optimizer = CRATOptimizer(FERMI)
    result = optimizer.optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
    )
    print(result.chosen.point, result.speedup_vs("opttlp"))

Package map:

* :mod:`repro.ptx` — PTX-subset IR (parser, printer, builder, verifier)
* :mod:`repro.cfg` — CFG, liveness, dominators, loops
* :mod:`repro.regalloc` — Chaitin-Briggs + linear-scan allocators,
  spill code, rematerialization, shared-memory spilling (Algorithm 1)
* :mod:`repro.arch` — Fermi/Kepler configs, occupancy, measured costs
* :mod:`repro.sim` — GPGPU-Sim-like functional + timing simulator
* :mod:`repro.analysis` — static OptTLP estimation (GTO mimic)
* :mod:`repro.core` — the CRAT optimizer, design space, TPSC model
* :mod:`repro.engine` — shared evaluation engine (caching, parallel
  fan-out, instrumentation)
* :mod:`repro.workloads` — the 22-kernel synthetic benchmark suite
* :mod:`repro.bench` — experiment driver for the paper's figures
"""

from .arch import FERMI, KEPLER, GPUConfig, compute_occupancy, get_config
from .engine import EvaluationEngine, get_engine
from .core import (
    CRATOptimizer,
    CRATResult,
    DesignPoint,
    ResourceUsage,
    collect_resource_usage,
    prune,
    run_baselines,
)
from .ptx import Kernel, KernelBuilder, parse_kernel, print_kernel, verify_kernel
from .regalloc import AllocationResult, allocate, register_demand
from .sim import SimResult, simulate
from .workloads import Workload, full_suite, load_workload

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "CRATOptimizer",
    "CRATResult",
    "DesignPoint",
    "EvaluationEngine",
    "FERMI",
    "GPUConfig",
    "KEPLER",
    "Kernel",
    "KernelBuilder",
    "ResourceUsage",
    "SimResult",
    "Workload",
    "allocate",
    "collect_resource_usage",
    "compute_occupancy",
    "full_suite",
    "get_config",
    "get_engine",
    "load_workload",
    "parse_kernel",
    "print_kernel",
    "prune",
    "register_demand",
    "run_baselines",
    "simulate",
    "verify_kernel",
    "__version__",
]
