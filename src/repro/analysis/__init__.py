"""Static performance analysis and lint.

Two cooperating layers: the estimators (kernel segmentation, the
GTO-mimic OptTLP estimator of paper Figure 10, a Hong-Kim-style
analytical cross-check) and the ``repro lint`` subsystem — whole-kernel
static analyses over the shared :class:`~repro.analysis.context.LintContext`
emitting stable ``LNT`` rule codes (:func:`run_lint`), plus the
versioned static feature vector (:func:`extract_features`) feeding the
future tier-0 cost model."""

from .context import LintContext
from .features import (
    FEATURE_NAMES,
    FEATURES_SCHEMA_VERSION,
    FeatureVector,
    extract_features,
)
from .gto_model import StaticEstimate, estimate_opt_tlp, throughput_cost
from .hongkim import AnalyticalPrediction, predict_cycles
from .lint import run_lint, severity_gate
from .sarif import to_sarif
from .segments import (
    DEFAULT_TRIP_COUNT,
    Segment,
    segment_kernel,
    total_cycles,
    total_mem_requests,
)
from .uniformity import AbsVal, Kind, UniformityInfo, analyze_uniformity

__all__ = [
    "AbsVal",
    "AnalyticalPrediction",
    "DEFAULT_TRIP_COUNT",
    "FEATURE_NAMES",
    "FEATURES_SCHEMA_VERSION",
    "FeatureVector",
    "Kind",
    "LintContext",
    "Segment",
    "StaticEstimate",
    "UniformityInfo",
    "analyze_uniformity",
    "estimate_opt_tlp",
    "extract_features",
    "predict_cycles",
    "run_lint",
    "segment_kernel",
    "severity_gate",
    "throughput_cost",
    "to_sarif",
    "total_cycles",
    "total_mem_requests",
]
