"""Static performance analysis: kernel segmentation, the GTO-mimic
OptTLP estimator (paper Figure 10), and a Hong-Kim-style analytical
model used as a cross-check."""

from .gto_model import StaticEstimate, estimate_opt_tlp, throughput_cost
from .hongkim import AnalyticalPrediction, predict_cycles
from .segments import (
    DEFAULT_TRIP_COUNT,
    Segment,
    segment_kernel,
    total_cycles,
    total_mem_requests,
)

__all__ = [
    "AnalyticalPrediction",
    "DEFAULT_TRIP_COUNT",
    "Segment",
    "StaticEstimate",
    "estimate_opt_tlp",
    "predict_cycles",
    "segment_kernel",
    "throughput_cost",
    "total_cycles",
    "total_mem_requests",
]
