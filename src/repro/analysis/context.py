"""Shared per-kernel state for the lint analyzers.

Every ``LNT`` analyzer needs the same expensive artifacts — the CFG,
liveness, the uniformity fixpoint, natural loops — so
:class:`LintContext` computes each once and hands the bundle to all of
them.  Construction raises the same ``ValueError`` the CFG builder
raises on malformed control flow; :func:`repro.analysis.lint.run_lint`
wraps that into a structured :class:`repro.errors.ParseError` so the
CLI exits 2, not with a traceback.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..arch.config import FERMI, GPUConfig
from ..cfg.graph import CFG
from ..cfg.liveness import LivenessInfo
from ..cfg.loops import Loop, find_loops, loop_depths
from ..ptx.module import Kernel
from .uniformity import UniformityInfo


@dataclasses.dataclass
class LintContext:
    """Everything a lint analyzer may consult, computed once."""

    kernel: Kernel
    config: GPUConfig
    cfg: CFG
    liveness: LivenessInfo
    uniformity: UniformityInfo
    loops: List[Loop]
    depths: Dict[int, int]
    #: source path for SARIF artifact locations, when known
    source: Optional[str] = None

    @classmethod
    def build(
        cls,
        kernel: Kernel,
        config: GPUConfig = FERMI,
        source: Optional[str] = None,
    ) -> "LintContext":
        cfg = CFG(kernel)
        return cls(
            kernel=kernel,
            config=config,
            cfg=cfg,
            liveness=LivenessInfo(kernel, cfg),
            uniformity=UniformityInfo(kernel),
            loops=find_loops(cfg),
            depths=loop_depths(cfg),
            source=source,
        )

    def block_of(self, pos: int) -> int:
        """CFG block index containing global instruction position ``pos``."""
        for block in self.cfg.blocks:
            if block.start <= pos < block.start + len(block.instructions):
                return block.index
        raise IndexError(f"position {pos} outside the kernel body")
