"""Branch-divergence lint (LNT3xx).

A conditional branch whose guard predicate is not warp-uniform splits
the warp: both sides execute serially under masks.  The uniformity
fixpoint (:mod:`repro.analysis.uniformity`) classifies every guard;
this analyzer grades the structural damage:

* ``LNT302`` — the divergent branch *controls a natural loop* (it is a
  back edge or a loop exit): threads iterate different trip counts and
  the whole warp runs as long as its slowest lane;
* ``LNT301`` — any other divergent conditional branch (one-shot mask
  cost);
* ``LNT303`` — a barrier that sits in the body of a divergent loop or
  is itself guarded by a varying predicate: lanes can arrive a
  different number of times, the classic barrier-divergence deadlock.
"""

from __future__ import annotations

from typing import Set

from ..ptx.isa import Opcode
from ..verify.diagnostics import Diagnostic, VerifyReport
from .context import LintContext


def analyze_divergence(ctx: LintContext, report: VerifyReport) -> None:
    uni = ctx.uniformity
    label_to_block = {
        b.label: b.index for b in ctx.cfg.blocks if b.label is not None
    }
    #: blocks inside loops whose control diverges (for the barrier check)
    divergent_loop_blocks: Set[int] = set()
    divergent_loop_findings = []

    for block in ctx.cfg.blocks:
        for pos, inst in block.positions():
            if inst.opcode is not Opcode.BRA or inst.guard is None:
                continue
            if uni.value_of(inst.guard).is_uniform:
                continue
            target_block = label_to_block.get(inst.target or "")
            loop = _controlled_loop(ctx, block.index, target_block)
            diag = Diagnostic(
                rule="LNT302" if loop is not None else "LNT301",
                kernel=ctx.kernel.name, stage=report.stage,
                block=block.index, position=pos, instruction=str(inst),
                message=(
                    f"loop at block {loop.header} has a thread-dependent "
                    f"exit condition: the warp iterates as long as its "
                    f"slowest lane"
                    if loop is not None else
                    "branch condition varies within a warp: both sides "
                    "execute under masks"
                ),
                data={"guard": inst.guard.name,
                      **({"loop_header": loop.header,
                          "loop_blocks": sorted(loop.body)}
                         if loop is not None else {})},
            )
            if loop is not None:
                divergent_loop_blocks.update(loop.body)
                divergent_loop_findings.append(diag)
            else:
                report.add(diag)
    report.diagnostics.extend(divergent_loop_findings)

    for block in ctx.cfg.blocks:
        for pos, inst in block.positions():
            if inst.opcode is not Opcode.BAR:
                continue
            guarded = inst.guard is not None and not uni.value_of(
                inst.guard
            ).is_uniform
            in_divergent_loop = block.index in divergent_loop_blocks
            if not guarded and not in_divergent_loop:
                continue
            report.add(Diagnostic(
                rule="LNT303", kernel=ctx.kernel.name, stage=report.stage,
                block=block.index, position=pos, instruction=str(inst),
                message=(
                    "barrier guarded by a thread-dependent predicate: "
                    "lanes may not all arrive"
                    if guarded else
                    "barrier inside a divergent loop: lanes may reach it "
                    "a different number of times"
                ),
                data={"guarded": guarded,
                      "in_divergent_loop": in_divergent_loop},
            ))


def _controlled_loop(ctx: LintContext, block_idx: int, target_idx):
    """The loop this branch controls, if any.

    A branch in block ``b`` controls a loop when ``b`` is in the body
    and the branch either jumps to the header (back edge) or jumps out
    of the body (conditional exit) — in both cases the guard decides
    whether lanes keep iterating.
    """
    for loop in ctx.loops:
        if block_idx not in loop.body:
            continue
        if target_idx is None:
            continue
        if target_idx == loop.header or target_idx not in loop.body:
            return loop
    return None
