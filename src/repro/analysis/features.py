"""Versioned static feature vector per kernel (the tier-0 model input).

The ROADMAP's "learned tier-0 cost model" needs a fixed-width numeric
description of a kernel computable *without any simulation*.  This
module is that contract: :data:`FEATURE_NAMES` is the ordered, stable
schema; :func:`extract_features` fills it from the same shared
analyses the lint subsystem runs (liveness pressure profile,
uniformity strides, loop structure, the segment model's weighted
instruction mix, occupancy at MaxLive).

Schema discipline mirrors ``FASTPATH_SCHEMA_VERSION``: any change to
the name list, order, or the meaning of a feature must bump
:data:`FEATURES_SCHEMA_VERSION`, and :meth:`FeatureVector.from_dict`
refuses payloads from another version — a trained model can then pin
the version it was fitted against and degrade safely instead of
silently consuming shifted columns.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, List, Optional

from ..arch.config import FERMI, GPUConfig
from ..arch.occupancy import LimitingResource, compute_occupancy
from ..ptx.isa import Opcode, Space
from ..ptx.module import Kernel
from .context import LintContext
from .segments import segment_kernel, total_cycles, total_mem_requests

#: Bump on any change to FEATURE_NAMES or feature semantics.
FEATURES_SCHEMA_VERSION = 1

#: The ordered feature schema.  Order is part of the contract:
#: ``FeatureVector.vector()`` emits values in exactly this order.
FEATURE_NAMES = (
    # -- size and structure
    "n_instructions",
    "n_blocks",
    "n_loops",
    "max_loop_depth",
    "n_params",
    "n_arrays",
    "block_size",
    "shared_bytes",
    # -- instruction mix
    "n_global_loads",
    "n_global_stores",
    "n_shared_accesses",
    "n_local_accesses",
    "n_branches",
    "n_barriers",
    "frac_float_ops",
    "frac_mem_ops",
    # -- register pressure (32-bit slots, from the shared profile)
    "maxlive_slots",
    "mean_pressure",
    "pressure_p90",
    # -- occupancy at MaxLive
    "occ_blocks",
    "occ_limited_by_regs",
    "fits_one_block",
    # -- memory behaviour (uniformity strides)
    "n_uncoalesced_global",
    "n_unanalyzable_global",
    "max_bank_conflict_degree",
    # -- divergence
    "n_divergent_branches",
    "n_divergent_loops",
    "frac_varying_regs",
    # -- weighted work (segment model, default trip counts)
    "est_compute_cycles",
    "est_mem_requests",
)


@dataclasses.dataclass(frozen=True)
class FeatureVector:
    """One kernel's static features under one schema version."""

    kernel: str
    schema_version: int
    values: Dict[str, float]

    def __post_init__(self) -> None:
        missing = [n for n in FEATURE_NAMES if n not in self.values]
        extra = [n for n in self.values if n not in FEATURE_NAMES]
        if self.schema_version == FEATURES_SCHEMA_VERSION and (
            missing or extra
        ):
            raise ValueError(
                f"feature vector does not match schema "
                f"v{FEATURES_SCHEMA_VERSION}: "
                f"missing={missing!r} extra={extra!r}"
            )

    def vector(self) -> List[float]:
        """Values in :data:`FEATURE_NAMES` order (the model's row)."""
        return [float(self.values[name]) for name in FEATURE_NAMES]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "schema_version": self.schema_version,
            "features": {n: self.values[n] for n in FEATURE_NAMES},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FeatureVector":
        version = data.get("schema_version")
        if version != FEATURES_SCHEMA_VERSION:
            raise ValueError(
                f"feature schema version mismatch: payload is "
                f"v{version}, this build expects "
                f"v{FEATURES_SCHEMA_VERSION}"
            )
        return cls(
            kernel=str(data.get("kernel", "")),
            schema_version=int(version),
            values={k: float(v) for k, v in data["features"].items()},
        )


def extract_features(
    kernel: Kernel,
    config: GPUConfig = FERMI,
    ctx: Optional[LintContext] = None,
) -> FeatureVector:
    """Compute the static feature vector for one kernel.

    Pass a prebuilt :class:`LintContext` to share work with a lint run
    (``repro lint --features-json`` does).
    """
    if ctx is None:
        ctx = LintContext.build(kernel, config=config)
    insts = ctx.liveness.instructions
    n = len(insts)
    v: Dict[str, float] = {}

    # -- size and structure
    v["n_instructions"] = n
    v["n_blocks"] = len(ctx.cfg.blocks)
    v["n_loops"] = len(ctx.loops)
    v["max_loop_depth"] = max(ctx.depths.values(), default=0)
    v["n_params"] = len(kernel.params)
    v["n_arrays"] = len(kernel.arrays)
    v["block_size"] = kernel.block_size
    v["shared_bytes"] = kernel.shared_bytes()

    # -- instruction mix
    n_float = 0
    n_mem = 0
    v["n_global_loads"] = v["n_global_stores"] = 0
    v["n_shared_accesses"] = v["n_local_accesses"] = 0
    v["n_branches"] = v["n_barriers"] = 0
    for inst in insts:
        if inst.dtype is not None and inst.dtype.is_float:
            n_float += 1
        if inst.is_memory:
            n_mem += 1
            if inst.space is Space.GLOBAL:
                key = ("n_global_loads" if inst.opcode is Opcode.LD
                       else "n_global_stores")
                v[key] += 1
            elif inst.space is Space.SHARED:
                v["n_shared_accesses"] += 1
            elif inst.space is Space.LOCAL:
                v["n_local_accesses"] += 1
        elif inst.opcode is Opcode.BRA:
            v["n_branches"] += 1
        elif inst.opcode is Opcode.BAR:
            v["n_barriers"] += 1
    v["frac_float_ops"] = n_float / n if n else 0.0
    v["frac_mem_ops"] = n_mem / n if n else 0.0

    # -- register pressure
    profile = ctx.liveness.pressure_profile()
    maxlive = max(profile, default=0)
    v["maxlive_slots"] = maxlive
    v["mean_pressure"] = sum(profile) / n if n else 0.0
    v["pressure_p90"] = (
        sorted(profile)[min(n - 1, int(0.9 * n))] if n else 0.0
    )

    # -- occupancy at MaxLive
    try:
        occ = compute_occupancy(
            config, maxlive, kernel.shared_bytes(), kernel.block_size
        )
        v["occ_blocks"] = occ.blocks
        v["occ_limited_by_regs"] = float(
            occ.limiting is LimitingResource.REGISTERS
        )
        v["fits_one_block"] = 1.0
    except ValueError:
        v["occ_blocks"] = 0
        v["occ_limited_by_regs"] = 1.0
        v["fits_one_block"] = 0.0

    # -- memory behaviour
    uncoalesced = unanalyzable = 0
    max_conflict = 1
    for inst in insts:
        if not inst.is_memory or inst.mem is None:
            continue
        stride = ctx.uniformity.address_of(inst.mem).known_stride
        width = inst.dtype.bytes if inst.dtype is not None else 4
        if inst.space is Space.GLOBAL:
            if stride is None:
                unanalyzable += 1
            elif stride != 0:
                lines = len({(t * stride) // 128 for t in range(32)})
                if lines > max(1, -(-32 * width // 128)):
                    uncoalesced += 1
        elif inst.space is Space.SHARED:
            if stride is not None and stride and stride % 4 == 0:
                max_conflict = max(
                    max_conflict, math.gcd(stride // 4, 32)
                )
    v["n_uncoalesced_global"] = uncoalesced
    v["n_unanalyzable_global"] = unanalyzable
    v["max_bank_conflict_degree"] = max_conflict

    # -- divergence
    div_branches = 0
    div_loop_headers = set()
    label_to_block = {
        b.label: b.index for b in ctx.cfg.blocks if b.label is not None
    }
    for block in ctx.cfg.blocks:
        for inst in block.instructions:
            if inst.opcode is not Opcode.BRA or inst.guard is None:
                continue
            if ctx.uniformity.value_of(inst.guard).is_uniform:
                continue
            div_branches += 1
            target = label_to_block.get(inst.target or "")
            for loop in ctx.loops:
                if block.index in loop.body and target is not None and (
                    target == loop.header or target not in loop.body
                ):
                    div_loop_headers.add(loop.header)
    v["n_divergent_branches"] = div_branches
    v["n_divergent_loops"] = len(div_loop_headers)
    env = ctx.uniformity.env
    varying = sum(
        1 for val in env.values() if val is not None and not val.is_uniform
    )
    v["frac_varying_regs"] = varying / len(env) if env else 0.0

    # -- weighted work
    segments = segment_kernel(kernel, config)
    v["est_compute_cycles"] = total_cycles(segments)
    v["est_mem_requests"] = total_mem_requests(segments)

    return FeatureVector(
        kernel=kernel.name,
        schema_version=FEATURES_SCHEMA_VERSION,
        values={k: float(val) for k, val in v.items()},
    )
