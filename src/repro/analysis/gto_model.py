"""Static OptTLP estimation by mimicking GTO scheduling (paper Fig 10b).

"Recent study [5] has shown that the OptTLP can be estimated by using a
greedy-warp scheduler (greedy-then-oldest, GTO).  The behind intuition
is if when the first thread block finishes execution, only n thread
blocks are involved in the GTO scheduling, then n thread blocks will be
sufficient for this application" (Section 4.1).

The mimic runs ``MaxTLP`` identical segment streams (one per block) on
one virtual core: the greedy block computes until it issues a memory
segment, then blocks for the average memory latency while the next
oldest ready block runs.  The paper's extensions are included: memory
*bandwidth* is modeled with a busy-until channel, and *cache
contention* inflates the average latency as more blocks become
involved.  The estimate is the number of distinct blocks that executed
anything before the first block finished.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..arch.config import GPUConfig
from ..ptx.module import Kernel
from .segments import DEFAULT_TRIP_COUNT, Segment, segment_kernel


@dataclasses.dataclass
class StaticEstimate:
    """Result of the static analysis."""

    opt_tlp: int
    blocks_involved: int
    first_block_finish: float
    segments: List[Segment]


def _expand(segments: List[Segment]) -> List[Segment]:
    """Unroll weighted segments into a bounded explicit stream.

    Loop segments repeat ``weight`` times; to keep the mimic cheap the
    expansion is capped and the segment latencies scaled so total work
    is preserved.
    """
    stream: List[Segment] = []
    cap = 64  # repeats beyond this are folded into scaled segments
    for seg in segments:
        repeats = max(1, int(round(seg.weight)))
        if repeats <= cap:
            stream.extend(
                Segment(seg.kind, seg.cycles, seg.mem_requests, 1.0)
                for _ in range(repeats)
            )
        else:
            scale = repeats / cap
            stream.extend(
                Segment(seg.kind, seg.cycles * scale, int(seg.mem_requests * scale), 1.0)
                for _ in range(cap)
            )
    return stream


def estimate_opt_tlp(
    kernel: Kernel,
    config: GPUConfig,
    max_tlp: int,
    hit_ratio: float = 0.6,
    trip_count: int = DEFAULT_TRIP_COUNT,
    segments: Optional[List[Segment]] = None,
) -> StaticEstimate:
    """Estimate OptTLP via the GTO-scheduling mimic.

    ``hit_ratio`` is the empirically measured average L1 hit ratio
    (Section 4.1 measures it once across applications); the average
    memory latency is ``hit * l1 + miss * dram``.  Cache contention is
    modeled by degrading the effective hit ratio as more blocks join
    the scheduling, and bandwidth by a busy-until memory channel.
    """
    if max_tlp <= 0:
        raise ValueError("max_tlp must be positive")
    lat = config.latency
    if segments is None:
        segments = segment_kernel(kernel, config, trip_count=trip_count)
    stream = _expand(segments)
    if not stream:
        return StaticEstimate(1, 1, 0.0, segments)

    # The GTO mimic of [5] counts blocks involved when the first block
    # retires; under bandwidth-bound streams that count saturates at
    # MaxTLP, so — per the paper's extension — the mimic also models
    # the memory channel and cache contention and OptTLP is the block
    # count with the best mimic-predicted *throughput* (makespan per
    # block), evaluated over n = 1..MaxTLP.
    best_n = 1
    best_cost = None
    chosen = None
    for n in range(1, max_tlp + 1):
        outcome = _mimic(stream, n, config, hit_ratio)
        cost = outcome.makespan / n
        if best_cost is None or cost < best_cost * 0.995:
            best_cost = cost
            best_n = n
            chosen = outcome
    first = _mimic(stream, max_tlp, config, hit_ratio)
    return StaticEstimate(
        opt_tlp=best_n,
        blocks_involved=first.involved,
        first_block_finish=first.first_finish,
        segments=segments,
    )


def throughput_cost(
    segments: List[Segment],
    tlp: int,
    config: GPUConfig,
    hit_ratio: float = 0.6,
) -> float:
    """Mimic-predicted cost per block at ``tlp`` (lower is better).

    The same makespan-per-block metric :func:`estimate_opt_tlp` ranks
    TLPs with, exposed for the fast-path evaluator: it orders design
    points without replaying a single trace, and it is what the
    differential tests calibrate against cycle-level simulation.
    """
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    stream = _expand(segments)
    if not stream:
        return 0.0
    return _mimic(stream, tlp, config, hit_ratio).makespan / tlp


@dataclasses.dataclass
class _MimicOutcome:
    makespan: float
    first_finish: float
    involved: int


def _mimic(
    stream: List[Segment], n: int, config: GPUConfig, hit_ratio: float
) -> _MimicOutcome:
    """Run ``n`` identical segment streams through the GTO mimic."""
    lat = config.latency
    pc = [0] * n
    ready = [0.0] * n  # when each block's outstanding memory returns
    involved = set()
    channel_busy = 0.0
    bytes_per_cycle = config.dram_bytes_per_cycle
    line = config.l1.line_bytes

    # Contention extension: each concurrent block erodes locality.
    effective_hit = hit_ratio / (1.0 + 0.3 * max(0, n - 1))
    mem_latency = effective_hit * lat.l1_hit + (1.0 - effective_hit) * lat.dram
    miss_ratio = 1.0 - effective_hit

    now = 0.0
    greedy: Optional[int] = None
    first_finish: Optional[float] = None
    guard = 0
    limit = (len(stream) + 2) * n + 8
    while guard <= limit:
        guard += 1
        unfinished = [i for i in range(n) if pc[i] < len(stream)]
        if not unfinished:
            break
        eligible = [i for i in unfinished if ready[i] <= now]
        if not eligible:
            now = min(ready[i] for i in unfinished)
            continue
        block = greedy if greedy in eligible else min(eligible)
        greedy = block
        involved.add(block)
        # Run the block's segments until it must wait on memory.
        while pc[block] < len(stream):
            seg = stream[pc[block]]
            pc[block] += 1
            if seg.is_memory and seg.mem_requests:
                # Bandwidth extension: misses occupy the channel.
                transfer = seg.mem_requests * miss_ratio * line / bytes_per_cycle
                start = max(now + seg.cycles, channel_busy)
                channel_busy = start + transfer
                ready[block] = start + transfer + mem_latency
                now += seg.cycles  # core occupied only for the issue slots
                greedy = None
                break
            now += seg.cycles
        if pc[block] >= len(stream):
            done_at = max(now, ready[block])
            if first_finish is None:
                first_finish = done_at
    makespan = max([now] + ready)
    return _MimicOutcome(
        makespan=makespan,
        first_finish=first_finish if first_finish is not None else makespan,
        involved=max(1, len(involved)),
    )
