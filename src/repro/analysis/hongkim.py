"""Hong-Kim-style analytical GPU performance model (paper ref. [11]).

"Prior analytical models [11] have demonstrated that GPU application
performance can be accurately predicted by dividing the thread lifetime
into computation and memory period and modeling their overlapping
through warp scheduling" (Section 4.1).  This module implements the
MWP/CWP formulation of Hong & Kim (ISCA'09) at thread-block
granularity: it predicts execution cycles for a given TLP from the
kernel's compute/memory balance, and serves as a cross-check for both
the simulator trends and the GTO-based OptTLP estimate.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..arch.config import GPUConfig
from ..ptx.module import Kernel
from .segments import (
    DEFAULT_TRIP_COUNT,
    Segment,
    segment_kernel,
    total_cycles,
    total_mem_requests,
)


@dataclasses.dataclass(frozen=True)
class AnalyticalPrediction:
    """Predicted cycles and the intermediate MWP/CWP quantities."""

    cycles: float
    mwp: float
    cwp: float
    comp_cycles: float
    mem_cycles: float
    n_warps: float

    @property
    def memory_bound(self) -> bool:
        """Whether a thread's lifetime is dominated by memory periods."""
        return self.mem_cycles > self.comp_cycles


def predict_cycles(
    kernel: Kernel,
    config: GPUConfig,
    tlp: int,
    hit_ratio: float = 0.6,
    trip_count: int = DEFAULT_TRIP_COUNT,
    segments: Optional[List[Segment]] = None,
) -> AnalyticalPrediction:
    """Predict execution cycles of one wave of ``tlp`` blocks.

    Follows Hong-Kim: with N concurrent warps, computation period
    ``comp`` and one memory period ``mem`` per memory access,

    * ``MWP`` (memory warp parallelism) — warps whose memory requests
      overlap, bounded by bandwidth and by ``mem / mem_issue``;
    * ``CWP`` (computation warp parallelism) — ``(mem + comp) / comp``;
    * if MWP >= CWP, memory is fully hidden: cycles ~ comp * N / ...,
      otherwise memory dominates.
    """
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    lat = config.latency
    if segments is None:
        segments = segment_kernel(kernel, config, trip_count=trip_count)

    n_warps = tlp * (kernel.block_size / config.warp_size)
    comp = total_cycles(segments)
    requests = max(1.0, total_mem_requests(segments))
    mem_lat = hit_ratio * lat.l1_hit + (1 - hit_ratio) * lat.dram
    mem = requests * mem_lat
    # Departure delay between consecutive memory warps: the transfer
    # time of one warp's requests on the DRAM channel.
    miss_requests = requests * (1 - hit_ratio)
    departure = max(
        1.0, miss_requests * config.l1.line_bytes / config.dram_bytes_per_cycle
    )
    mwp_bw = mem / departure
    mwp = max(1.0, min(n_warps, mwp_bw))
    cwp = max(1.0, min(n_warps, (mem + comp) / max(comp, 1.0)))

    if mwp >= cwp:
        # Computation dominates; memory is fully hidden behind the
        # other warps' compute.  Total issue work divided by issue
        # width, floored by one warp's serial latency.
        cycles = max(comp * n_warps / config.num_schedulers, comp + mem)
    else:
        # Memory dominates: each group of MWP warps overlaps its memory.
        cycles = (mem * n_warps / mwp) + comp
    return AnalyticalPrediction(
        cycles=cycles,
        mwp=mwp,
        cwp=cwp,
        comp_cycles=comp,
        mem_cycles=mem,
        n_warps=n_warps,
    )
