"""Def-use hygiene lint (LNT4xx).

Independent (and deliberately simpler) cousins of the ``DF`` dataflow
verifier, scoped to what a *lint* should say about an input kernel
rather than what a *validator* must prove about a compiled one:

* ``LNT402`` — a register read that some path reaches without a prior
  definition (forward may-analysis over the CFG; a structural error);
* ``LNT401`` — a definition whose value is dead immediately (not live
  out of the defining position);
* ``LNT403`` — blocks unreachable from entry;
* ``LNT404`` / ``LNT405`` — declared arrays / kernel parameters the
  body never references (stale interface surface).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..cfg.dataflow import ForwardMaySolver
from ..ptx.instruction import Sym
from ..ptx.isa import Opcode
from ..verify.diagnostics import Diagnostic, VerifyReport
from .context import LintContext


def analyze_hygiene(ctx: LintContext, report: VerifyReport) -> None:
    _check_uninitialized_reads(ctx, report)
    _check_dead_defs(ctx, report)
    _check_unreachable(ctx, report)
    _check_unreferenced_decls(ctx, report)


def _check_uninitialized_reads(ctx: LintContext, report: VerifyReport) -> None:
    """Forward may-analysis: track names possibly not yet assigned."""
    cfg = ctx.cfg
    all_names = {r.name for r in ctx.kernel.registers()}

    defs_in: Dict[int, Set[str]] = {}
    for block in cfg.blocks:
        defined: Set[str] = set()
        for inst in block.instructions:
            for reg in inst.defs():
                defined.add(reg.name)
        defs_in[block.index] = defined

    everything = frozenset(all_names)
    entry = cfg.entry.index

    def transfer(idx: int, in_set: FrozenSet[str]) -> FrozenSet[str]:
        if idx == entry:
            in_set = everything  # nothing is initialized at kernel entry
        return frozenset(in_set - defs_in[idx])

    solver: "ForwardMaySolver[str]" = ForwardMaySolver(cfg, transfer)
    solver.solve()

    flagged: Set[str] = set()
    for block in cfg.blocks:
        maybe_uninit = set(solver.in_sets[block.index])
        if block.index == entry:
            maybe_uninit |= all_names
        for pos, inst in block.positions():
            for reg in inst.uses():
                if reg.name in maybe_uninit and reg.name not in flagged:
                    flagged.add(reg.name)
                    report.add(Diagnostic(
                        rule="LNT402", kernel=ctx.kernel.name,
                        stage=report.stage, block=block.index,
                        position=pos, instruction=str(inst),
                        message=f"register {reg.name} may be read before "
                                f"initialization on some path",
                        data={"register": reg.name},
                    ))
            for reg in inst.defs():
                maybe_uninit.discard(reg.name)


def _check_dead_defs(ctx: LintContext, report: VerifyReport) -> None:
    for pos, inst in enumerate(ctx.liveness.instructions):
        for dreg in inst.defs():
            if dreg.name in ctx.liveness.live_out[pos]:
                continue
            report.add(Diagnostic(
                rule="LNT401", kernel=ctx.kernel.name, stage=report.stage,
                block=ctx.block_of(pos), position=pos, instruction=str(inst),
                message=f"value of {dreg.name} defined here is never "
                        f"used on any path",
                data={"register": dreg.name},
            ))


def _check_unreachable(ctx: LintContext, report: VerifyReport) -> None:
    cfg = ctx.cfg
    seen: Set[int] = set()
    stack = [cfg.entry.index]
    while stack:
        idx = stack.pop()
        if idx in seen:
            continue
        seen.add(idx)
        stack.extend(cfg.blocks[idx].successors)
    for block in cfg.blocks:
        if block.index in seen or not block.instructions:
            continue
        report.add(Diagnostic(
            rule="LNT403", kernel=ctx.kernel.name, stage=report.stage,
            block=block.index, position=block.start,
            instruction=str(block.instructions[0]),
            message=f"block {block.index}"
                    + (f" ({block.label})" if block.label else "")
                    + " is unreachable from entry",
            data={"label": block.label},
        ))


def _check_unreferenced_decls(ctx: LintContext, report: VerifyReport) -> None:
    referenced: Set[str] = set()
    for inst in ctx.kernel.instructions():
        for src in inst.srcs:
            if isinstance(src, Sym):
                referenced.add(src.name)
        if inst.mem is not None and isinstance(inst.mem.base, Sym):
            referenced.add(inst.mem.base.name)
    for arr in ctx.kernel.arrays:
        if arr.name in referenced:
            continue
        report.add(Diagnostic(
            rule="LNT404", kernel=ctx.kernel.name, stage=report.stage,
            message=f"array {arr.name} ({arr.size_bytes} B "
                    f"{arr.space.value}) is declared but never referenced",
            data={"array": arr.name, "space": arr.space.value,
                  "size_bytes": arr.size_bytes},
        ))
    for param in ctx.kernel.params:
        if param.name in referenced:
            continue
        report.add(Diagnostic(
            rule="LNT405", kernel=ctx.kernel.name, stage=report.stage,
            message=f"parameter {param.name} is never referenced",
            data={"param": param.name},
        ))
