"""The lint orchestrator behind ``repro lint`` (rules ``LNT*``).

Runs every whole-kernel static analyzer — pressure
(:mod:`.pressure`), memory (:mod:`.memaccess`), divergence
(:mod:`.divergence`), hygiene (:mod:`.hygiene`) — over one shared
:class:`~repro.analysis.context.LintContext` and returns a single
:class:`~repro.verify.diagnostics.VerifyReport` whose diagnostics all
carry stable ``LNT`` rule codes from :mod:`repro.verify.registry`.

Findings order is deterministic: analyzers run in a fixed order and
the report is sorted by (position, rule) at the end, so JSON/SARIF
output is byte-stable for golden tests and the CI ratchet baseline.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

from ..arch.config import FERMI, GPUConfig
from ..errors import ParseError
from ..ptx.module import Kernel
from ..verify.diagnostics import Diagnostic, VerifyReport
from .context import LintContext
from .divergence import analyze_divergence
from .hygiene import analyze_hygiene
from .memaccess import analyze_memaccess
from .pressure import analyze_pressure

#: The analyzers, in the order they run (pressure first: its findings
#: are the paper's headline story).
ANALYZERS: Tuple[Callable[[LintContext, VerifyReport], None], ...] = (
    analyze_pressure,
    analyze_memaccess,
    analyze_divergence,
    analyze_hygiene,
)


def run_lint(
    kernel: Kernel,
    config: GPUConfig = FERMI,
    rules: Optional[FrozenSet[str]] = None,
    source: Optional[str] = None,
) -> VerifyReport:
    """Run every lint analyzer over ``kernel``.

    ``rules`` (from :func:`repro.verify.registry.select_rules`)
    restricts the returned findings to a code subset; analyzers still
    all run — selection is a reporting filter, so rule interactions
    (e.g. ``LNT102`` only accompanying ``LNT101``) stay consistent.

    Raises :class:`repro.errors.ParseError` when the kernel's control
    flow is malformed (e.g. a branch to an undefined label) — lint
    needs a CFG, and a kernel without one is a parse-stage failure
    (exit 2), not a lint finding.
    """
    report = VerifyReport(kernel=kernel.name, stage="lint")
    try:
        ctx = LintContext.build(kernel, config=config, source=source)
    except ValueError as err:
        raise ParseError(str(err), kernel=kernel.name) from err
    for analyzer in ANALYZERS:
        analyzer(ctx, report)
    report.diagnostics.sort(key=_sort_key)
    if rules is not None:
        report.diagnostics = [
            d for d in report.diagnostics if d.rule in rules
        ]
    return report


def _sort_key(diag: Diagnostic) -> Tuple[int, str]:
    pos = diag.position if diag.position is not None else -1
    return (pos, diag.rule)


def severity_gate(
    report: VerifyReport, fail_on: str
) -> Tuple[bool, List[Diagnostic]]:
    """Whether ``report`` should fail the run under ``--fail-on``.

    ``fail_on`` is ``"error"`` (default: only ERROR findings gate),
    ``"warn"`` (WARNING and ERROR gate) or ``"never"`` (report only).
    Returns ``(failed, gating_findings)``.
    """
    if fail_on == "never":
        return False, []
    if fail_on == "warn":
        gating = [d for d in report.diagnostics if d.severity.value != "info"]
    else:
        gating = report.errors
    return bool(gating), gating
