"""Memory-access lint: coalescing, bank conflicts, dead stores (LNT2xx).

All three analyses read per-thread address *strides* off the
uniformity fixpoint (:mod:`repro.analysis.uniformity`) — an address
that is ``AFFINE(s)`` in ``tid.x`` is accessed by the 32 threads of a
warp at ``base, base+s, ..., base+31*s``:

* ``LNT201`` — a global access whose stride makes the warp touch more
  128-byte transactions than a contiguous access of the same width
  would (the static analogue of the coalescing check every profiler
  runs after the fact);
* ``LNT202`` — a global access through a statically unanalyzable
  (data-dependent) address: not wrong, but invisible to the model;
* ``LNT203`` — a shared-memory access whose word stride collides on
  the 32 four-byte banks (conflict degree ``gcd(stride_words, 32)``);
* ``LNT204`` — a store overwritten by a later same-slot store before
  any possible observer (within one block, conservatively invalidated
  by any same-space load, barrier, or base redefinition);
* ``LNT205`` — a store into a local-memory array that no load in the
  whole kernel ever reads back (dead private traffic).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from ..ptx.instruction import Instruction, Reg, Sym
from ..ptx.isa import Opcode, Space
from ..verify.diagnostics import Diagnostic, VerifyReport
from .context import LintContext

#: Global-memory transaction (cache line) size in bytes.
LINE_BYTES = 128
#: Shared memory: 32 banks of 4-byte words.
BANKS = 32
WARP = 32


def analyze_memaccess(ctx: LintContext, report: VerifyReport) -> None:
    _check_access_shapes(ctx, report)
    _check_dead_stores(ctx, report)
    _check_dead_local_arrays(ctx, report)


# ----------------------------------------------------------------------
# Coalescing and bank conflicts.
# ----------------------------------------------------------------------
def _check_access_shapes(ctx: LintContext, report: VerifyReport) -> None:
    uni = ctx.uniformity
    for pos, inst in enumerate(ctx.liveness.instructions):
        if not inst.is_memory or inst.mem is None:
            continue
        width = inst.dtype.bytes if inst.dtype is not None else 4
        stride = uni.address_of(inst.mem).known_stride

        if inst.space is Space.GLOBAL:
            if stride is None:
                report.add(Diagnostic(
                    rule="LNT202", kernel=ctx.kernel.name, stage=report.stage,
                    block=ctx.block_of(pos), position=pos,
                    instruction=str(inst),
                    message="global access through a data-dependent "
                            "address; coalescing cannot be analyzed "
                            "statically",
                    data={"width_bytes": width},
                ))
                continue
            if stride == 0:
                continue  # warp-wide broadcast: one transaction
            lines = len({
                (t * stride) // LINE_BYTES for t in range(WARP)
            })
            ideal = max(1, -(-WARP * width // LINE_BYTES))
            if lines > ideal:
                report.add(Diagnostic(
                    rule="LNT201", kernel=ctx.kernel.name, stage=report.stage,
                    block=ctx.block_of(pos), position=pos,
                    instruction=str(inst),
                    message=(
                        f"per-thread stride of {stride} B makes one warp "
                        f"touch {lines} {LINE_BYTES}-byte transactions "
                        f"({ideal} if coalesced)"
                    ),
                    data={"stride_bytes": stride, "width_bytes": width,
                          "transactions": lines, "ideal": ideal},
                ))
        elif inst.space is Space.SHARED:
            if stride is None or stride == 0 or stride % 4 != 0:
                continue
            degree = math.gcd(stride // 4, BANKS)
            if degree > 1:
                report.add(Diagnostic(
                    rule="LNT203", kernel=ctx.kernel.name, stage=report.stage,
                    block=ctx.block_of(pos), position=pos,
                    instruction=str(inst),
                    message=(
                        f"per-thread stride of {stride} B collides on the "
                        f"{BANKS} shared-memory banks with conflict "
                        f"degree {degree} (serialized {degree}x)"
                    ),
                    data={"stride_bytes": stride, "conflict_degree": degree},
                ))


# ----------------------------------------------------------------------
# Dead stores.
# ----------------------------------------------------------------------
#: key identifying one statically-resolvable store slot
_SlotKey = Tuple[Space, str, int]


def _slot_key(inst: Instruction) -> Optional[_SlotKey]:
    if inst.mem is None or inst.space is None:
        return None
    base = inst.mem.base
    name = base.name if isinstance(base, (Reg, Sym)) else None
    if name is None:  # pragma: no cover - MemRef bases are Reg|Sym
        return None
    return (inst.space, name, inst.mem.offset)


def _check_dead_stores(ctx: LintContext, report: VerifyReport) -> None:
    """Per-block scan: a store killed by a later same-slot store with no
    intervening possible observer is dead (``LNT204``)."""
    for block in ctx.cfg.blocks:
        pending: Dict[_SlotKey, Tuple[int, Instruction]] = {}
        for pos, inst in block.positions():
            if inst.opcode is Opcode.BAR:
                pending.clear()  # other threads may observe anything
                continue
            if inst.opcode is Opcode.LD and inst.space is not None:
                # Conservative aliasing: any same-space load may read
                # any pending slot of that space.
                for key in [k for k in pending if k[0] is inst.space]:
                    del pending[key]
                continue
            if inst.opcode is Opcode.ST:
                key = _slot_key(inst)
                if key is None:
                    continue
                prior = pending.get(key)
                if prior is not None and inst.guard is None:
                    ppos, pinst = prior
                    report.add(Diagnostic(
                        rule="LNT204", kernel=ctx.kernel.name,
                        stage=report.stage, block=block.index,
                        position=ppos, instruction=str(pinst),
                        message=(
                            f"store to [{key[1]}+{key[2]}] is overwritten "
                            f"at position {pos} before any load observes "
                            f"it"
                        ),
                        data={"space": key[0].value, "base": key[1],
                              "offset": key[2], "overwritten_at": pos},
                    ))
                pending[key] = (pos, inst)
                continue
            # A redefined base register invalidates keys through it.
            for dreg in inst.defs():
                for key in [k for k in pending if k[1] == dreg.name]:
                    del pending[key]


def _resolve_array(ctx: LintContext, inst: Instruction) -> Optional[str]:
    """Array name behind a memory access, when statically certain."""
    if inst.mem is None:
        return None
    base = inst.mem.base
    if isinstance(base, Sym):
        return base.name
    # One level of indirection: a register whose only definition in the
    # kernel is `mov %rd, ArrayName`.
    defs = [
        i for i in ctx.kernel.instructions()
        if i.dst is not None and i.dst.name == base.name
    ]
    if len(defs) == 1 and defs[0].opcode is Opcode.MOV and defs[0].srcs:
        src = defs[0].srcs[0]
        if isinstance(src, Sym):
            return src.name
    return None


def _check_dead_local_arrays(ctx: LintContext, report: VerifyReport) -> None:
    """Whole-kernel: stores into a local array nothing ever loads
    (``LNT205``).  Local memory is thread-private, so no other thread
    can be the observer — unlike shared/global, never-loaded really
    means dead."""
    loaded: Set[str] = set()
    unresolved_local_load = False
    for inst in ctx.kernel.instructions():
        if inst.opcode is not Opcode.LD or inst.space is not Space.LOCAL:
            continue
        arr = _resolve_array(ctx, inst)
        if arr is None:
            unresolved_local_load = True
        else:
            loaded.add(arr)
    if unresolved_local_load:
        return  # some load may read anything local; stay quiet
    for pos, inst in enumerate(ctx.liveness.instructions):
        if inst.opcode is not Opcode.ST or inst.space is not Space.LOCAL:
            continue
        arr = _resolve_array(ctx, inst)
        if arr is None or arr in loaded:
            continue
        report.add(Diagnostic(
            rule="LNT205", kernel=ctx.kernel.name, stage=report.stage,
            block=ctx.block_of(pos), position=pos, instruction=str(inst),
            message=f"store into local array {arr} which no load in the "
                    f"kernel ever reads back",
            data={"array": arr},
        ))
