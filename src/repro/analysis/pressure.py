"""Register-pressure lint: occupancy-stair hotspot attribution (LNT1xx).

The paper's whole premise is that MaxLive is not just a number but a
*position*: somewhere in the kernel a handful of operations push the
simultaneous live set past the register budget that would have allowed
one more resident block per SM.  This analyzer names those operations.

From the shared :meth:`~repro.cfg.liveness.LivenessInfo.pressure_profile`
(the same walk the allocator's MaxLive uses — satellite guarantee: they
can never disagree) and :mod:`repro.arch.occupancy`:

* ``LNT101`` — when registers are the occupancy limiter and one more
  block per SM would be feasible by every other resource, each
  position where the profile *crosses* the next stair's register
  budget is flagged: the defs at that point are the hotspot the
  paper's coordinated allocation would spill or reschedule first.
* ``LNT102`` — the first position attaining MaxLive (attribution
  context; emitted only when a crossing was found).
* ``LNT103`` — the kernel cannot fit even one block per SM at its
  MaxLive (it will spill no matter the TLP choice).
"""

from __future__ import annotations

from typing import List

from ..arch.occupancy import LimitingResource, compute_occupancy, max_reg_at_tlp
from ..verify.diagnostics import Diagnostic, VerifyReport
from .context import LintContext


def analyze_pressure(ctx: LintContext, report: VerifyReport) -> None:
    profile: List[int] = ctx.liveness.pressure_profile()
    if not profile:
        return
    maxlive = max(profile)
    kernel = ctx.kernel
    shm = kernel.shared_bytes()

    try:
        occ = compute_occupancy(
            ctx.config, maxlive, shm, kernel.block_size
        )
    except ValueError:
        report.add(Diagnostic(
            rule="LNT103", kernel=kernel.name, stage=report.stage,
            message=(
                f"MaxLive {maxlive} does not fit even one "
                f"{kernel.block_size}-thread block on "
                f"{ctx.config.name} ({ctx.config.registers_per_sm} "
                f"registers/SM): the kernel spills at any TLP"
            ),
            data={"maxlive": maxlive, "block_size": kernel.block_size,
                  "registers_per_sm": ctx.config.registers_per_sm},
        ))
        return

    if occ.limiting is not LimitingResource.REGISTERS:
        return  # more registers are free here; no stair to blame
    try:
        stair = max_reg_at_tlp(
            ctx.config, occ.blocks + 1, shm, kernel.block_size
        )
    except ValueError:
        return  # one more block is capped by shm/threads/blocks anyway
    if stair <= 0 or maxlive <= stair:
        return

    crossings = [
        pos for pos in range(len(profile))
        if profile[pos] > stair and (pos == 0 or profile[pos - 1] <= stair)
    ]
    for pos in crossings:
        inst = ctx.liveness.instructions[pos]
        defs = sorted(r.name for r in inst.defs())
        report.add(Diagnostic(
            rule="LNT101", kernel=kernel.name, stage=report.stage,
            block=ctx.block_of(pos), position=pos, instruction=str(inst),
            message=(
                f"pressure rises to {profile[pos]} slots here, past the "
                f"{stair}-register stair that would fit "
                f"{occ.blocks + 1} blocks/SM instead of {occ.blocks}"
            ),
            data={"pressure": profile[pos], "stair": stair,
                  "tlp": occ.blocks, "next_tlp": occ.blocks + 1,
                  "defs": defs},
        ))
    if crossings:
        peak = profile.index(maxlive)
        inst = ctx.liveness.instructions[peak]
        report.add(Diagnostic(
            rule="LNT102", kernel=kernel.name, stage=report.stage,
            block=ctx.block_of(peak), position=peak, instruction=str(inst),
            message=f"peak register pressure (MaxLive {maxlive} slots) "
                    f"is attained here",
            data={"maxlive": maxlive},
        ))
