"""SARIF 2.1.0 rendering of lint reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard every code-scanning UI ingests — emitting it makes ``repro
lint`` findings show up as annotations in CI instead of buried in job
logs.  One :func:`to_sarif` run aggregates any number of per-kernel
:class:`~repro.verify.diagnostics.VerifyReport` objects into a single
``runs[0]`` with:

* ``tool.driver.rules`` — the referenced subset of the stable registry
  (:mod:`repro.verify.registry`), sorted by code, so ``ruleIndex`` is
  deterministic;
* one ``result`` per diagnostic, with the severity mapped onto SARIF
  levels (``info`` → ``note``), a logical location
  (``kernel:blockN:instM``), a physical ``artifactLocation`` when the
  source file is known, and the diagnostic's machine ``data`` payload
  under ``properties``.

The output is deterministic for a given input (no timestamps, sorted
rules), which the golden test and the CI artifact diff rely on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..verify.diagnostics import Diagnostic, VerifyReport
from ..verify.registry import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def to_sarif(
    reports: Iterable[VerifyReport],
    sources: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Render reports as one SARIF 2.1.0 log object.

    ``sources`` maps kernel name -> source file URI for physical
    locations (omitted when unknown).
    """
    reports = list(reports)
    sources = sources or {}
    used_codes = sorted({
        d.rule for rep in reports for d in rep.diagnostics
    })
    rule_index = {code: i for i, code in enumerate(used_codes)}

    results: List[Dict[str, Any]] = []
    for rep in reports:
        for diag in rep.diagnostics:
            results.append(_result(diag, rule_index, sources.get(rep.kernel)))

    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/paper-repro/repro",
                    "rules": [
                        {
                            "id": code,
                            "shortDescription": {
                                "text": RULES[code].summary,
                            },
                            "defaultConfiguration": {
                                "level": _LEVELS[
                                    RULES[code].severity.value
                                ],
                            },
                            "properties": {
                                "owner": RULES[code].owner,
                            },
                        }
                        for code in used_codes
                    ],
                },
            },
            "results": results,
        }],
    }


def _result(
    diag: Diagnostic,
    rule_index: Dict[str, int],
    source: Optional[str],
) -> Dict[str, Any]:
    qualified = diag.kernel
    if diag.block is not None:
        qualified += f":block{diag.block}"
    if diag.position is not None:
        qualified += f":inst{diag.position}"
    location: Dict[str, Any] = {
        "logicalLocations": [{
            "fullyQualifiedName": qualified,
            "kind": "function",
        }],
    }
    if source is not None:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": source},
        }
    properties: Dict[str, Any] = dict(diag.data)
    if diag.instruction:
        properties["instruction"] = diag.instruction
    return {
        "ruleId": diag.rule,
        "ruleIndex": rule_index[diag.rule],
        "level": _LEVELS[diag.severity.value],
        "message": {"text": diag.message},
        "locations": [location],
        "properties": properties,
    }
