"""Computation/memory segmentation of a kernel (paper Figure 10a).

The static OptTLP analysis "first analyzes the PTX code and divides the
kernels into computation and memory segments.  For each segment, we
compute its latency by summing the latency of all its instructions"
(Section 4.1).  A *segment* is a maximal run of instructions of one
kind in the expected dynamic instruction stream; loop bodies contribute
one segment pair per estimated iteration, which we represent compactly
as per-iteration segments plus a repeat count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..arch.config import GPUConfig
from ..cfg.graph import CFG
from ..cfg.loops import loop_depths
from ..ptx.isa import LatencyClass, Space
from ..ptx.module import Kernel

#: Default static trip-count guess for loops whose bounds are not known.
DEFAULT_TRIP_COUNT = 16


@dataclasses.dataclass(frozen=True)
class Segment:
    """One computation or memory segment of the dynamic stream."""

    kind: str  # "compute" or "memory"
    cycles: float  # summed issue latency of the segment's instructions
    mem_requests: int = 0  # memory instructions in the segment
    weight: float = 1.0  # expected executions (loop trip product)

    @property
    def is_memory(self) -> bool:
        return self.kind == "memory"


def segment_kernel(
    kernel: Kernel,
    config: GPUConfig,
    trip_count: int = DEFAULT_TRIP_COUNT,
    trip_counts: Optional[Dict[int, int]] = None,
) -> List[Segment]:
    """Split a kernel into weighted compute/memory segments.

    ``trip_counts`` optionally maps loop-header block indices to known
    trip counts (the workload table supplies them); unknown loops use
    ``trip_count``.  Instruction latencies come from the architecture's
    latency table — memory-instruction *service* time is added later by
    the GTO mimic using the measured average hit ratio, so here memory
    segments only carry their request counts and issue cost.
    """
    cfg = CFG(kernel)
    depths = loop_depths(cfg)
    trip_counts = trip_counts or {}
    lat = config.latency

    segments: List[Segment] = []
    current_kind: Optional[str] = None
    current_cycles = 0.0
    current_requests = 0
    current_weight = 1.0

    def flush() -> None:
        nonlocal current_cycles, current_requests, current_kind
        if current_kind is not None and (current_cycles or current_requests):
            segments.append(
                Segment(
                    kind=current_kind,
                    cycles=current_cycles,
                    mem_requests=current_requests,
                    weight=current_weight,
                )
            )
        current_cycles = 0.0
        current_requests = 0

    for block in cfg.blocks:
        depth = depths.get(block.index, 0)
        weight = 1.0
        for _ in range(depth):
            weight *= trip_counts.get(block.index, trip_count)
        if weight != current_weight:
            flush()
            current_weight = weight
        for inst in block.instructions:
            klass = inst.latency_class
            if klass is LatencyClass.MEM and inst.space in (
                Space.GLOBAL,
                Space.LOCAL,
                Space.CONST,
                Space.PARAM,
            ):
                kind = "memory"
                cycles = 1.0  # issue slot; service time modeled downstream
                requests = 1
            else:
                kind = "compute"
                requests = 0
                if klass is LatencyClass.SFU:
                    cycles = float(lat.sfu)
                elif klass is LatencyClass.MEM:  # shared memory
                    cycles = float(lat.shared_mem)
                elif klass is LatencyClass.CTRL:
                    cycles = float(lat.ctrl)
                elif klass is LatencyClass.BARRIER:
                    cycles = 1.0
                else:
                    cycles = float(lat.alu)
            if kind != current_kind:
                flush()
                current_kind = kind
            current_cycles += cycles
            current_requests += requests
    flush()
    return segments


def total_cycles(segments: List[Segment]) -> float:
    """Weighted issue-cycle total across all segments."""
    return sum(s.cycles * s.weight for s in segments)


def total_mem_requests(segments: List[Segment]) -> float:
    """Weighted memory-request total across all segments."""
    return sum(s.mem_requests * s.weight for s in segments)
