"""Warp-uniformity and thread-stride abstract interpretation.

The foundation under the lint analyzers: for every register name, a
flow-insensitive fixpoint over the kernel computes how its value varies
*across the threads of one warp*:

``CONST(c)``
    the same known integer constant in every thread;
``UNIFORM``
    the same (unknown) value in every thread — block indices, kernel
    parameters, loaded-from-uniform-address values;
``AFFINE(s)``
    ``base + s * tid.x`` with a warp-uniform ``base`` and known nonzero
    integer stride ``s`` — the canonical coalesced-addressing shape;
``VARYING``
    anything else (data-dependent, ``tid.y``/``tid.z``-dependent,
    non-affine in ``tid.x``).

Divergence analysis asks whether branch guards are ``UNIFORM``
(``LNT3xx``); memory analysis turns the stride of an address into
transactions-per-warp and bank-conflict degree (``LNT2xx``).  The
lattice is ``CONST ⊑ UNIFORM ⊑ VARYING`` and ``AFFINE(s) ⊑ VARYING``,
so the fixpoint terminates in a few sweeps regardless of loop
structure; flow-insensitivity (one abstract value per name, joined
over all its definitions) is deliberately conservative — a name that
is uniform on one path and varying on another is simply varying.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Union

from ..ptx.instruction import Imm, Instruction, MemRef, Operand, Reg, Sreg, Sym
from ..ptx.isa import Opcode
from ..ptx.module import Kernel


class Kind(enum.Enum):
    CONST = "const"
    UNIFORM = "uniform"
    AFFINE = "affine"
    VARYING = "varying"


@dataclasses.dataclass(frozen=True)
class AbsVal:
    """One point of the uniformity lattice."""

    kind: Kind
    #: known integer value (``CONST`` only)
    value: Optional[int] = None
    #: per-thread stride along ``tid.x`` in value units (``AFFINE`` only)
    stride: int = 0

    @property
    def is_uniform(self) -> bool:
        """Same value in every thread of a warp."""
        return self.kind in (Kind.CONST, Kind.UNIFORM)

    @property
    def known_stride(self) -> Optional[int]:
        """Per-thread stride, or ``None`` when statically unknown."""
        if self.kind in (Kind.CONST, Kind.UNIFORM):
            return 0
        if self.kind is Kind.AFFINE:
            return self.stride
        return None

    def __str__(self) -> str:
        if self.kind is Kind.CONST:
            return f"const({self.value})"
        if self.kind is Kind.AFFINE:
            return f"affine(stride={self.stride})"
        return self.kind.value


UNIFORM = AbsVal(Kind.UNIFORM)
VARYING = AbsVal(Kind.VARYING)


def const(value: int) -> AbsVal:
    return AbsVal(Kind.CONST, value=value)


def affine(stride: int) -> AbsVal:
    """Affine-in-tid.x with the given stride (stride 0 is just uniform)."""
    if stride == 0:
        return UNIFORM
    return AbsVal(Kind.AFFINE, stride=stride)


def join(a: Optional[AbsVal], b: Optional[AbsVal]) -> Optional[AbsVal]:
    """Least upper bound; ``None`` is bottom (no definition seen yet)."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if a.is_uniform and b.is_uniform:
        return UNIFORM  # distinct constants / constant vs uniform
    sa, sb = a.known_stride, b.known_stride
    if sa is not None and sa == sb:
        return affine(sa)
    return VARYING


#: Special registers: ``%tid.x`` is the affine generator; the y/z thread
#: indices vary within a warp non-affinely in tid.x (warps are laid out
#: along x); block/grid geometry is warp-uniform.
def _sreg_value(name: str) -> AbsVal:
    if name == "%tid.x":
        return affine(1)
    if name.startswith("%tid."):
        return VARYING
    return UNIFORM


class UniformityInfo:
    """Fixpoint result: an :class:`AbsVal` per register name."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.env: Dict[str, Optional[AbsVal]] = {}
        self._solve()

    # ------------------------------------------------------------------
    def value_of(self, operand: Union[Operand, MemRef, None]) -> AbsVal:
        """Abstract value of an operand (``VARYING`` if unknown)."""
        if operand is None:
            return VARYING
        if isinstance(operand, Reg):
            val = self.env.get(operand.name)
            return val if val is not None else VARYING
        if isinstance(operand, Imm):
            if isinstance(operand.value, int) and not operand.dtype.is_float:
                return const(int(operand.value))
            return UNIFORM
        if isinstance(operand, Sreg):
            return _sreg_value(operand.name)
        if isinstance(operand, Sym):
            return UNIFORM  # array base addresses are warp-uniform
        if isinstance(operand, MemRef):
            return self.address_of(operand)
        return VARYING

    def address_of(self, mem: MemRef) -> AbsVal:
        """Abstract value of a ``[base+offset]`` effective address."""
        base = self.value_of(mem.base)
        if base.kind is Kind.CONST:
            return const(base.value + mem.offset)  # type: ignore[operator]
        return base  # constant offset shifts the base, stride unchanged

    def guard_is_divergent(self, inst: Instruction) -> bool:
        """Whether the instruction's guard predicate varies per-thread."""
        return inst.guard is not None and not self.value_of(inst.guard).is_uniform

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        insts = self.kernel.instructions()
        changed = True
        while changed:
            changed = False
            for inst in insts:
                if inst.dst is None:
                    continue
                new = self._transfer(inst)
                # A divergent guard makes the update thread-dependent:
                # some lanes write, others keep the old value.
                if self.guard_is_divergent(inst):
                    new = VARYING
                name = inst.dst.name
                merged = join(self.env.get(name), new)
                if merged != self.env.get(name):
                    self.env[name] = merged
                    changed = True

    def _transfer(self, inst: Instruction) -> AbsVal:
        op = inst.opcode
        vals = [self.value_of(s) for s in inst.srcs]

        if op in (Opcode.MOV, Opcode.CVT):
            return vals[0] if vals else VARYING
        if op is Opcode.ADD and len(vals) == 2:
            return self._add(vals[0], vals[1])
        if op is Opcode.SUB and len(vals) == 2:
            return self._add(vals[0], self._neg(vals[1]))
        if op is Opcode.NEG and vals:
            return self._neg(vals[0])
        if op in (Opcode.MUL, Opcode.MAD, Opcode.FMA) and len(vals) >= 2:
            prod = self._mul(vals[0], vals[1])
            if op in (Opcode.MAD, Opcode.FMA) and len(vals) == 3:
                return self._add(prod, vals[2])
            return prod
        if op is Opcode.SHL and len(vals) == 2:
            if vals[1].kind is Kind.CONST:
                return self._mul(vals[0], const(1 << int(vals[1].value or 0)))
            return VARYING if not all(v.is_uniform for v in vals) else UNIFORM
        if op is Opcode.LD:
            addr = self.address_of(inst.mem) if inst.mem else VARYING
            return UNIFORM if addr.is_uniform else VARYING
        if op is Opcode.SETP and len(vals) == 2:
            return UNIFORM if all(v.is_uniform for v in vals) else VARYING
        if op is Opcode.SELP and len(vals) == 3:
            return UNIFORM if all(v.is_uniform for v in vals) else VARYING
        # Everything else (div/rem/shr/bitwise/sfu/min/max/abs/...) is
        # warp-uniform iff all inputs are; affinity does not survive.
        if vals and all(v.is_uniform for v in vals):
            return UNIFORM
        return VARYING

    # -- arithmetic on lattice points ----------------------------------
    @staticmethod
    def _neg(a: AbsVal) -> AbsVal:
        if a.kind is Kind.CONST:
            return const(-(a.value or 0))
        if a.kind is Kind.AFFINE:
            return affine(-a.stride)
        return a

    @staticmethod
    def _add(a: AbsVal, b: AbsVal) -> AbsVal:
        if a.kind is Kind.CONST and b.kind is Kind.CONST:
            return const((a.value or 0) + (b.value or 0))
        sa, sb = a.known_stride, b.known_stride
        if sa is None or sb is None:
            return VARYING
        return affine(sa + sb)

    @staticmethod
    def _mul(a: AbsVal, b: AbsVal) -> AbsVal:
        if a.kind is Kind.CONST and b.kind is Kind.CONST:
            return const((a.value or 0) * (b.value or 0))
        for x, y in ((a, b), (b, a)):
            if x.kind is Kind.CONST:
                if y.kind is Kind.AFFINE:
                    return affine(y.stride * (x.value or 0))
                if y.is_uniform:
                    return UNIFORM
        if a.is_uniform and b.is_uniform:
            return UNIFORM
        return VARYING


def analyze_uniformity(kernel: Kernel) -> UniformityInfo:
    """Convenience: run the uniformity fixpoint on a kernel."""
    return UniformityInfo(kernel)
