"""GPU architecture model: configurations, occupancy, measured latencies."""

from .config import CONFIGS, FERMI, KEPLER, CacheConfig, GPUConfig, LatencyConfig, get_config
from .latency import MemoryCosts, measure_costs
from .occupancy import (
    LimitingResource,
    Occupancy,
    compute_occupancy,
    max_reg_at_tlp,
    max_tlp,
    register_utilization,
    shared_memory_utilization,
    spare_shm_per_block,
)

__all__ = [
    "CONFIGS",
    "CacheConfig",
    "FERMI",
    "GPUConfig",
    "KEPLER",
    "LatencyConfig",
    "LimitingResource",
    "MemoryCosts",
    "Occupancy",
    "compute_occupancy",
    "get_config",
    "max_reg_at_tlp",
    "max_tlp",
    "measure_costs",
    "register_utilization",
    "shared_memory_utilization",
    "spare_shm_per_block",
]
