"""GPU architecture configurations (paper Table 2).

Two presets match the paper's evaluation platforms: a Fermi-like SM
(Section 7.1, Table 2) and a Kepler-like SM (Section 7.3, which doubles
the register file and raises the thread limit).  All simulator and
occupancy parameters live here so experiments can sweep them.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class LatencyConfig:
    """Instruction and memory latencies in SM cycles.

    Values follow the published GPGPU-Sim Fermi model and
    micro-benchmarking studies: arithmetic ~18 cycles, SFU ~32, shared
    memory ~36, L1 hit ~46, L2 ~350 total, DRAM ~560 total.  The paper
    measures ``Cost_local`` / ``Cost_shm`` "on the target architecture
    through micro benchmarks" — :mod:`repro.arch.latency` does the same
    against our simulator.
    """

    alu: int = 18
    sfu: int = 32
    ctrl: int = 8  # branch-resolution bubble before the next fetch
    shared_mem: int = 26
    l1_hit: int = 24
    l2_hit: int = 300
    dram: int = 550
    block_launch: int = 20  # cycles to swap a finished block for a new one
    issue_per_cycle: int = 1  # instructions per scheduler per cycle


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry."""

    size_bytes: int
    associativity: int
    line_bytes: int
    mshr_entries: int

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its geometry")
        return sets


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Full SM + memory-hierarchy configuration."""

    name: str
    num_sms: int = 15
    cores_per_sm: int = 32
    clock_mhz: int = 700
    warp_size: int = 32
    num_schedulers: int = 2
    # Register file: 128 KB / SM on Fermi = 32768 32-bit registers.
    registers_per_sm: int = 32768
    #: Architectural ceiling on registers per thread (63 on Fermi and
    #: Kepler-1; the ISA encodes 6-bit register ids).  Demands above it
    #: spill no matter what the TLP is — the reason CRAT's CFD/FDTD
    #: points keep spilling even at low occupancy.
    max_reg_per_thread: int = 63
    # Shared memory: 48 KB / SM.
    shared_mem_per_sm: int = 49152
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    l1: CacheConfig = CacheConfig(
        size_bytes=32 * 1024, associativity=4, line_bytes=128, mshr_entries=32
    )
    l2_size_bytes: int = 768 * 1024
    l2_banks: int = 6
    #: The L2 is shared by every SM running the same kernel, so the
    #: slice one SM's misses can actually hold is far smaller than
    #: size/num_sms: the other SMs' interleaved miss streams evict it.
    #: The effective exclusive slice is size / (num_sms * interference).
    l2_interference: int = 4
    # DRAM bandwidth expressed as bytes per SM-cycle per SM share.
    dram_bytes_per_cycle: float = 6.0
    latency: LatencyConfig = LatencyConfig()

    @property
    def min_reg_per_thread(self) -> int:
        """Paper Section 4.1: ``MinReg = NumRegister / MaxThreads``.

        Allocating fewer registers per thread than this can never raise
        the TLP (the thread limit binds first), so it is the floor of
        the interesting design range.
        """
        return self.registers_per_sm // self.max_threads_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def scaled(self, **overrides) -> "GPUConfig":
        """A copy with selected fields replaced (for sweeps)."""
        return dataclasses.replace(self, **overrides)


#: Fermi-like configuration of paper Table 2.
FERMI = GPUConfig(name="fermi")

#: Kepler-like configuration of paper Section 7.3: register file doubled
#: to 256 KB and the concurrent-thread limit raised from 1536 to 2048.
KEPLER = GPUConfig(
    name="kepler",
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
)

CONFIGS = {"fermi": FERMI, "kepler": KEPLER}


def get_config(name: str) -> GPUConfig:
    try:
        return CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; available: {sorted(CONFIGS)}"
        ) from None
