"""Micro-benchmarks measuring memory costs on the simulator.

The paper measures ``Cost_local`` and ``Cost_shm`` — the per-access
delay of local and shared memory — "on the target architecture through
micro benchmarks" (Section 6) and feeds them into the TPSC spill-cost
model.  We do the same against our simulator: a pointer-chase-style
kernel issues dependent accesses to one space and the cost per access
is recovered from the cycle difference against an empty-bodied control
kernel.

Results are cached per configuration; the numbers move only when the
simulator's latency model moves, which is exactly the coupling the
paper wants (the model measures the machine it optimizes for).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..ptx.builder import KernelBuilder
from ..ptx.isa import CmpOp, DType, Space
from .config import GPUConfig


@dataclasses.dataclass(frozen=True)
class MemoryCosts:
    """Measured per-access delays in cycles (TPSC inputs)."""

    cost_local: float
    cost_shared: float
    cost_other: float  # plain ALU instruction cost (address computation)


_CACHE: Dict[Tuple[str, int], MemoryCosts] = {}


def _chase_kernel(space: Space, accesses: int) -> "KernelBuilder":
    """A single-warp kernel doing ``accesses`` dependent spill-style accesses."""
    b = KernelBuilder(f"chase_{space.value}", block_size=32)
    b.param("output", DType.U64)
    if space is Space.LOCAL:
        stack = b.local_array("Stack", 64)
    else:
        stack = b.shared_array("Stack", 64 * 32)
    base = b.addr_of(stack)
    val = b.mov(b.imm(1, DType.S32))
    i = b.mov(b.imm(0, DType.S32))
    loop = b.label("loop")
    done = b.label("done")
    b.place(loop)
    p = b.setp(CmpOp.GE, i, b.imm(accesses, DType.S32))
    b.bra(done, guard=p)
    # Dependent store/load pair through the spill slot.
    b.st(space, base, val, dtype=DType.S32)
    val = b.ld(space, base, dtype=DType.S32)
    b.mov_to(i, b.add(i, b.imm(1, DType.S32)))
    b.bra(loop)
    b.place(done)
    from ..ptx.instruction import Sym

    out = b.addr_of(Sym("output"))
    b.st(Space.GLOBAL, out, val, dtype=DType.S32)
    return b


def _control_kernel(iterations: int) -> "KernelBuilder":
    """Same loop skeleton with an ALU pair instead of memory accesses."""
    b = KernelBuilder("chase_control", block_size=32)
    b.param("output", DType.U64)
    val = b.mov(b.imm(1, DType.S32))
    i = b.mov(b.imm(0, DType.S32))
    loop = b.label("loop")
    done = b.label("done")
    b.place(loop)
    p = b.setp(CmpOp.GE, i, b.imm(iterations, DType.S32))
    b.bra(done, guard=p)
    val = b.add(val, b.imm(1, DType.S32))
    val = b.add(val, b.imm(1, DType.S32))
    b.mov_to(i, b.add(i, b.imm(1, DType.S32)))
    b.bra(loop)
    b.place(done)
    from ..ptx.instruction import Sym

    out = b.addr_of(Sym("output"))
    b.st(Space.GLOBAL, out, val, dtype=DType.S32)
    return b


def measure_costs(config: GPUConfig, accesses: int = 64) -> MemoryCosts:
    """Measure Cost_local / Cost_shm / Cost_other on this configuration."""
    # Key on the full configuration content, not the preset name:
    # ``config.scaled(...)`` copies share a name but differ in fields.
    key = (repr(config), accesses)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    from ..engine import get_engine

    def cycles_of(builder: KernelBuilder) -> float:
        kernel = builder.build()
        result = get_engine().simulate(kernel, config, tlp=1, grid_blocks=1)
        return result.cycles

    control = cycles_of(_control_kernel(accesses))
    local = cycles_of(_chase_kernel(Space.LOCAL, accesses))
    shared = cycles_of(_chase_kernel(Space.SHARED, accesses))
    # Each iteration replaces two dependent ALU adds with a dependent
    # store+load pair, so per access: cost_mem = delta/(2n) + cost_alu.
    alu = float(config.latency.alu)
    cost_local = max(alu, (local - control) / (2 * accesses) + alu)
    cost_shared = max(alu, (shared - control) / (2 * accesses) + alu)
    costs = MemoryCosts(
        cost_local=cost_local,
        cost_shared=cost_shared,
        cost_other=alu,
    )
    _CACHE[key] = costs
    return costs
