"""Occupancy calculation: how many thread blocks fit on an SM.

"GPU kernel will launch as many thread blocks concurrently as possible
until one or more dimension of resources are exhausted" (paper Section
2.1).  The four dimensions are registers, shared memory, the thread
limit, and the block limit.  This module computes ``MaxTLP`` for a
``(reg_per_thread, shm_per_block, block_size)`` triple, the limiting
resource, and the staircase quantities the design-space component needs
(the largest register count that still sustains a given TLP).
"""

from __future__ import annotations

import dataclasses
import enum

from .config import GPUConfig


class LimitingResource(enum.Enum):
    """Which resource dimension binds the occupancy."""

    REGISTERS = "registers"
    SHARED_MEMORY = "shared_memory"
    THREADS = "threads"
    BLOCKS = "blocks"


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel configuration on one SM."""

    blocks: int
    limiting: LimitingResource
    blocks_by_regs: int
    blocks_by_shm: int
    blocks_by_threads: int
    blocks_by_limit: int

    def __str__(self) -> str:
        return f"{self.blocks} blocks/SM (limited by {self.limiting.value})"


def compute_occupancy(
    config: GPUConfig,
    reg_per_thread: int,
    shm_per_block: int,
    block_size: int,
) -> Occupancy:
    """MaxTLP for the given resource usage.

    ``reg_per_thread`` is in 32-bit register slots.  A kernel that
    cannot fit even one block raises ``ValueError`` — such design
    points are infeasible and are excluded from the design space.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if reg_per_thread < 0 or shm_per_block < 0:
        raise ValueError("resource usage cannot be negative")
    if block_size > config.max_threads_per_sm:
        raise ValueError(
            f"block size {block_size} exceeds the per-SM thread limit "
            f"{config.max_threads_per_sm}"
        )

    regs_per_block = reg_per_thread * block_size
    blocks_by_regs = (
        config.registers_per_sm // regs_per_block if regs_per_block else 10**9
    )
    blocks_by_shm = (
        config.shared_mem_per_sm // shm_per_block if shm_per_block else 10**9
    )
    blocks_by_threads = config.max_threads_per_sm // block_size
    blocks_by_limit = config.max_blocks_per_sm

    blocks = min(blocks_by_regs, blocks_by_shm, blocks_by_threads, blocks_by_limit)
    if blocks <= 0:
        raise ValueError(
            f"kernel does not fit on an SM: reg/thread={reg_per_thread}, "
            f"shm/block={shm_per_block}, block_size={block_size}"
        )

    # Report the binding dimension; ties resolve in this order, which
    # matches how the paper discusses limits (registers first).
    if blocks == blocks_by_regs:
        limiting = LimitingResource.REGISTERS
    elif blocks == blocks_by_shm:
        limiting = LimitingResource.SHARED_MEMORY
    elif blocks == blocks_by_threads:
        limiting = LimitingResource.THREADS
    else:
        limiting = LimitingResource.BLOCKS

    return Occupancy(
        blocks=blocks,
        limiting=limiting,
        blocks_by_regs=min(blocks_by_regs, 10**9),
        blocks_by_shm=min(blocks_by_shm, 10**9),
        blocks_by_threads=blocks_by_threads,
        blocks_by_limit=blocks_by_limit,
    )


def max_tlp(
    config: GPUConfig, reg_per_thread: int, shm_per_block: int, block_size: int
) -> int:
    """Shorthand for ``compute_occupancy(...).blocks``."""
    return compute_occupancy(config, reg_per_thread, shm_per_block, block_size).blocks


def max_reg_at_tlp(
    config: GPUConfig, tlp: int, shm_per_block: int, block_size: int
) -> int:
    """Largest reg/thread that still sustains ``tlp`` blocks per SM.

    This is the *rightmost point of the stair* in the paper's staircase
    design space (Figure 11): for two points with equal TLP, the one
    with more registers per thread is always at least as good, so only
    this point need be considered (pruning rule 1, Section 4.2).

    Raises ``ValueError`` when ``tlp`` is unachievable regardless of
    registers (shared memory, thread, or block limits bind first).
    """
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    ceiling = compute_occupancy(config, 0, shm_per_block, block_size).blocks
    if tlp > ceiling:
        raise ValueError(
            f"TLP {tlp} unachievable: non-register limits cap occupancy at {ceiling}"
        )
    return config.registers_per_sm // (tlp * block_size)


def register_utilization(
    config: GPUConfig, reg_per_thread: int, block_size: int, tlp: int
) -> float:
    """Fraction of the register file used (paper Figures 1b, 15)."""
    used = reg_per_thread * block_size * tlp
    return min(1.0, used / config.registers_per_sm)


def shared_memory_utilization(
    config: GPUConfig, shm_per_block: int, tlp: int
) -> float:
    """Fraction of shared memory used (paper Figure 7)."""
    used = shm_per_block * tlp
    return min(1.0, used / config.shared_mem_per_sm)


def spare_shm_per_block(
    config: GPUConfig, shm_per_block: int, tlp: int
) -> int:
    """Shared memory a block may claim without reducing ``tlp``.

    Algorithm 1's ``SpareShmSize``: the per-block budget such that
    ``tlp`` blocks still fit in the SM's shared memory after each takes
    this much extra.
    """
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    per_block_budget = config.shared_mem_per_sm // tlp
    return max(0, per_block_budget - shm_per_block)
