"""Benchmark-harness utilities: memoized experiment driver + reports."""

from .report import format_table, results_dir, write_result
from .runner import (
    AppEvaluation,
    FastPathAppRow,
    FastPathComparison,
    clear_cache,
    compare_fastpath,
    evaluate_app,
    evaluate_app_static,
    geomean,
)

__all__ = [
    "AppEvaluation",
    "FastPathAppRow",
    "FastPathComparison",
    "clear_cache",
    "compare_fastpath",
    "evaluate_app",
    "evaluate_app_static",
    "format_table",
    "geomean",
    "results_dir",
    "write_result",
]
