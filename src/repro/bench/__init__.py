"""Benchmark-harness utilities: memoized experiment driver + reports."""

from .batchsim import (
    BatchSimAppRow,
    BatchSimComparison,
    compare_batchsim,
    record_batchsim,
)
from .costmodel import (
    CostModelAppRow,
    CostModelComparison,
    compare_costmodel,
    record_costmodel,
)
from .report import format_table, results_dir, write_result
from .runner import (
    AppEvaluation,
    AppFailure,
    FastPathAppRow,
    FastPathComparison,
    SuiteReport,
    clear_cache,
    compare_fastpath,
    evaluate_app,
    evaluate_app_static,
    geomean,
    run_suite,
    write_report_json,
)
from .via_server import ViaServerComparison, compare_via_server

__all__ = [
    "AppEvaluation",
    "AppFailure",
    "BatchSimAppRow",
    "BatchSimComparison",
    "CostModelAppRow",
    "CostModelComparison",
    "FastPathAppRow",
    "FastPathComparison",
    "SuiteReport",
    "ViaServerComparison",
    "clear_cache",
    "compare_batchsim",
    "compare_costmodel",
    "compare_fastpath",
    "compare_via_server",
    "evaluate_app",
    "evaluate_app_static",
    "format_table",
    "geomean",
    "record_batchsim",
    "record_costmodel",
    "results_dir",
    "run_suite",
    "write_report_json",
    "write_result",
]
