"""Batched-vs-scalar simulation core benchmark (``repro bench --batchsim``).

Measures the :class:`repro.sim.batch.BatchedSimulator` against the
scalar :class:`repro.sim.simulator.SMSimulator` reference on the same
profile sweeps the CRAT pipeline runs: one TLP staircase (1..max_tlp)
per app, every point simulated from the same traces.  The comparison
is core-vs-core — both sides run in-process on cold state, with no
result cache and no worker pool — so the reported speedup is the
batched interpreter's own, not an artifact of caching or parallelism.

Bit-identity is asserted, not assumed: every :class:`~repro.sim.stats.
SimResult` field of every point is diffed against the scalar oracle,
and a run with any drift reports ``identical=False`` (the CLI exits
non-zero).  ``record()`` appends the run to a JSON ledger
(``BENCH_batchsim.json``) so CI can track the speedup over time.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from typing import Dict, List, Optional, Sequence

from ..arch.config import get_config
from ..core import collect_resource_usage
from ..sim import simulate_traces, simulate_traces_batched, trace_grid
from ..workloads.suite import RESOURCE_SENSITIVE, load_workload
from .runner import geomean


@dataclasses.dataclass(frozen=True)
class BatchSimAppRow:
    """One app's scalar-vs-batched profile-sweep comparison."""

    abbr: str
    points: int  # TLP staircase size (1..max_tlp)
    scalar_seconds: float
    batched_seconds: float
    #: Points whose results differ from the scalar oracle (must be 0).
    drift: int

    @property
    def speedup(self) -> float:
        if not self.batched_seconds:
            return math.inf
        return self.scalar_seconds / self.batched_seconds

    @property
    def identical(self) -> bool:
        return self.drift == 0

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["speedup"] = round(self.speedup, 3)
        return data


@dataclasses.dataclass
class BatchSimComparison:
    """Suite-level result of a batched-core benchmark run."""

    config_name: str
    scheduler: str
    repeats: int
    rows: List[BatchSimAppRow]

    @property
    def points(self) -> int:
        return sum(r.points for r in self.rows)

    @property
    def drift(self) -> int:
        return sum(r.drift for r in self.rows)

    @property
    def identical(self) -> bool:
        return self.drift == 0

    @property
    def scalar_seconds(self) -> float:
        return sum(r.scalar_seconds for r in self.rows)

    @property
    def batched_seconds(self) -> float:
        return sum(r.batched_seconds for r in self.rows)

    @property
    def geomean_speedup(self) -> float:
        return geomean([r.speedup for r in self.rows])

    def table(self) -> str:
        """Human-readable report (what ``repro bench --batchsim`` prints)."""
        lines = [
            f"batched simulation core: config={self.config_name}, "
            f"scheduler={self.scheduler}, best of {self.repeats}",
            f"{'app':<6} {'points':>6} {'scalar':>9} {'batched':>9} "
            f"{'speedup':>8} {'identical':>9}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.abbr:<6} {r.points:>6} {r.scalar_seconds:>8.3f}s "
                f"{r.batched_seconds:>8.3f}s {r.speedup:>7.2f}x "
                f"{'yes' if r.identical else 'NO':>9}"
            )
        lines.append(
            f"{self.points} points, wall-clock {self.scalar_seconds:.2f}s "
            f"-> {self.batched_seconds:.2f}s, geomean speedup "
            f"{self.geomean_speedup:.2f}x, "
            + ("bit-identical"
               if self.identical
               else f"{self.drift} DRIFTING POINTS")
        )
        return "\n".join(lines)

    def to_record(self) -> Dict[str, object]:
        """One JSON-ready run record for the ``BENCH_batchsim.json`` ledger."""
        return {
            "date": time.strftime("%Y-%m-%d", time.gmtime()),
            "config": self.config_name,
            "scheduler": self.scheduler,
            "repeats": self.repeats,
            "points": self.points,
            "scalar_seconds": round(self.scalar_seconds, 3),
            "batched_seconds": round(self.batched_seconds, 3),
            "geomean_speedup": round(self.geomean_speedup, 3),
            "identical": self.identical,
            "apps": [r.to_dict() for r in self.rows],
        }


def compare_batchsim(
    abbrs: Optional[Sequence[str]] = None,
    config_name: str = "fermi",
    scheduler: str = "gto",
    repeats: int = 1,
) -> BatchSimComparison:
    """Run every app's TLP staircase through both cores and diff them.

    Traces are generated once per app and shared by both sides (trace
    generation is identical either way and would only dilute the
    measurement).  With ``repeats > 1`` each side keeps its best
    (minimum) wall-clock over that many runs, which filters scheduler
    noise out of small sweeps; drift is checked on every repeat.
    """
    config = get_config(config_name)
    if abbrs is None:
        abbrs = [w.abbr for w in RESOURCE_SENSITIVE]
    repeats = max(1, repeats)
    rows = []
    for abbr in abbrs:
        workload = load_workload(abbr)
        traces = trace_grid(
            workload.kernel, config, workload.grid_blocks,
            workload.param_sizes,
        )
        usage = collect_resource_usage(
            workload.kernel, config, default_reg=workload.default_reg
        )
        tlps = list(range(1, usage.max_tlp + 1))
        scalar_best = batched_best = math.inf
        drift = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            scalar = [
                simulate_traces(traces, config, tlp, scheduler=scheduler)
                for tlp in tlps
            ]
            t1 = time.perf_counter()
            batched = simulate_traces_batched(
                traces, config, tlps, scheduler=scheduler
            )
            t2 = time.perf_counter()
            scalar_best = min(scalar_best, t1 - t0)
            batched_best = min(batched_best, t2 - t1)
            drift = sum(
                1
                for s, b in zip(scalar, batched)
                if dataclasses.asdict(s) != dataclasses.asdict(b)
            )
        rows.append(
            BatchSimAppRow(
                abbr=abbr,
                points=len(tlps),
                scalar_seconds=scalar_best,
                batched_seconds=batched_best,
                drift=drift,
            )
        )
    return BatchSimComparison(
        config_name=config_name,
        scheduler=scheduler,
        repeats=repeats,
        rows=rows,
    )


def record_batchsim(comparison: BatchSimComparison, path: str) -> None:
    """Append one run record to the JSON ledger at ``path``.

    The ledger is ``{"runs": [...]}``; an unreadable or foreign file is
    replaced rather than crashing the benchmark (the ledger is an
    artifact, not an input).
    """
    ledger: Dict[str, object] = {"runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                ledger = loaded
        except (OSError, ValueError):
            pass
    runs = ledger["runs"]
    assert isinstance(runs, list)
    runs.append(comparison.to_record())
    with open(path, "w") as handle:
        json.dump(ledger, handle, indent=2)
        handle.write("\n")
