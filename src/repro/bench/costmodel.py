"""Three-tier evaluation comparison (``repro bench --costmodel``).

Runs every app through the full CRAT pipeline three times, each on a
fresh memory-only engine so simulation counts are honest:

* **exact** — fast path disabled, the paper's exhaustive profiling;
* **analytical** — the tier-1 two-tier fast path (PR 2's screen +
  bracket refinement);
* **learned** — the same fast path with the tier-0 learned screen
  installed, sharing one screen (and hence one drift detector) across
  the whole suite, exactly as a long-lived service engine would.

Per-app rows record each mode's winner and simulation count plus what
the tier-0 screen actually did for that app (screened / declined /
demoted / inactive), so the acceptance criterion — the learned tier
matches the exact winner on every app *where it made a decision*, and
demotes rather than degrade anywhere else — is checked from data.
Results append to the ``BENCH_costmodel.json`` ledger.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import get_config
from ..engine.engine import EvaluationEngine
from ..engine.events import CostModelEvent, FastPathEvent
from ..engine.fastpath import FastPathPolicy
from ..workloads.suite import full_suite, load_workload
from .runner import _point_label, _run_pipeline

#: Default analytical survivor budget for the comparison: wide enough
#: that a confident learned screen (k_eff -> 1) has real sims to save.
DEFAULT_TOP_K = 3


@dataclasses.dataclass(frozen=True)
class CostModelAppRow:
    """One app's exact / analytical / learned comparison."""

    abbr: str
    exact_sims: int
    analytical_sims: int
    learned_sims: int
    exact_point: Tuple[int, int]
    analytical_point: Tuple[int, int]
    learned_point: Tuple[int, int]
    exact_local_point: Tuple[int, int]
    analytical_local_point: Tuple[int, int]
    learned_local_point: Tuple[int, int]
    #: Tier-1 rank agreement observed in the learned run.
    agreement: float
    #: What the tier-0 screen did for this app: "screened",
    #: "declined", "demoted", or "inactive".
    tier0: str
    #: The model's k_eff when it screened (0 otherwise).
    k_eff: int = 0

    @property
    def analytical_match(self) -> bool:
        return (
            self.exact_point == self.analytical_point
            and self.exact_local_point == self.analytical_local_point
        )

    @property
    def learned_match(self) -> bool:
        return (
            self.exact_point == self.learned_point
            and self.exact_local_point == self.learned_local_point
        )

    @property
    def sims_saved_vs_exact(self) -> int:
        return self.exact_sims - self.learned_sims

    @property
    def sims_saved_vs_analytical(self) -> int:
        return self.analytical_sims - self.learned_sims

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["exact_point"] = list(self.exact_point)
        data["analytical_point"] = list(self.analytical_point)
        data["learned_point"] = list(self.learned_point)
        data["exact_local_point"] = list(self.exact_local_point)
        data["analytical_local_point"] = list(self.analytical_local_point)
        data["learned_local_point"] = list(self.learned_local_point)
        data["analytical_match"] = self.analytical_match
        data["learned_match"] = self.learned_match
        data["sims_saved_vs_exact"] = self.sims_saved_vs_exact
        data["sims_saved_vs_analytical"] = self.sims_saved_vs_analytical
        return data


@dataclasses.dataclass
class CostModelComparison:
    """Suite-level result of a three-tier comparison run."""

    config_name: str
    top_k: int
    model_path: str
    rows: List[CostModelAppRow]
    exact_seconds: float
    analytical_seconds: float
    learned_seconds: float
    #: Final screen state after the whole suite ("active"/"demoted"...).
    screen_state: str
    screen_reason: str
    rolling_agreement: float
    model_metrics: Dict[str, object]

    @property
    def exact_sims(self) -> int:
        return sum(r.exact_sims for r in self.rows)

    @property
    def analytical_sims(self) -> int:
        return sum(r.analytical_sims for r in self.rows)

    @property
    def learned_sims(self) -> int:
        return sum(r.learned_sims for r in self.rows)

    @property
    def learned_mismatches(self) -> List[str]:
        return [r.abbr for r in self.rows if not r.learned_match]

    @property
    def screened_mismatches(self) -> List[str]:
        """Apps where the model made a screening decision AND the
        pipeline missed the exact winner — the safety-critical set."""
        return [
            r.abbr
            for r in self.rows
            if r.tier0 == "screened" and not r.learned_match
        ]

    @property
    def screened_apps(self) -> int:
        return sum(1 for r in self.rows if r.tier0 == "screened")

    @property
    def winner_match_rate(self) -> float:
        if not self.rows:
            return 1.0
        return sum(1 for r in self.rows if r.learned_match) / len(self.rows)

    def table(self) -> str:
        lines = [
            f"three-tier evaluation: top_k={self.top_k}, "
            f"config={self.config_name}, model={self.model_path}",
            f"{'app':<6} {'exact':>5} {'tier1':>5} {'tier0':>5}  "
            f"{'exact winner':>14} {'learned winner':>14} "
            f"{'match':>5} {'agree':>6} {'screen':>9}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.abbr:<6} {r.exact_sims:>5} {r.analytical_sims:>5} "
                f"{r.learned_sims:>5}  "
                f"{_point_label(r.exact_point, r.exact_local_point):>14} "
                f"{_point_label(r.learned_point, r.learned_local_point):>14} "
                f"{'yes' if r.learned_match else 'NO':>5} "
                f"{r.agreement:>6.2f} {r.tier0:>9}"
            )
        matches = len(self.rows) - len(self.learned_mismatches)
        ratio_exact = (
            self.exact_sims / self.learned_sims
            if self.learned_sims
            else math.inf
        )
        lines.append(
            f"profile sims exact {self.exact_sims} -> tier-1 "
            f"{self.analytical_sims} -> tier-0 {self.learned_sims} "
            f"({ratio_exact:.2f}x fewer than exact); wall-clock "
            f"{self.exact_seconds:.2f}s / {self.analytical_seconds:.2f}s "
            f"/ {self.learned_seconds:.2f}s"
        )
        lines.append(
            f"winner match {matches}/{len(self.rows)}; tier-0 screened "
            f"{self.screened_apps}/{len(self.rows)} apps; screen ended "
            f"{self.screen_state} "
            f"(rolling agreement {self.rolling_agreement:.3f})"
            + (f"; reason: {self.screen_reason}" if self.screen_reason else "")
        )
        if self.screened_mismatches:
            lines.append(
                "SAFETY VIOLATION: tier-0 screened and missed the exact "
                f"winner on {', '.join(self.screened_mismatches)}"
            )
        return "\n".join(lines)

    def to_record(self) -> Dict[str, object]:
        """One JSON-ready run record for ``BENCH_costmodel.json``."""
        return {
            "date": time.strftime("%Y-%m-%d", time.gmtime()),
            "config": self.config_name,
            "top_k": self.top_k,
            "model": self.model_path,
            "model_metrics": self.model_metrics,
            "exact_sims": self.exact_sims,
            "analytical_sims": self.analytical_sims,
            "learned_sims": self.learned_sims,
            "winner_match_rate": round(self.winner_match_rate, 4),
            "learned_mismatches": self.learned_mismatches,
            "screened_mismatches": self.screened_mismatches,
            "screened_apps": self.screened_apps,
            "screen_state": self.screen_state,
            "screen_reason": self.screen_reason,
            "rolling_agreement": round(self.rolling_agreement, 4),
            "exact_seconds": round(self.exact_seconds, 3),
            "analytical_seconds": round(self.analytical_seconds, 3),
            "learned_seconds": round(self.learned_seconds, 3),
            "apps": [r.to_dict() for r in self.rows],
        }


def compare_costmodel(
    model_path: str,
    abbrs: Optional[Sequence[str]] = None,
    config_name: str = "fermi",
    top_k: int = DEFAULT_TOP_K,
    input_scale: float = 1.0,
    jobs: Optional[int] = None,
    verify: bool = False,
) -> CostModelComparison:
    """Run every app through exact / analytical / learned pipelines.

    Each mode gets a fresh memory-only engine; the learned mode's
    engine carries one :class:`~repro.model.screen.Tier0Screen` across
    the whole suite so drift accumulates realistically.
    """
    from ..engine import get_engine
    from ..model.screen import load_screen

    config = get_config(config_name)
    if abbrs is None:
        abbrs = [w.abbr for w in full_suite()]
    workloads = [load_workload(a, input_scale) for a in abbrs]
    jobs = jobs if jobs is not None else get_engine().jobs
    policy = FastPathPolicy(top_k=top_k, refine=True)
    screen = load_screen(model_path)

    def run_mode(fastpath: Optional[FastPathPolicy], costmodel=None):
        engine = EvaluationEngine(
            jobs=jobs, disk_cache="", costmodel=costmodel
        )
        outcomes = {}
        t0 = time.perf_counter()
        for workload in workloads:
            mark = len(engine.events)
            crat, crat_local = _run_pipeline(
                workload, config, engine, fastpath, verify=verify
            )
            agreement = 1.0
            tier0 = "inactive"
            k_eff = 0
            for event in engine.events[mark:]:
                if not isinstance(event, (FastPathEvent, CostModelEvent)):
                    continue
                if event.kernel != workload.kernel.name:
                    continue
                if isinstance(event, FastPathEvent):
                    agreement = event.agreement
                    continue
                # Demotion dominates; otherwise any screened sweep
                # counts the app as screened.
                if event.action == "demoted":
                    tier0 = "demoted"
                elif event.action == "screened" and tier0 != "demoted":
                    tier0 = "screened"
                    k_eff = event.k_eff
                elif event.action == "declined" and tier0 == "inactive":
                    tier0 = "declined"
            outcomes[workload.abbr] = (crat, crat_local, agreement,
                                       tier0, k_eff)
        return outcomes, time.perf_counter() - t0

    exact, exact_seconds = run_mode(None)
    analytical, analytical_seconds = run_mode(policy)
    learned, learned_seconds = run_mode(policy, costmodel=screen)

    rows = []
    for workload in workloads:
        e_crat, e_local, _, _, _ = exact[workload.abbr]
        a_crat, a_local, _, _, _ = analytical[workload.abbr]
        l_crat, l_local, agreement, tier0, k_eff = learned[workload.abbr]
        rows.append(
            CostModelAppRow(
                abbr=workload.abbr,
                exact_sims=len(e_crat.baselines["opttlp"].profile),
                analytical_sims=len(a_crat.baselines["opttlp"].profile),
                learned_sims=len(l_crat.baselines["opttlp"].profile),
                exact_point=(e_crat.reg, e_crat.tlp),
                analytical_point=(a_crat.reg, a_crat.tlp),
                learned_point=(l_crat.reg, l_crat.tlp),
                exact_local_point=(e_local.reg, e_local.tlp),
                analytical_local_point=(a_local.reg, a_local.tlp),
                learned_local_point=(l_local.reg, l_local.tlp),
                agreement=agreement,
                tier0=tier0,
                k_eff=k_eff,
            )
        )
    metrics = {}
    if screen.artifact is not None and isinstance(
        screen.artifact.metrics, dict
    ):
        metrics = {
            k: v
            for k, v in screen.artifact.metrics.items()
            if k != "per_app"
        }
    return CostModelComparison(
        config_name=config_name,
        top_k=top_k,
        model_path=model_path,
        rows=rows,
        exact_seconds=exact_seconds,
        analytical_seconds=analytical_seconds,
        learned_seconds=learned_seconds,
        screen_state=screen.state.value,
        screen_reason=screen.state_reason,
        rolling_agreement=screen.detector.rolling_agreement(),
        model_metrics=metrics,
    )


def record_costmodel(comparison: CostModelComparison, path: str) -> None:
    """Append one run record to the ``BENCH_costmodel.json`` ledger.

    Same contract as :func:`repro.bench.batchsim.record_batchsim`: the
    ledger is ``{"runs": [...]}`` and an unreadable or foreign file is
    replaced rather than crashing the benchmark.
    """
    ledger: Dict[str, object] = {"runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("runs"), list
            ):
                ledger = loaded
        except (OSError, ValueError):
            pass
    runs = ledger["runs"]
    assert isinstance(runs, list)
    runs.append(comparison.to_record())
    with open(path, "w") as handle:
        json.dump(ledger, handle, indent=2)
        handle.write("\n")
