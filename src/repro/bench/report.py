"""ASCII table/series formatting for benchmark output.

Every benchmark regenerates its paper figure as a plain-text table and
writes it under ``benchmarks/results/`` so the reproduction can be
inspected without rerunning anything.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a padded ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def results_dir() -> str:
    """The directory benchmark artifacts are written to."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_result(name: str, text: str) -> str:
    """Persist one experiment's table; returns the file path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    return path
