"""Experiment driver shared by the benchmark harness.

Evaluating one app through the full pipeline (baselines + profiling +
CRAT + CRAT-local) is expensive, and several figures slice the same
runs from different angles (Fig 13 plots speedups, Fig 14 the chosen
TLPs, Fig 15 register utilization, Fig 16 local accesses...).  The
driver therefore memoizes one :class:`AppEvaluation` per (app, config,
input) and lets every benchmark read from it.

Underneath that app-level memo, every simulation goes through the
shared :class:`repro.engine.EvaluationEngine`, whose content-addressed
cache is keyed by kernel fingerprint rather than app name: even after
:func:`clear_cache` drops the bench-layer memo, re-evaluating an app
re-runs only the (cheap) compiler passes — every design-point
simulation is an engine cache hit.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import math
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..arch.config import GPUConfig, get_config
from ..arch.occupancy import register_utilization
from ..core.crat import CRATOptimizer, CRATResult
from ..engine import EvaluationEngine, FastPathEvent, FastPathPolicy, get_engine
from ..engine.engine import CHECKPOINT_DIR_ENV
from ..errors import EXIT_PARTIAL, ReproError, classify_error
from ..core.throttling import BaselineResult
from ..workloads.suite import Workload, full_suite, load_workload


@dataclasses.dataclass
class AppEvaluation:
    """Everything the figures need about one app on one configuration."""

    workload: Workload
    config: GPUConfig
    crat: CRATResult
    crat_local: CRATResult

    @property
    def abbr(self) -> str:
        return self.workload.abbr

    @property
    def baselines(self) -> Dict[str, BaselineResult]:
        return self.crat.baselines

    # ------------------------------------------------------------------
    # Normalized metrics (all normalized to OptTLP, as in Figure 13).
    # ------------------------------------------------------------------
    def speedup(self, scheme: str) -> float:
        """Speedup of ``scheme`` over the OptTLP baseline."""
        opttlp = self.baselines["opttlp"].sim.cycles
        if scheme == "crat":
            cycles = self.crat.sim.cycles
        elif scheme == "crat-local":
            cycles = self.crat_local.sim.cycles
        else:
            cycles = self.baselines[scheme].sim.cycles
        if not cycles:
            raise ValueError(
                f"{scheme} simulation of {self.abbr} recorded zero cycles; "
                "the speedup ratio is undefined"
            )
        return opttlp / cycles

    def register_utilization_of(self, scheme: str) -> float:
        if scheme == "crat":
            reg, tlp = self.crat.reg, self.crat.tlp
        else:
            base = self.baselines[scheme]
            reg, tlp = base.reg, base.tlp
        return register_utilization(
            self.config, reg, self.workload.kernel.block_size, tlp
        )

    def tlp_of(self, scheme: str) -> int:
        if scheme == "crat":
            return self.crat.tlp
        if scheme == "crat-local":
            return self.crat_local.tlp
        return self.baselines[scheme].tlp

    def local_insts_of(self, scheme: str) -> int:
        if scheme == "crat":
            return self.crat.sim.local_insts
        if scheme == "crat-local":
            return self.crat_local.sim.local_insts
        return self.baselines[scheme].sim.local_insts

    def energy_of(self, scheme: str) -> float:
        if scheme == "crat":
            return self.crat.sim.energy_nj
        if scheme == "crat-local":
            return self.crat_local.sim.energy_nj
        return self.baselines[scheme].sim.energy_nj


@functools.lru_cache(maxsize=None)
def evaluate_app(
    abbr: str,
    config_name: str = "fermi",
    input_scale: float = 1.0,
    verify: bool = False,
    passes: str = "",
) -> AppEvaluation:
    """Run the whole pipeline for one app (memoized).

    ``verify`` is part of the memo key on purpose: a validated and an
    unvalidated evaluation are different runs (the former may raise a
    :class:`repro.errors.VerificationError` the latter would not).
    ``passes`` (a ``--passes`` pipeline spec) likewise: pre-allocation
    rewrites change the kernel the whole pipeline evaluates.
    """
    config = get_config(config_name)
    workload = load_workload(abbr, input_scale)
    engine = get_engine()
    with engine.stage(f"evaluate:{abbr}"):
        optimizer = CRATOptimizer(
            config, enable_shm_spill=True, verify=verify, passes=passes
        )
        crat = optimizer.optimize(
            workload.kernel,
            default_reg=workload.default_reg,
            grid_blocks=workload.grid_blocks,
            param_sizes=workload.param_sizes,
        )
        local_optimizer = CRATOptimizer(
            config, enable_shm_spill=False, verify=verify, passes=passes
        )
        crat_local = local_optimizer.optimize(
            workload.kernel,
            default_reg=workload.default_reg,
            grid_blocks=workload.grid_blocks,
            param_sizes=workload.param_sizes,
            baselines=crat.baselines,
        )
    return AppEvaluation(
        workload=workload, config=config, crat=crat, crat_local=crat_local
    )


@functools.lru_cache(maxsize=None)
def evaluate_app_static(
    abbr: str, config_name: str = "fermi", hit_ratio: float = 0.6
) -> CRATResult:
    """CRAT-static: OptTLP from code analysis instead of profiling."""
    config = get_config(config_name)
    workload = load_workload(abbr)
    optimizer = CRATOptimizer(
        config, enable_shm_spill=True, opt_tlp_mode="static", hit_ratio=hit_ratio
    )
    return optimizer.optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
    )


# ----------------------------------------------------------------------
# Fault-isolated suite execution (``repro suite``).
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AppFailure:
    """One app the suite could not evaluate (the suite still finishes)."""

    abbr: str
    kind: str  # taxonomy class name (ParseError, SimulationError...)
    message: str
    exit_code: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SuiteReport:
    """Outcome of one fault-isolated suite run.

    ``evaluations`` holds every app that completed; ``failures`` the
    structured record of every app that did not.  The CLI maps this to
    its documented exit codes: 0 when everything succeeded, 5 when the
    suite is partial, and the first failure's taxonomy code when *no*
    app survived (a total failure is almost always one systemic cause).
    """

    config_name: str
    evaluations: Dict[str, object]
    failures: List[AppFailure]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        if not self.failures:
            return 0
        if self.evaluations:
            return EXIT_PARTIAL
        return self.failures[0].exit_code

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready failure report (the ``--report-json`` payload)."""
        return {
            "config": self.config_name,
            "completed": sorted(self.evaluations),
            "failed": [f.to_dict() for f in self.failures],
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }


def _journal_path() -> Optional[str]:
    directory = os.environ.get(CHECKPOINT_DIR_ENV) or None
    if not directory:
        return None
    return os.path.join(directory, "journal.jsonl")


def _journal_app(abbr: str, config_name: str, status: str, detail: str = "") -> None:
    """Append one app-completion record to the checkpoint journal.

    Purely informational (the design-point checkpoint store is what
    makes resumption cheap); gives an interrupted run a human-readable
    ledger of how far it got.
    """
    path = _journal_path()
    if not path:
        return
    record = {"app": abbr, "config": config_name, "status": status}
    if detail:
        record["detail"] = detail
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
    except OSError:
        pass  # journaling is best-effort


def run_suite(
    abbrs: Sequence[str],
    config_name: str = "fermi",
    evaluate: Optional[Callable[[str, str], object]] = None,
    on_app: Optional[Callable[[str, Optional[AppFailure]], None]] = None,
) -> SuiteReport:
    """Evaluate a list of apps with per-app fault isolation.

    One failing app — unparseable PTX, an infeasible allocation, a
    simulation that exhausts the supervisor's retry budget — is
    recorded as a structured :class:`AppFailure` and the suite moves
    on, so a 22-app run always produces its best available answer plus
    a faithful failure report instead of dying on app 3 with a
    traceback.  ``on_app`` is invoked after each app (progress hook);
    ``evaluate`` defaults to :func:`evaluate_app`.
    """
    evaluate = evaluate or evaluate_app
    evaluations: Dict[str, object] = {}
    failures: List[AppFailure] = []
    t0 = time.perf_counter()
    for abbr in abbrs:
        failure: Optional[AppFailure] = None
        try:
            evaluations[abbr] = evaluate(abbr, config_name)
            _journal_app(abbr, config_name, "ok")
        except Exception as err:  # isolate *everything* per app
            classified = classify_error(err, app=abbr)
            failure = AppFailure(
                abbr=abbr,
                kind=classified.kind,
                message=str(classified),
                exit_code=classified.exit_code,
            )
            failures.append(failure)
            _journal_app(abbr, config_name, "failed", detail=str(classified))
        if on_app:
            on_app(abbr, failure)
    return SuiteReport(
        config_name=config_name,
        evaluations=evaluations,
        failures=failures,
        seconds=time.perf_counter() - t0,
    )


def write_report_json(report: SuiteReport, path: str) -> None:
    """Persist a suite failure report (``--report-json PATH``)."""
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2)
        handle.write("\n")


# ----------------------------------------------------------------------
# Two-tier evaluation comparison (``repro bench --fastpath``).
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FastPathAppRow:
    """One app's exact-vs-fast-path pipeline comparison."""

    abbr: str
    exact_sims: int  # profile-stage simulations, exact pipeline
    fast_sims: int  # profile-stage simulations, two-tier pipeline
    exact_point: Tuple[int, int]  # CRAT's chosen (reg, TLP)
    fast_point: Tuple[int, int]
    exact_local_point: Tuple[int, int]  # CRAT-local's chosen (reg, TLP)
    fast_local_point: Tuple[int, int]
    #: Worst signed winner-cycle drift across the two variants
    #: (``fast/exact - 1``; 0.0 when the winners match).
    cycle_drift: float
    #: Rank concordance between fast-path scores and simulated cycles
    #: over the points both tiers saw (from the FastPathEvent).
    agreement: float

    @property
    def match(self) -> bool:
        """Did both CRAT variants choose the exact pipeline's winner?"""
        return (
            self.exact_point == self.fast_point
            and self.exact_local_point == self.fast_local_point
        )

    @property
    def sims_saved(self) -> int:
        return self.exact_sims - self.fast_sims

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready row for ``repro bench --fastpath --report-json``
        — per-app rank agreement included, so the fastpath tables and
        the cost-model tables are directly comparable."""
        data = dataclasses.asdict(self)
        data["exact_point"] = list(self.exact_point)
        data["fast_point"] = list(self.fast_point)
        data["exact_local_point"] = list(self.exact_local_point)
        data["fast_local_point"] = list(self.fast_local_point)
        data["match"] = self.match
        data["sims_saved"] = self.sims_saved
        data["rank_agreement"] = round(self.agreement, 4)
        return data


@dataclasses.dataclass
class FastPathComparison:
    """Suite-level result of an exact-vs-fast-path comparison run."""

    config_name: str
    top_k: int
    refine: bool
    rows: List[FastPathAppRow]
    exact_seconds: float
    fast_seconds: float

    @property
    def exact_sims(self) -> int:
        return sum(r.exact_sims for r in self.rows)

    @property
    def fast_sims(self) -> int:
        return sum(r.fast_sims for r in self.rows)

    @property
    def sim_ratio(self) -> float:
        """How many times fewer profile-stage simulations the fast path ran."""
        return self.exact_sims / self.fast_sims if self.fast_sims else math.inf

    @property
    def mismatches(self) -> List[str]:
        return [r.abbr for r in self.rows if not r.match]

    @property
    def max_drift(self) -> float:
        return max((abs(r.cycle_drift) for r in self.rows), default=0.0)

    def table(self) -> str:
        """Human-readable report (what ``repro bench --fastpath`` prints)."""
        mode = "refine" if self.refine else "screen-only"
        lines = [
            f"two-tier evaluation: top_k={self.top_k}, {mode}, "
            f"config={self.config_name}",
            f"{'app':<6} {'sims':>9}  {'exact winner':>14} "
            f"{'fast winner':>14} {'match':>5} {'drift':>7} {'agree':>6}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.abbr:<6} {r.exact_sims:>4}->{r.fast_sims:<4} "
                f"{_point_label(r.exact_point, r.exact_local_point):>14} "
                f"{_point_label(r.fast_point, r.fast_local_point):>14} "
                f"{'yes' if r.match else 'NO':>5} "
                f"{r.cycle_drift:>+6.1%} {r.agreement:>6.2f}"
            )
        matches = len(self.rows) - len(self.mismatches)
        saved = 1 - self.fast_seconds / self.exact_seconds if self.exact_seconds else 0.0
        lines.append(
            f"profile sims {self.exact_sims} -> {self.fast_sims} "
            f"({self.sim_ratio:.2f}x fewer); wall-clock "
            f"{self.exact_seconds:.2f}s -> {self.fast_seconds:.2f}s "
            f"({saved:.0%} saved)"
        )
        lines.append(
            f"winner match {matches}/{len(self.rows)}"
            + (
                f"; mismatches {', '.join(self.mismatches)} "
                f"(max winner-cycle drift {self.max_drift:+.1%})"
                if self.mismatches
                else ""
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Structured report (``--report-json``): suite aggregates plus
        one row per app, including each app's rank agreement."""
        matches = len(self.rows) - len(self.mismatches)
        return {
            "mode": "fastpath",
            "config": self.config_name,
            "top_k": self.top_k,
            "refine": self.refine,
            "exact_sims": self.exact_sims,
            "fast_sims": self.fast_sims,
            "sim_ratio": round(self.sim_ratio, 3)
            if self.fast_sims
            else None,
            "winner_matches": matches,
            "apps_compared": len(self.rows),
            "mismatches": self.mismatches,
            "max_cycle_drift": round(self.max_drift, 5),
            "exact_seconds": round(self.exact_seconds, 3),
            "fast_seconds": round(self.fast_seconds, 3),
            "apps": [r.to_dict() for r in self.rows],
        }


def _point_label(point: Tuple[int, int], local_point: Tuple[int, int]) -> str:
    label = f"r{point[0]} t{point[1]}"
    if local_point != point:
        label += f"|t{local_point[1]}"
    return label


def _run_pipeline(
    workload: Workload,
    config: GPUConfig,
    engine: EvaluationEngine,
    fastpath: Optional[FastPathPolicy],
    verify: bool = False,
) -> Tuple[CRATResult, CRATResult]:
    """CRAT + CRAT-local sharing baselines, on an explicit engine."""
    crat = CRATOptimizer(
        config, enable_shm_spill=True, engine=engine, fastpath=fastpath,
        verify=verify,
    ).optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
    )
    crat_local = CRATOptimizer(
        config, enable_shm_spill=False, engine=engine, fastpath=fastpath,
        verify=verify,
    ).optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
        baselines=crat.baselines,
    )
    return crat, crat_local


def compare_fastpath(
    abbrs: Optional[Sequence[str]] = None,
    config_name: str = "fermi",
    top_k: int = 1,
    refine: bool = True,
    input_scale: float = 1.0,
    jobs: Optional[int] = None,
    verify: bool = False,
) -> FastPathComparison:
    """Run every app through both pipelines and diff the outcomes.

    The exact pipeline (fast path disabled) and the two-tier pipeline
    each run on a **fresh, memory-only** engine so the simulation
    counts and wall-clock times are honest — a warm shared cache would
    let the second run coast on the first run's work.  Returns per-app
    rows plus suite totals; ``repro bench --fastpath`` prints
    :meth:`FastPathComparison.table`.
    """
    config = get_config(config_name)
    if abbrs is None:
        abbrs = [w.abbr for w in full_suite()]
    workloads = [load_workload(a, input_scale) for a in abbrs]
    jobs = jobs if jobs is not None else get_engine().jobs
    policy = FastPathPolicy(top_k=top_k, refine=refine)

    def run_mode(fastpath: Optional[FastPathPolicy]):
        # disk_cache="" forces memory-only even when REPRO_CACHE_DIR is
        # set: the comparison must actually run its simulations.
        engine = EvaluationEngine(jobs=jobs, disk_cache="")
        outcomes = {}
        t0 = time.perf_counter()
        for workload in workloads:
            crat, crat_local = _run_pipeline(
                workload, config, engine, fastpath, verify=verify
            )
            agreement = 1.0
            for event in reversed(engine.events):
                if (
                    isinstance(event, FastPathEvent)
                    and event.kernel == workload.kernel.name
                ):
                    agreement = event.agreement
                    break
            outcomes[workload.abbr] = (crat, crat_local, agreement)
        return outcomes, time.perf_counter() - t0

    exact, exact_seconds = run_mode(None)
    fast, fast_seconds = run_mode(policy)

    rows = []
    for workload in workloads:
        e_crat, e_local, _ = exact[workload.abbr]
        f_crat, f_local, agreement = fast[workload.abbr]
        drift = max(
            f_crat.sim.cycles / e_crat.sim.cycles - 1.0,
            f_local.sim.cycles / e_local.sim.cycles - 1.0,
            key=abs,
        )
        rows.append(
            FastPathAppRow(
                abbr=workload.abbr,
                exact_sims=len(e_crat.baselines["opttlp"].profile),
                fast_sims=len(f_crat.baselines["opttlp"].profile),
                exact_point=(e_crat.reg, e_crat.tlp),
                fast_point=(f_crat.reg, f_crat.tlp),
                exact_local_point=(e_local.reg, e_local.tlp),
                fast_local_point=(f_local.reg, f_local.tlp),
                cycle_drift=drift,
                agreement=agreement,
            )
        )
    return FastPathComparison(
        config_name=config_name,
        top_k=top_k,
        refine=refine,
        rows=rows,
        exact_seconds=exact_seconds,
        fast_seconds=fast_seconds,
    )


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def clear_cache() -> None:
    """Drop the bench-layer memo (tests that tweak configs use this).

    Only the app-level :class:`AppEvaluation` memo is dropped; the
    engine's content-addressed simulation cache stays warm, so a
    re-evaluation repeats the compiler work but zero simulations.
    (That is safe even for tweaked configs: engine keys cover the full
    configuration content, not just its name.)  Use
    ``repro.engine.get_engine().clear()`` to also drop simulations.
    """
    evaluate_app.cache_clear()
    evaluate_app_static.cache_clear()
