"""Experiment driver shared by the benchmark harness.

Evaluating one app through the full pipeline (baselines + profiling +
CRAT + CRAT-local) is expensive, and several figures slice the same
runs from different angles (Fig 13 plots speedups, Fig 14 the chosen
TLPs, Fig 15 register utilization, Fig 16 local accesses...).  The
driver therefore memoizes one :class:`AppEvaluation` per (app, config,
input) and lets every benchmark read from it.

Underneath that app-level memo, every simulation goes through the
shared :class:`repro.engine.EvaluationEngine`, whose content-addressed
cache is keyed by kernel fingerprint rather than app name: even after
:func:`clear_cache` drops the bench-layer memo, re-evaluating an app
re-runs only the (cheap) compiler passes — every design-point
simulation is an engine cache hit.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Dict, Iterable, List, Optional

from ..arch.config import GPUConfig, get_config
from ..arch.occupancy import register_utilization
from ..core.crat import CRATOptimizer, CRATResult
from ..core.throttling import BaselineResult
from ..engine import get_engine
from ..workloads.suite import Workload, load_workload


@dataclasses.dataclass
class AppEvaluation:
    """Everything the figures need about one app on one configuration."""

    workload: Workload
    config: GPUConfig
    crat: CRATResult
    crat_local: CRATResult

    @property
    def abbr(self) -> str:
        return self.workload.abbr

    @property
    def baselines(self) -> Dict[str, BaselineResult]:
        return self.crat.baselines

    # ------------------------------------------------------------------
    # Normalized metrics (all normalized to OptTLP, as in Figure 13).
    # ------------------------------------------------------------------
    def speedup(self, scheme: str) -> float:
        """Speedup of ``scheme`` over the OptTLP baseline."""
        opttlp = self.baselines["opttlp"].sim.cycles
        if scheme == "crat":
            cycles = self.crat.sim.cycles
        elif scheme == "crat-local":
            cycles = self.crat_local.sim.cycles
        else:
            cycles = self.baselines[scheme].sim.cycles
        if not cycles:
            raise ValueError(
                f"{scheme} simulation of {self.abbr} recorded zero cycles; "
                "the speedup ratio is undefined"
            )
        return opttlp / cycles

    def register_utilization_of(self, scheme: str) -> float:
        if scheme == "crat":
            reg, tlp = self.crat.reg, self.crat.tlp
        else:
            base = self.baselines[scheme]
            reg, tlp = base.reg, base.tlp
        return register_utilization(
            self.config, reg, self.workload.kernel.block_size, tlp
        )

    def tlp_of(self, scheme: str) -> int:
        if scheme == "crat":
            return self.crat.tlp
        if scheme == "crat-local":
            return self.crat_local.tlp
        return self.baselines[scheme].tlp

    def local_insts_of(self, scheme: str) -> int:
        if scheme == "crat":
            return self.crat.sim.local_insts
        if scheme == "crat-local":
            return self.crat_local.sim.local_insts
        return self.baselines[scheme].sim.local_insts

    def energy_of(self, scheme: str) -> float:
        if scheme == "crat":
            return self.crat.sim.energy_nj
        if scheme == "crat-local":
            return self.crat_local.sim.energy_nj
        return self.baselines[scheme].sim.energy_nj


@functools.lru_cache(maxsize=None)
def evaluate_app(
    abbr: str, config_name: str = "fermi", input_scale: float = 1.0
) -> AppEvaluation:
    """Run the whole pipeline for one app (memoized)."""
    config = get_config(config_name)
    workload = load_workload(abbr, input_scale)
    engine = get_engine()
    with engine.stage(f"evaluate:{abbr}"):
        optimizer = CRATOptimizer(config, enable_shm_spill=True)
        crat = optimizer.optimize(
            workload.kernel,
            default_reg=workload.default_reg,
            grid_blocks=workload.grid_blocks,
            param_sizes=workload.param_sizes,
        )
        local_optimizer = CRATOptimizer(config, enable_shm_spill=False)
        crat_local = local_optimizer.optimize(
            workload.kernel,
            default_reg=workload.default_reg,
            grid_blocks=workload.grid_blocks,
            param_sizes=workload.param_sizes,
            baselines=crat.baselines,
        )
    return AppEvaluation(
        workload=workload, config=config, crat=crat, crat_local=crat_local
    )


@functools.lru_cache(maxsize=None)
def evaluate_app_static(
    abbr: str, config_name: str = "fermi", hit_ratio: float = 0.6
) -> CRATResult:
    """CRAT-static: OptTLP from code analysis instead of profiling."""
    config = get_config(config_name)
    workload = load_workload(abbr)
    optimizer = CRATOptimizer(
        config, enable_shm_spill=True, opt_tlp_mode="static", hit_ratio=hit_ratio
    )
    return optimizer.optimize(
        workload.kernel,
        default_reg=workload.default_reg,
        grid_blocks=workload.grid_blocks,
        param_sizes=workload.param_sizes,
    )


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def clear_cache() -> None:
    """Drop the bench-layer memo (tests that tweak configs use this).

    Only the app-level :class:`AppEvaluation` memo is dropped; the
    engine's content-addressed simulation cache stays warm, so a
    re-evaluation repeats the compiler work but zero simulations.
    (That is safe even for tweaked configs: engine keys cover the full
    configuration content, not just its name.)  Use
    ``repro.engine.get_engine().clear()`` to also drop simulations.
    """
    evaluate_app.cache_clear()
    evaluate_app_static.cache_clear()
