"""Warm-vs-cold benchmark: ``repro bench --via-server``.

Quantifies what the persistent daemon buys over one-shot invocations
for a repeated workload.  Two measured phases over the same request
stream (``requests`` CRAT jobs, round-robin over ``abbrs``):

* **cold** — every request builds a fresh, memory-only
  :class:`~repro.engine.engine.EvaluationEngine` and runs the pipeline
  from scratch, which is what N separate ``repro crat`` processes do
  (minus interpreter start-up, so the comparison is *conservative* in
  the cold path's favor);
* **warm** — an in-process ``repro serve`` daemon is booted once and
  the same stream goes through ``repro submit``'s client library, so
  repeats hit the warm content-addressed cache and concurrent
  duplicates would single-flight.

Results are checked bit-identical between the phases (the daemon must
never trade correctness for latency) before any speedup is reported.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
import uuid
from typing import List, Optional, Sequence

from ..engine import EvaluationEngine, get_engine, set_engine
from ..service.client import ServiceClient, submit_or_raise
from ..service.jobs import execute, prepare
from ..service.protocol import Request
from ..service.server import ReproServer


@dataclasses.dataclass
class ViaServerComparison:
    """Outcome of one warm-vs-cold run."""

    abbrs: List[str]
    requests: int
    config_name: str
    cold_seconds: float
    warm_seconds: float
    identical: bool
    dedup_hits: int
    evaluations_executed: int

    @property
    def speedup(self) -> float:
        if not self.warm_seconds:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def table(self) -> str:
        lines = [
            f"via-server comparison: {self.requests} crat requests over "
            f"{', '.join(self.abbrs)} (config={self.config_name})",
            f"cold one-shot: {self.cold_seconds:8.2f}s "
            f"({self.cold_seconds / self.requests:.2f}s/request)",
            f"warm daemon:   {self.warm_seconds:8.2f}s "
            f"({self.warm_seconds / self.requests:.2f}s/request)",
            f"speedup:       {self.speedup:8.2f}x "
            f"({self.evaluations_executed} server jobs executed, "
            f"{self.dedup_hits} deduplicated)",
            f"results bit-identical: {'yes' if self.identical else 'NO'}",
        ]
        return "\n".join(lines)


def _crat_request(abbr: str, config_name: str) -> Request:
    return Request(
        job="crat", params={"target": abbr, "config": config_name}
    )


def compare_via_server(
    abbrs: Optional[Sequence[str]] = None,
    requests: int = 10,
    config_name: str = "fermi",
    workers: int = 2,
    jobs: Optional[int] = None,
) -> ViaServerComparison:
    """Measure the same request stream cold and against a warm daemon."""
    abbrs = list(abbrs) if abbrs else ["GAU"]
    if requests < 1:
        raise ValueError("requests must be positive")
    stream = [abbrs[i % len(abbrs)] for i in range(requests)]

    # Cold phase: a fresh memory-only engine per request, exactly the
    # state a new one-shot process would start from.  The process-wide
    # engine is restored afterwards, whatever happens.
    previous = get_engine()
    cold_results = []
    try:
        t0 = time.perf_counter()
        for abbr in stream:
            set_engine(EvaluationEngine(jobs=jobs, disk_cache=""))
            prepared = prepare(_crat_request(abbr, config_name))
            cold_results.append(execute(prepared))
        cold_seconds = time.perf_counter() - t0
    finally:
        set_engine(previous)

    # Warm phase: one daemon, one warm engine, same stream through the
    # real socket protocol.  Booted outside the timed region — a
    # service's start-up is paid once, not per request.
    server = ReproServer(
        socket_path=tempfile.mktemp(
            prefix=f"repro-bench-{uuid.uuid4().hex[:8]}", suffix=".sock"
        ),
        engine=EvaluationEngine(jobs=jobs, disk_cache=""),
        workers=workers,
        queue_limit=max(64, requests),
    )
    server.start()
    warm_results = []
    try:
        with ServiceClient(socket_path=server.socket_path) as client:
            t0 = time.perf_counter()
            for abbr in stream:
                warm_results.append(submit_or_raise(
                    client, "crat",
                    {"target": abbr, "config": config_name},
                ))
            warm_seconds = time.perf_counter() - t0
        stats = server.stats_payload()["service"]
    finally:
        server.shutdown(drain=False)
        set_engine(previous)

    return ViaServerComparison(
        abbrs=abbrs,
        requests=requests,
        config_name=config_name,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        identical=warm_results == cold_results,
        dedup_hits=stats["dedup_hits"],
        evaluations_executed=stats["executed"],
    )
