"""Control-flow and dataflow analyses over the PTX-subset IR."""

from .dataflow import BackwardMaySolver, ForwardMaySolver
from .dominators import (
    dominates,
    dominator_tree,
    immediate_dominators,
    immediate_post_dominators,
)
from .graph import BasicBlock, CFG
from .liveness import LiveRange, LivenessInfo, analyze
from .loops import Loop, find_loops, loop_depths

__all__ = [
    "BackwardMaySolver",
    "BasicBlock",
    "CFG",
    "ForwardMaySolver",
    "LiveRange",
    "LivenessInfo",
    "Loop",
    "analyze",
    "dominates",
    "dominator_tree",
    "find_loops",
    "immediate_dominators",
    "immediate_post_dominators",
    "loop_depths",
]
