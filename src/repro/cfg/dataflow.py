"""Generic iterative dataflow framework.

Liveness (backward, may) drives register allocation; the framework is
kept generic so other analyses (reaching definitions for the verifier's
stricter mode, availability for future redundancy elimination) can share
the worklist machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Generic, TypeVar

from .graph import CFG

T = TypeVar("T")

Transfer = Callable[[int, FrozenSet[T]], FrozenSet[T]]


class BackwardMaySolver(Generic[T]):
    """Solve a backward may-analysis (union meet) over a CFG.

    ``transfer(block_index, out_set) -> in_set`` applies the block's
    transfer function.  The solver iterates to a fixed point using a
    worklist seeded in postorder (the efficient order for backward
    problems).
    """

    def __init__(self, cfg: CFG, transfer: Transfer):
        self.cfg = cfg
        self.transfer = transfer
        self.in_sets: Dict[int, FrozenSet[T]] = {}
        self.out_sets: Dict[int, FrozenSet[T]] = {}

    def solve(self) -> None:
        empty: FrozenSet[T] = frozenset()
        for block in self.cfg.blocks:
            self.in_sets[block.index] = empty
            self.out_sets[block.index] = empty
        worklist = list(self.cfg.reverse_postorder())
        in_worklist = set(worklist)
        while worklist:
            idx = worklist.pop()
            in_worklist.discard(idx)
            block = self.cfg.blocks[idx]
            out_set: FrozenSet[T] = empty
            for succ in block.successors:
                out_set = out_set | self.in_sets[succ]
            self.out_sets[idx] = out_set
            new_in = self.transfer(idx, out_set)
            if new_in != self.in_sets[idx]:
                self.in_sets[idx] = new_in
                for pred in block.predecessors:
                    if pred not in in_worklist:
                        worklist.append(pred)
                        in_worklist.add(pred)


class ForwardMaySolver(Generic[T]):
    """Solve a forward may-analysis (union meet) over a CFG."""

    def __init__(self, cfg: CFG, transfer: Transfer):
        self.cfg = cfg
        self.transfer = transfer
        self.in_sets: Dict[int, FrozenSet[T]] = {}
        self.out_sets: Dict[int, FrozenSet[T]] = {}

    def solve(self) -> None:
        empty: FrozenSet[T] = frozenset()
        for block in self.cfg.blocks:
            self.in_sets[block.index] = empty
            self.out_sets[block.index] = empty
        worklist = list(reversed(self.cfg.reverse_postorder()))
        in_worklist = set(worklist)
        while worklist:
            idx = worklist.pop()
            in_worklist.discard(idx)
            block = self.cfg.blocks[idx]
            in_set: FrozenSet[T] = empty
            for pred in block.predecessors:
                in_set = in_set | self.out_sets[pred]
            self.in_sets[idx] = in_set
            new_out = self.transfer(idx, in_set)
            if new_out != self.out_sets[idx]:
                self.out_sets[idx] = new_out
                for succ in block.successors:
                    if succ not in in_worklist:
                        worklist.append(succ)
                        in_worklist.add(succ)
