"""Dominator-tree computation (Cooper-Harvey-Kennedy algorithm).

Dominators feed natural-loop detection (:mod:`repro.cfg.loops`), which
in turn supplies the loop-depth spill weights used by the allocator and
the trip-count hints used by the static OptTLP analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import CFG


def immediate_dominators(cfg: CFG) -> Dict[int, Optional[int]]:
    """Compute the immediate dominator of every reachable block.

    Returns a map ``block_index -> idom_index`` with the entry mapping
    to ``None``.  Unreachable blocks are omitted.
    """
    if not cfg.blocks:
        return {}
    rpo = cfg.reverse_postorder()
    # Restrict to reachable blocks: reverse_postorder appends unreachable
    # blocks; filter them via reachability from entry.
    reachable = _reachable(cfg)
    rpo = [b for b in rpo if b in reachable]
    order_of = {b: i for i, b in enumerate(rpo)}

    idom: Dict[int, Optional[int]] = {rpo[0]: rpo[0]}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order_of[a] > order_of[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_of[b] > order_of[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block_idx in rpo[1:]:
            preds = [
                p
                for p in cfg.blocks[block_idx].predecessors
                if p in idom and p in reachable
            ]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(block_idx) != new_idom:
                idom[block_idx] = new_idom
                changed = True

    result: Dict[int, Optional[int]] = {}
    for block_idx, dom in idom.items():
        result[block_idx] = None if block_idx == rpo[0] else dom
    return result


def dominates(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    """Whether block ``a`` dominates block ``b`` under the given idom map."""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


def dominator_tree(cfg: CFG) -> Dict[int, List[int]]:
    """Children lists of the dominator tree."""
    idom = immediate_dominators(cfg)
    tree: Dict[int, List[int]] = {b: [] for b in idom}
    for block_idx, dom in idom.items():
        if dom is not None:
            tree[dom].append(block_idx)
    return tree


def _reachable(cfg: CFG) -> set:
    seen = {0}
    stack = [0]
    while stack:
        idx = stack.pop()
        for succ in cfg.blocks[idx].successors:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def immediate_post_dominators(cfg: CFG) -> Dict[int, Optional[int]]:
    """Immediate post-dominator of every block.

    Computed by running the dominator algorithm on the reversed CFG
    with a virtual exit (index ``-1``) joining all real exits.  Blocks
    whose only post-dominator is the virtual exit map to ``None``.

    SIMT reconvergence uses this: a divergent branch reconverges at the
    immediate post-dominator of its block (the standard IPDOM stack).
    """
    if not cfg.blocks:
        return {}
    virtual_exit = -1
    preds: Dict[int, List[int]] = {virtual_exit: []}
    succs: Dict[int, List[int]] = {virtual_exit: []}
    for block in cfg.blocks:
        # Reversed edges: successor -> predecessor.
        succs[block.index] = list(block.predecessors)
        preds[block.index] = list(block.successors)
        if not block.successors:
            preds[block.index] = [virtual_exit]
            succs[virtual_exit].append(block.index)

    # Reverse postorder of the reversed graph from the virtual exit.
    order: List[int] = []
    seen = {virtual_exit}
    stack = [(virtual_exit, iter(succs[virtual_exit]))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(succs[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    order_of = {b: i for i, b in enumerate(order)}

    ipdom: Dict[int, Optional[int]] = {virtual_exit: virtual_exit}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order_of[a] > order_of[b]:
                a = ipdom[a]  # type: ignore[assignment]
            while order_of[b] > order_of[a]:
                b = ipdom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            candidates = [p for p in preds.get(node, []) if p in ipdom]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(p, new)
            if ipdom.get(node) != new:
                ipdom[node] = new
                changed = True

    result: Dict[int, Optional[int]] = {}
    for block in cfg.blocks:
        dom = ipdom.get(block.index)
        result[block.index] = None if dom in (None, virtual_exit) else dom
    return result
