"""Control-flow graph construction over PTX-subset kernels.

CRAT "first builds the control- and data-flow graph based on the
intermediate PTX representation" (paper Section 4.1).  A
:class:`BasicBlock` is a maximal straight-line instruction sequence; the
:class:`CFG` links blocks by branch targets and fall-through edges and
offers the traversal orders the dataflow framework needs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..ptx.instruction import Instruction, Label
from ..ptx.module import Kernel


@dataclasses.dataclass
class BasicBlock:
    """A maximal single-entry, single-exit straight-line sequence.

    ``start`` is the index (into the kernel body, counting instructions
    only) of the first instruction; used to give every instruction a
    stable global position for live-range computation.
    """

    index: int
    label: Optional[str]
    instructions: List[Instruction]
    start: int
    successors: List[int] = dataclasses.field(default_factory=list)
    predecessors: List[int] = dataclasses.field(default_factory=list)

    def positions(self) -> Iterator[Tuple[int, Instruction]]:
        """Yield ``(global_position, instruction)`` pairs."""
        for offset, inst in enumerate(self.instructions):
            yield self.start + offset, inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def __len__(self) -> int:
        return len(self.instructions)


class CFG:
    """The control-flow graph of one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.blocks: List[BasicBlock] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def _build(self) -> None:
        body = self.kernel.body
        # Pass 1: find leader positions (first instruction, label targets,
        # instructions following branches).
        leaders: Set[int] = set()
        label_at: Dict[str, int] = {}
        position = 0
        pending_labels: List[str] = []
        flat: List[Tuple[Optional[List[str]], Instruction]] = []
        for item in body:
            if isinstance(item, Label):
                pending_labels.append(item.name)
                continue
            labels_here = pending_labels or None
            pending_labels = []
            if labels_here:
                leaders.add(position)
                for name in labels_here:
                    label_at[name] = position
            flat.append((labels_here, item))
            position += 1
        if flat:
            leaders.add(0)
        for pos, (_, inst) in enumerate(flat):
            if inst.is_terminator and pos + 1 < len(flat):
                leaders.add(pos + 1)
            if inst.is_branch:
                # Conditional branches also make the next inst a leader.
                if pos + 1 < len(flat):
                    leaders.add(pos + 1)

        # Pass 2: carve blocks.
        ordered = sorted(leaders)
        block_of_pos: Dict[int, int] = {}
        for bi, lead in enumerate(ordered):
            end = ordered[bi + 1] if bi + 1 < len(ordered) else len(flat)
            insts = [inst for _, inst in flat[lead:end]]
            labels_here = flat[lead][0]
            label = labels_here[0] if labels_here else None
            self.blocks.append(
                BasicBlock(index=bi, label=label, instructions=insts, start=lead)
            )
            for pos in range(lead, end):
                block_of_pos[pos] = bi

        # Pass 3: wire edges.
        block_of_label = {
            name: block_of_pos[pos] for name, pos in label_at.items() if pos in block_of_pos
        }
        for block in self.blocks:
            if not block.instructions:
                continue
            last = block.instructions[-1]
            last_pos = block.start + len(block.instructions) - 1
            if last.is_branch:
                target = block_of_label.get(last.target)
                if target is None:
                    raise ValueError(
                        f"branch to label {last.target!r} past end of kernel"
                    )
                block.successors.append(target)
                if last.guard is not None and last_pos + 1 < len(flat):
                    block.successors.append(block_of_pos[last_pos + 1])
            elif last.is_terminator:
                pass  # ret/exit: no successors
            elif last_pos + 1 < len(flat):
                block.successors.append(block_of_pos[last_pos + 1])
        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    # ------------------------------------------------------------------
    # Queries and traversals.
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("empty CFG")
        return self.blocks[0]

    def exits(self) -> List[BasicBlock]:
        return [b for b in self.blocks if not b.successors]

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def reverse_postorder(self) -> List[int]:
        """Block indices in reverse postorder (good order for forward problems)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(idx: int) -> None:
            stack = [(idx, iter(self.blocks[idx].successors))]
            seen.add(idx)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.blocks:
            visit(0)
        # Unreachable blocks appended at the end in index order.
        for block in self.blocks:
            if block.index not in seen:
                order.append(block.index)
                seen.add(block.index)
        order.reverse()
        return order

    def postorder(self) -> List[int]:
        return list(reversed(self.reverse_postorder()))

    def edges(self) -> Iterator[Tuple[int, int]]:
        for block in self.blocks:
            for succ in block.successors:
                yield block.index, succ

    def __len__(self) -> int:
        return len(self.blocks)
