"""Live-variable analysis over the PTX-subset IR.

The paper's allocator "analyzes the live range of each variable and
constructs the interference graph" (Section 5.1).  This module computes,
for every instruction position, the set of registers live *out* of that
position, plus summarized per-register live intervals and use counts
(used as spill weights, and as the "access frequency" signal behind the
var1/var2 example of paper Figure 8).

Registers are tracked by *name*: PTX register names are unique per
kernel, while the parser may attach slightly different integer dtypes to
the same register at different sites (s32 vs u32), which must not split
a live range.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from ..ptx.instruction import Instruction, Reg
from ..ptx.isa import DType, Opcode
from ..ptx.module import Kernel
from .dataflow import BackwardMaySolver
from .graph import CFG


@dataclasses.dataclass
class LiveRange:
    """Summary of one register's lifetime.

    ``start``/``end`` are global instruction positions (inclusive of the
    defining position, exclusive semantics are handled by interference
    construction).  ``uses`` counts read sites; ``defs`` counts write
    sites; ``weight`` is the loop-depth-weighted access count used to
    order spill candidates (deep-loop variables are expensive to spill).
    """

    name: str
    dtype: DType
    start: int
    end: int
    uses: int = 0
    defs: int = 0
    weight: float = 0.0

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def accesses(self) -> int:
        return self.uses + self.defs


class LivenessInfo:
    """Result of liveness analysis for one kernel."""

    def __init__(self, kernel: Kernel, cfg: CFG = None):
        self.kernel = kernel
        self.cfg = cfg if cfg is not None else CFG(kernel)
        #: live-out register-name set per global instruction position
        self.live_out: List[FrozenSet[str]] = []
        #: live-in register-name set per global instruction position
        self.live_in: List[FrozenSet[str]] = []
        #: per-position instruction, aligned with live_in/live_out
        self.instructions: List[Instruction] = []
        #: name -> representative dtype (first definition wins)
        self.dtype_of: Dict[str, DType] = {}
        self.ranges: Dict[str, LiveRange] = {}
        self._analyze()

    # ------------------------------------------------------------------
    def _analyze(self) -> None:
        cfg = self.cfg
        n = cfg.instruction_count()
        self.live_out = [frozenset()] * n
        self.live_in = [frozenset()] * n
        self.instructions = [None] * n  # type: ignore[list-item]

        # Per-block use/def summaries.
        use_sets: Dict[int, Set[str]] = {}
        def_sets: Dict[int, Set[str]] = {}
        for block in cfg.blocks:
            uses: Set[str] = set()
            defs: Set[str] = set()
            for inst in block.instructions:
                for reg in inst.uses():
                    if reg.name not in defs:
                        uses.add(reg.name)
                for reg in inst.defs():
                    defs.add(reg.name)
            use_sets[block.index] = uses
            def_sets[block.index] = defs

        def transfer(idx: int, out_set: FrozenSet[str]) -> FrozenSet[str]:
            return frozenset(use_sets[idx] | (out_set - def_sets[idx]))

        solver: BackwardMaySolver[str] = BackwardMaySolver(cfg, transfer)
        solver.solve()

        # Expand to per-instruction sets by walking blocks backwards.
        for block in cfg.blocks:
            live: Set[str] = set(solver.out_sets[block.index])
            rows = list(block.positions())
            for pos, inst in reversed(rows):
                self.instructions[pos] = inst
                self.live_out[pos] = frozenset(live)
                for reg in inst.defs():
                    live.discard(reg.name)
                for reg in inst.uses():
                    live.add(reg.name)
                self.live_in[pos] = frozenset(live)

        self._summarize_ranges()

    def _summarize_ranges(self) -> None:
        from .loops import loop_depths

        depths = loop_depths(self.cfg)
        pos_depth: Dict[int, int] = {}
        for block in self.cfg.blocks:
            d = depths.get(block.index, 0)
            for pos, _ in block.positions():
                pos_depth[pos] = d

        for pos, inst in enumerate(self.instructions):
            for reg in inst.regs():
                self.dtype_of.setdefault(reg.name, reg.dtype)
            touched = {r.name for r in inst.regs()}
            alive = touched | set(self.live_in[pos]) | set(self.live_out[pos])
            for name in alive:
                rng = self.ranges.get(name)
                if rng is None:
                    rng = LiveRange(
                        name=name,
                        dtype=self.dtype_of.get(name, DType.U32),
                        start=pos,
                        end=pos,
                    )
                    self.ranges[name] = rng
                else:
                    rng.start = min(rng.start, pos)
                    rng.end = max(rng.end, pos)
            weight_unit = 10.0 ** pos_depth.get(pos, 0)
            for reg in inst.uses():
                rng = self.ranges[reg.name]
                rng.uses += 1
                rng.weight += weight_unit
            for reg in inst.defs():
                rng = self.ranges[reg.name]
                rng.defs += 1
                rng.weight += weight_unit
        # Fill dtypes for ranges created before any touch recorded one.
        for name, rng in self.ranges.items():
            rng.dtype = self.dtype_of.get(name, rng.dtype)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def pressure_profile(self, reg_class=None) -> List[int]:
        """Register pressure at every global instruction position.

        ``profile[pos]`` counts the registers simultaneously occupied
        across position ``pos``: everything live out of it plus the
        values it defines (a def occupies its register at the defining
        instruction even when immediately dead).  With ``reg_class``
        given, counts only registers of that class; otherwise counts
        32-bit slots (64-bit registers weigh 2, predicates 0).

        This is the **one** pressure walk in the codebase:
        :meth:`max_pressure` is its maximum, the lint pressure analyzer
        (``LNT1xx``) attributes occupancy-stair crossings on it, and
        the static feature extractor summarizes it.
        """
        profile: List[int] = []
        for pos in range(len(self.instructions)):
            live = set(self.live_out[pos]) | {
                r.name for r in self.instructions[pos].defs()
            }
            total = 0
            for name in live:
                dtype = self.dtype_of.get(name, DType.U32)
                if reg_class is None:
                    total += dtype.reg_class.slots
                elif dtype.reg_class is reg_class:
                    total += 1
            profile.append(total)
        return profile

    def max_pressure(self, reg_class=None) -> int:
        """Peak number of simultaneously-live registers.

        With ``reg_class`` given, counts only registers of that class;
        otherwise counts 32-bit slots (64-bit registers weigh 2,
        predicates 0).  This is the paper's ``MaxReg`` when measured in
        slots: the registers per-thread "required to hold all the
        variables" (Section 4.1).
        """
        return max(self.pressure_profile(reg_class), default=0)

    def live_at(self, pos: int) -> FrozenSet[str]:
        return self.live_out[pos]

    def is_live_across(self, name: str, pos: int) -> bool:
        """Whether ``name`` is live both into and out of position ``pos``."""
        return name in self.live_in[pos] and name in self.live_out[pos]


def analyze(kernel: Kernel) -> LivenessInfo:
    """Convenience: run liveness analysis on a kernel."""
    return LivenessInfo(kernel)


# ----------------------------------------------------------------------
# Shared pressure/interference primitives.
#
# Before PR 9 three call sites each re-walked liveness with their own
# copy of the same two conventions — (a) a def interferes with live-out
# minus the source of a register mov, and (b) within-block pressure
# deltas weighted in 32-bit slots.  They now all build on the two
# primitives below so the conventions cannot drift.
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class InterferenceSite:
    """One instruction position as interference construction sees it.

    ``move_src`` is the source register name when the instruction is a
    register-to-register ``mov`` — the one case where a def may share a
    register with a value live across it (coalescing).
    """

    pos: int
    inst: Instruction
    live_out: FrozenSet[str]
    move_src: Optional[str]


def iter_interference_sites(
    liveness: LivenessInfo,
) -> Iterator[InterferenceSite]:
    """Walk every position with the def-vs-live-out interference view.

    The single source of truth for the mov-coalescing exception, used
    by :func:`repro.regalloc.interference.build_interference` (graph
    construction) and the independent ``AL001`` recheck in
    :mod:`repro.verify.allocation` — the checker stays independent by
    consuming the *sites*, not the allocator's graph.
    """
    for pos, inst in enumerate(liveness.instructions):
        move_src: Optional[str] = None
        if (
            inst.opcode is Opcode.MOV
            and inst.srcs
            and isinstance(inst.srcs[0], Reg)
        ):
            move_src = inst.srcs[0].name
        yield InterferenceSite(pos, inst, liveness.live_out[pos], move_src)


class BlockPressureTracker:
    """Incremental within-block pressure accounting in 32-bit slots.

    Seeded from one basic block's instructions plus its live-out set,
    it answers "what is the net pressure delta of emitting this
    instruction next?" (:meth:`delta`) and advances its live-set model
    when the instruction is actually emitted (:meth:`emit`).  A value
    *births* at an instruction when it was dead before and survives
    after (more in-block accesses remain, or it is live out of the
    block); it *dies* when this is its last in-block access and it is
    not live out.  Slot weights follow liveness analysis: first
    occurrence of a name fixes its dtype, 64-bit registers weigh 2,
    predicates 0.

    This is the pressure-delta machinery of the min-register scheduler
    (:mod:`repro.opt.minreg`), extracted so schedulers and analyses
    share one implementation; the scheduler's behaviour is pinned
    bit-identical by the opt-rewrite gate.
    """

    def __init__(
        self, insts: Sequence[Instruction], live_out: FrozenSet[str]
    ) -> None:
        self.live_out = live_out
        #: per-name 32-bit slot weight (first occurrence wins, matching
        #: liveness analysis)
        self.slots: Dict[str, int] = {}
        #: remaining in-block access count per name
        self.remaining: "Counter[str]" = Counter()
        first_is_use: Set[str] = set()
        seen: Set[str] = set()
        for inst in insts:
            for reg in inst.uses():
                self.slots.setdefault(reg.name, reg.dtype.reg_class.slots)
                self.remaining[reg.name] += 1
                if reg.name not in seen:
                    first_is_use.add(reg.name)
                    seen.add(reg.name)
            for reg in inst.defs():
                self.slots.setdefault(reg.name, reg.dtype.reg_class.slots)
                self.remaining[reg.name] += 1
                seen.add(reg.name)
        #: names currently live in the block model; names whose first
        #: in-block access is a use flow in live from predecessors
        self.live: Set[str] = set(first_is_use)

    @staticmethod
    def _touched(inst: Instruction) -> "Counter[str]":
        touched: "Counter[str]" = Counter()
        for reg in inst.uses():
            touched[reg.name] += 1
        for reg in inst.defs():
            touched[reg.name] += 1
        return touched

    def delta(self, inst: Instruction) -> int:
        """Net slot delta (births minus deaths) of emitting ``inst`` now."""
        births = 0
        deaths = 0
        for name, count in self._touched(inst).items():
            survives = (
                self.remaining[name] - count > 0 or name in self.live_out
            )
            if name not in self.live and survives:
                births += self.slots[name]
            elif name in self.live and not survives:
                deaths += self.slots[name]
        return births - deaths

    def emit(self, inst: Instruction) -> None:
        """Commit ``inst`` as emitted, advancing the live-set model."""
        for name, count in self._touched(inst).items():
            self.remaining[name] -= count
            if self.remaining[name] > 0 or name in self.live_out:
                self.live.add(name)
            else:
                self.live.discard(name)

    def pressure(self) -> int:
        """Current modelled pressure of the live set, in slots."""
        return sum(self.slots[name] for name in self.live)
