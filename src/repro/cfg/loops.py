"""Natural-loop detection and loop-nesting depth.

Back edges are found with the dominator tree; each back edge ``t -> h``
(where ``h`` dominates ``t``) defines a natural loop whose body is
collected by backward reachability from ``t`` stopping at ``h``.  The
nesting depth of each block weights spill costs (a reload inside a
doubly-nested loop executes ~100x as often as straight-line code) and
lets the static OptTLP model estimate dynamic instruction counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from .dominators import dominates, immediate_dominators
from .graph import CFG


@dataclasses.dataclass
class Loop:
    """One natural loop: its header block and member block set."""

    header: int
    body: Set[int]

    def __contains__(self, block_idx: int) -> bool:
        return block_idx in self.body

    @property
    def size(self) -> int:
        return len(self.body)


def find_loops(cfg: CFG) -> List[Loop]:
    """All natural loops, one per back-edge target (bodies merged per header)."""
    idom = immediate_dominators(cfg)
    loops_by_header: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        if block.index not in idom:
            continue  # unreachable
        for succ in block.successors:
            if succ in idom and dominates(idom, succ, block.index):
                body = _collect_body(cfg, header=succ, tail=block.index)
                loops_by_header.setdefault(succ, set()).update(body)
    return [Loop(header=h, body=b) for h, b in sorted(loops_by_header.items())]


def _collect_body(cfg: CFG, header: int, tail: int) -> Set[int]:
    body = {header, tail}
    stack = [tail]
    while stack:
        idx = stack.pop()
        if idx == header:
            continue
        for pred in cfg.blocks[idx].predecessors:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def loop_depths(cfg: CFG) -> Dict[int, int]:
    """Loop-nesting depth of every block (0 = not in any loop)."""
    depths = {block.index: 0 for block in cfg.blocks}
    for loop in find_loops(cfg):
        for block_idx in loop.body:
            depths[block_idx] += 1
    return depths
