"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's toolchain is used:

* ``info APP|FILE``      — resource-usage analysis (Table 1)
* ``allocate APP|FILE``  — register-allocate at a limit, emit PTX
* ``simulate APP|FILE``  — run the timing simulator at a TLP
* ``crat APP|FILE``      — the full coordinated optimization (Fig 9)
* ``suite``              — the Fig 13 table over the sensitive suite
* ``bench --fastpath``   — exact vs two-tier pipeline comparison
* ``bench --via-server`` — warm-daemon vs cold one-shot wall-clock
* ``bench --batchsim``   — scalar vs batched simulation core (asserts
  bit-identity; ``--record PATH`` appends to the speedup ledger)
* ``verify APP|FILE``    — lint a kernel with the translation-validation
  rules (dataflow, spill-stack discipline; ``--pipeline`` also runs the
  transform passes under effect-preservation checking)
* ``lint APP|FILE``      — whole-kernel static analysis: register-
  pressure hotspots vs the occupancy staircase (``LNT1xx``),
  coalescing/bank-conflict/dead-store analysis (``LNT2xx``), warp
  divergence (``LNT3xx``), def-use hygiene (``LNT4xx``); ``--json``,
  ``--sarif [PATH]`` (SARIF 2.1.0), ``--rules`` code selection,
  ``--fail-on error|warn|never`` gating (exit 8 on findings), and
  ``--features-json PATH`` for the versioned static feature vector
* ``serve``              — persistent compilation daemon: one warm
  engine behind a unix socket (or TCP via ``--listen``), NDJSON
  protocol, single-flight dedup, bounded queue with backpressure,
  graceful SIGTERM drain
* ``submit JOB TARGET``  — send one job to a running daemon and render
  the result exactly as the one-shot command would

``APP`` is a Table 3 abbreviation (CFD, KMN, ...); ``FILE`` is a path
to PTX-subset text.  File inputs use synthetic default buffer sizes.

Simulation-heavy commands (``simulate``, ``crat``, ``suite``) share the
evaluation engine: ``--jobs N`` fans independent design points out over
N worker processes (default: ``REPRO_JOBS`` or serial), results are
memoized by kernel content (persistently if ``REPRO_CACHE_DIR`` is
set), and ``--trace-json PATH`` dumps the engine's instrumentation
(per-stage timings, simulation counts, cache hit/miss counters).
``--fastpath-topk K`` turns on the analytical fast path (screen the
TLP sweep statically, simulate only the top-K survivors plus a bracket
walk; ``--no-refine`` skips the walk); the default keeps the exact
exhaustive pipeline.  Multi-point sweeps route through the batched SoA
simulation core by default — bit-identical to the scalar simulator,
roughly 2.8x faster on profile sweeps; ``--no-batch`` forces the
point-by-point supervised path.

``--passes P1,P2,...`` (on ``simulate``/``crat``/``suite``/``serve``/
``submit``) runs a pre-allocation optimization pipeline over the kernel
before evaluation — comma-separated rewrite-driver pass names
(``copy-prop``, ``dce``, ``bypass``, ``mlp-sched``, ``minreg-sched``,
``unroll``).  The default is the empty pipeline (the kernel is
evaluated exactly as written); unknown names are a parse error (exit
2).  The active spec is folded into engine cache keys and service
dedup signatures, so runs under different pipelines never share a
cached result.

``--verify`` (on ``allocate``/``simulate``/``crat``/``suite``/``bench``)
turns on translation validation: input kernels are dataflow-checked and
every candidate allocation is independently rechecked (register
sharing, spill-slot discipline, shared-memory budget); any finding is a
hard error.

Failures map to distinct exit codes so scripts can triage without
parsing stderr: 0 all ok, 2 parse/verification, 3 allocation,
4 simulation/cache, 5 partial suite failure (some apps completed,
some did not — ``suite --report-json PATH`` writes the structured
failure report), 6 translation-validation findings (``repro verify``
and ``--verify`` runs), 7 compilation-service transport/protocol
failure (``repro submit`` against an unreachable or overloaded
daemon; job-level failures keep their own codes), 8 lint findings at
or above the ``--fail-on`` threshold (``repro lint`` and ``--lint``
runs).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .arch import get_config
from .core import CRATOptimizer, collect_resource_usage
from .engine import configure as configure_engine
from .engine import get_engine
from .errors import ReproError, classify_error
from .ptx import parse_kernel, print_kernel, verify_kernel
from .regalloc import allocate as allocate_kernel
from .regalloc import register_demand
from .regalloc.allocator import InsufficientRegistersError
from .workloads import BY_ABBR, load_workload


def _engine_for(args):
    """Apply the command's engine flags to the shared engine."""
    jobs = getattr(args, "jobs", 0)
    topk = getattr(args, "fastpath_topk", None)
    no_refine = getattr(args, "no_refine", False)
    return configure_engine(
        jobs=jobs if jobs else None,
        fastpath_topk=topk,
        fastpath_refine=False if no_refine else None,
        task_timeout=getattr(args, "task_timeout", None),
        batch=getattr(args, "batch", None),
        # Fold the active --passes pipeline into the engine's cache
        # keys (validated here, so a typo exits 2 before any work).
        passes=getattr(args, "passes", None),
        # Learned tier-0 screen: an artifact path installs it on the
        # shared engine (None leaves the current screen untouched).
        costmodel=getattr(args, "costmodel", None),
        telemetry_dir=getattr(args, "telemetry_dir", None),
    )


def _write_trace_json(args) -> None:
    path = getattr(args, "trace_json", "")
    if path:
        try:
            with open(path, "w") as handle:
                handle.write(get_engine().to_json() + "\n")
        except OSError as err:
            raise SystemExit(f"error: cannot write engine trace: {err}")
        print(f"engine trace written to {path}", file=sys.stderr)


def _load(target: str):
    """Resolve APP abbreviation or PTX file path to (kernel, workload?)."""
    if target.upper() in BY_ABBR:
        workload = load_workload(target.upper())
        return workload.kernel, workload
    try:
        with open(target) as handle:
            text = handle.read()
    except OSError as err:
        raise SystemExit(f"error: {target!r} is neither a known app "
                         f"({', '.join(sorted(BY_ABBR))}) nor a readable "
                         f"file: {err}")
    try:
        kernel = parse_kernel(text)
        verify_kernel(kernel)
    except Exception as err:
        raise classify_error(err, app=target, stage="parse")
    return kernel, None


def cmd_verify(args) -> int:
    """Lint mode: report diagnostics instead of dying on the first one.

    Unlike every other command, file targets are parsed *without* the
    legacy load-time verifier — a kernel with a use-before-def should
    produce a ``DF001`` diagnostic and exit 6, not a parse error and
    exit 2.  Unparseable input still exits 2.
    """
    from . import verify as verify_mod

    kernel, _ = _load_unverified(args.target)
    report = verify_mod.lint_kernel(kernel)
    if args.pipeline:
        _, pipeline_report = verify_mod.run_validated_pipeline(kernel)
        report.extend(pipeline_report)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    from .errors import EXIT_VERIFY

    if report.errors or (args.strict and report.warnings):
        return EXIT_VERIFY
    return 0


def _load_unverified(target: str):
    """Resolve a lint/verify target without the legacy load-time verifier.

    Returns ``(kernel, source_path_or_None)``.  A kernel with static
    defects must reach the analyzers and come back as rule codes;
    only genuinely unparseable input is a parse failure (exit 2).
    """
    if target.upper() in BY_ABBR:
        return load_workload(target.upper()).kernel, None
    try:
        with open(target) as handle:
            text = handle.read()
    except OSError as err:
        raise SystemExit(
            f"error: {target!r} is neither a known app "
            f"({', '.join(sorted(BY_ABBR))}) nor a readable file: {err}"
        )
    try:
        kernel = parse_kernel(text)
    except Exception as err:
        raise classify_error(err, app=target, stage="parse")
    return kernel, target


def cmd_lint(args) -> int:
    """Static-analysis lint: LNT rules, SARIF, feature extraction."""
    import json as json_mod

    from .analysis import extract_features, run_lint, severity_gate, to_sarif
    from .errors import EXIT_LINT, ParseError
    from .verify.registry import select_rules

    rules = None
    if args.rules:
        try:
            rules = select_rules(args.rules)
        except ValueError as err:
            raise ParseError(str(err), stage="rules")

    kernel, source = _load_unverified(args.target)
    config = get_config(args.config)
    report = run_lint(kernel, config=config, rules=rules, source=source)

    if args.features_json:
        features = extract_features(kernel, config=config)
        try:
            with open(args.features_json, "w") as handle:
                handle.write(features.to_json() + "\n")
        except OSError as err:
            raise SystemExit(f"error: cannot write features: {err}")
        print(f"feature vector written to {args.features_json}",
              file=sys.stderr)

    if args.sarif is not None:
        sarif = to_sarif(
            [report],
            sources={kernel.name: source} if source else None,
        )
        text = json_mod.dumps(sarif, indent=2)
        if args.sarif == "-":
            print(text)
        else:
            try:
                with open(args.sarif, "w") as handle:
                    handle.write(text + "\n")
            except OSError as err:
                raise SystemExit(f"error: cannot write SARIF: {err}")
            print(f"SARIF report written to {args.sarif}", file=sys.stderr)

    if args.json:
        print(report.to_json())
    elif args.sarif != "-":
        print(report.render())

    failed, _ = severity_gate(report, args.fail_on)
    return EXIT_LINT if failed else 0


def _lint_gate(kernel, config_name: str) -> None:
    """``--lint`` on the main commands: advisory findings to stderr,
    error-severity findings abort with :class:`repro.errors.LintError`
    (exit 8) before any simulation is spent."""
    from .analysis import run_lint, severity_gate
    from .errors import LintError

    report = run_lint(kernel, config=get_config(config_name))
    if report.diagnostics:
        print(report.render(), file=sys.stderr)
    failed, gating = severity_gate(report, "error")
    if failed:
        raise LintError(
            f"{len(gating)} lint error(s): "
            + "; ".join(d.rule + " " + d.message for d in gating[:4])
            + ("; ..." if len(gating) > 4 else ""),
            kernel=kernel.name,
            stage="lint",
            diagnostics=list(report.diagnostics),
        )


def cmd_info(args) -> int:
    kernel, workload = _load(args.target)
    config = get_config(args.config)
    default = workload.default_reg if workload else None
    usage = collect_resource_usage(kernel, config, default_reg=default)
    print(f"kernel:     {kernel.name}")
    print(f"config:     {config.name}")
    print(f"MaxReg:     {usage.max_reg}")
    print(f"MinReg:     {usage.min_reg}")
    print(f"DefaultReg: {usage.default_reg}")
    print(f"BlockSize:  {usage.block_size}")
    print(f"ShmSize:    {usage.shm_size} B")
    print(f"MaxTLP:     {usage.max_tlp}")
    print(f"static instructions: {len(kernel.instructions())}")
    return 0


def cmd_allocate(args) -> int:
    kernel, _ = _load(args.target)
    limit = args.reg if args.reg else register_demand(kernel)
    try:
        result = allocate_kernel(
            kernel, limit, spare_shm_bytes=args.spare_shm,
            enable_shm_spill=args.spare_shm > 0,
        )
    except InsufficientRegistersError as err:
        raise classify_error(err, kernel=kernel.name, stage="allocate")
    if args.verify:
        from . import verify as verify_mod

        verify_mod.verify_allocation(result, stage="allocate").raise_if_errors()
    print(f"// reg limit {limit}: used {result.reg_per_thread} slots, "
          f"{len(result.spilled)} spilled "
          f"({result.num_local_insts} local / "
          f"{result.num_shared_insts} shared insts, "
          f"{len(result.rematerialized)} rematerialized)",
          file=sys.stderr)
    print(print_kernel(result.kernel))
    return 0


def cmd_simulate(args) -> int:
    kernel, workload = _load(args.target)
    config = get_config(args.config)
    if getattr(args, "lint", False):
        _lint_gate(kernel, args.config)
    if args.verify:
        from . import verify as verify_mod

        verify_mod.lint_kernel(kernel, stage="input").raise_if_errors()
    engine = _engine_for(args)
    if args.passes:
        from .ir import run_pipeline

        kernel = run_pipeline(kernel, args.passes, verify=args.verify).kernel
    sizes = workload.param_sizes if workload else None
    grid = args.grid or (workload.grid_blocks if workload else None)
    result = engine.simulate(kernel, config, tlp=args.tlp, grid_blocks=grid,
                             param_sizes=sizes)
    print(f"cycles:        {result.cycles:.0f}")
    print(f"instructions:  {result.instructions}")
    print(f"IPC:           {result.ipc:.3f}")
    print(f"L1 hit rate:   {result.l1_hit_rate:.1%}")
    print(f"MSHR stalls:   {result.mshr_stall_cycles:.0f} cycles")
    print(f"local insts:   {result.local_insts}")
    print(f"DRAM traffic:  {result.dram_bytes >> 10} KiB")
    print(f"energy:        {result.energy_nj / 1e3:.1f} uJ")
    return 0


def cmd_crat(args) -> int:
    kernel, workload = _load(args.target)
    config = get_config(args.config)
    if getattr(args, "lint", False):
        _lint_gate(kernel, args.config)
    _engine_for(args)
    optimizer = CRATOptimizer(
        config,
        enable_shm_spill=not args.no_shm_spill,
        opt_tlp_mode="static" if args.static else "profile",
        verify=args.verify,
        passes=args.passes,
    )
    result = optimizer.optimize(
        kernel,
        default_reg=workload.default_reg if workload else None,
        grid_blocks=workload.grid_blocks if workload else None,
        param_sizes=workload.param_sizes if workload else None,
    )
    print(f"OptTLP ({result.opt_tlp_source}): {result.opt_tlp}")
    print("candidates:")
    for scored in result.candidates:
        mark = "  <== chosen" if scored.point == result.chosen.point else ""
        print(f"  (reg={scored.point.reg}, TLP={scored.point.tlp}) "
              f"TPSC={scored.tpsc:.1f}{mark}")
    print(f"speedup vs OptTLP: {result.speedup_vs('opttlp'):.2f}X")
    print(f"speedup vs MaxTLP: {result.speedup_vs('maxtlp'):.2f}X")
    if args.emit:
        with open(args.emit, "w") as handle:
            handle.write(print_kernel(result.chosen.allocation.kernel) + "\n")
        print(f"optimized PTX written to {args.emit}")
    _write_trace_json(args)
    return 0


def _resolve_bench_apps(args):
    from .workloads import RESOURCE_SENSITIVE, full_suite

    if args.apps:
        abbrs = [a.upper() for a in args.apps]
        unknown = [a for a in abbrs if a not in BY_ABBR]
        if unknown:
            raise SystemExit(f"error: unknown app(s): {', '.join(unknown)}")
        return abbrs
    if args.suite == "sensitive":
        return [w.abbr for w in RESOURCE_SENSITIVE]
    return [w.abbr for w in full_suite()]


def cmd_corpus(args) -> int:
    """``repro corpus export/stats`` — the training-dataset builder."""
    from .model import corpus_stats, load_corpus, write_corpus
    from .model.corpus import harvest_telemetry, sweep_records

    if args.action == "stats":
        records = load_corpus(args.corpus)
        print(json.dumps(corpus_stats(records), indent=2))
        return 0

    # export
    _engine_for(args)
    records = []
    if args.journal:
        records.extend(harvest_telemetry(args.journal))
        print(f"harvested {len(records)} telemetry records from "
              f"{len(args.journal)} journal dir(s)", file=sys.stderr)
    abbrs = []
    if args.apps:
        abbrs = [a.upper() for a in args.apps]
        unknown = [a for a in abbrs if a not in BY_ABBR]
        if unknown:
            raise SystemExit(f"error: unknown app(s): {', '.join(unknown)}")
    elif args.all:
        from .workloads import full_suite

        abbrs = [w.abbr for w in full_suite()]
    if abbrs:
        before = len(records)
        records.extend(
            sweep_records(abbrs, config_name=args.config,
                          schedulers=tuple(args.schedulers))
        )
        print(f"swept {len(abbrs)} app(s): {len(records) - before} records",
              file=sys.stderr)
    if not records:
        raise SystemExit("error: corpus export needs --apps, --all, or "
                         "--journal DIR")
    count = write_corpus(records, args.out)
    print(f"wrote {count} deduplicated records to {args.out}")
    return 0


def cmd_model(args) -> int:
    """``repro model train/info`` — the tier-0 trainer and inspector."""
    from .model import load_artifact, load_corpus, save_artifact, train_model

    if args.action == "info":
        artifact = load_artifact(args.model)
        payload = artifact.payload()
        # The full inverse Gram matrix is noise for a human; keep the
        # provenance and metrics.
        for heavy in ("a_inv", "mean", "std", "weights"):
            payload.pop(heavy, None)
        print(json.dumps(payload, indent=2))
        return 0

    # train
    records = load_corpus(args.corpus)
    artifact = train_model(records, lam=args.lam, seed=args.seed)
    checksum = save_artifact(artifact, args.out)
    metrics = {
        k: v for k, v in artifact.metrics.items() if k != "per_app"
    }
    print(f"trained on {artifact.n_records} records "
          f"({artifact.n_kernels} kernels); "
          f"metrics: {json.dumps(metrics)}")
    print(f"artifact written to {args.out} (checksum {checksum[:12]})")
    return 0


def cmd_bench(args) -> int:
    if getattr(args, "costmodel", False):
        from .bench import compare_costmodel, record_costmodel

        if not args.model:
            raise SystemExit("error: bench --costmodel requires --model "
                             "PATH (train one with repro model train)")
        comparison = compare_costmodel(
            args.model,
            abbrs=_resolve_bench_apps(args),
            config_name=args.config,
            top_k=args.fastpath_topk if args.fastpath_topk else 3,
            jobs=args.jobs if args.jobs else None,
            verify=args.verify,
        )
        print(comparison.table())
        record_path = args.record or "BENCH_costmodel.json"
        record_costmodel(comparison, record_path)
        print(f"run recorded to {record_path}", file=sys.stderr)
        if getattr(args, "report_json", ""):
            with open(args.report_json, "w") as handle:
                json.dump(comparison.to_record(), handle, indent=2)
                handle.write("\n")
            print(f"report written to {args.report_json}", file=sys.stderr)
        # The safety contract, not perfection, is the gate: the model
        # must never miss a winner on an app it actually screened.
        return 0 if not comparison.screened_mismatches else 1
    if args.batchsim:
        from .bench import compare_batchsim, record_batchsim

        from .workloads import RESOURCE_SENSITIVE, full_suite

        if args.apps:
            abbrs = [a.upper() for a in args.apps]
            unknown = [a for a in abbrs if a not in BY_ABBR]
            if unknown:
                raise SystemExit(
                    f"error: unknown app(s): {', '.join(unknown)}"
                )
        elif args.suite == "sensitive":
            abbrs = [w.abbr for w in RESOURCE_SENSITIVE]
        else:
            abbrs = [w.abbr for w in full_suite()]
        comparison = compare_batchsim(
            abbrs,
            config_name=args.config,
            repeats=args.repeats,
        )
        print(comparison.table())
        if args.record:
            record_batchsim(comparison, args.record)
            print(f"run recorded to {args.record}", file=sys.stderr)
        return 0 if comparison.identical else 1
    if args.via_server:
        from .bench import compare_via_server

        comparison = compare_via_server(
            abbrs=[a.upper() for a in args.apps] or None,
            requests=args.requests,
            config_name=args.config,
            jobs=args.jobs if args.jobs else None,
        )
        print(comparison.table())
        return 0 if comparison.identical else 1
    if not args.fastpath:
        raise SystemExit("error: bench requires --fastpath (exact vs "
                         "two-tier pipeline comparison), --via-server "
                         "(warm daemon vs cold one-shot), or --batchsim "
                         "(scalar vs batched simulation core)")
    from .bench import compare_fastpath

    from .workloads import RESOURCE_SENSITIVE, full_suite

    if args.apps:
        abbrs = [a.upper() for a in args.apps]
        unknown = [a for a in abbrs if a not in BY_ABBR]
        if unknown:
            raise SystemExit(f"error: unknown app(s): {', '.join(unknown)}")
    elif args.suite == "sensitive":
        abbrs = [w.abbr for w in RESOURCE_SENSITIVE]
    else:
        abbrs = [w.abbr for w in full_suite()]
    topk = args.fastpath_topk if args.fastpath_topk else 1
    comparison = compare_fastpath(
        abbrs,
        config_name=args.config,
        top_k=topk,
        refine=not args.no_refine,
        jobs=args.jobs if args.jobs else None,
        verify=args.verify,
    )
    print(comparison.table())
    if getattr(args, "report_json", ""):
        with open(args.report_json, "w") as handle:
            json.dump(comparison.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.report_json}", file=sys.stderr)
    return 0 if not comparison.mismatches or args.no_refine else 1


def cmd_suite(args) -> int:
    # ``bench.evaluate_app`` is resolved at call time through the
    # package attribute so tests can monkeypatch the driver.
    from . import bench
    from .bench import format_table, geomean, run_suite, write_report_json

    from .workloads import RESOURCE_SENSITIVE

    if getattr(args, "lint", False):
        for w in RESOURCE_SENSITIVE:
            _lint_gate(load_workload(w.abbr).kernel, args.config)

    engine = _engine_for(args)

    def progress(abbr, failure):
        note = f"FAILED ({failure.kind})" if failure else "done"
        print(f"  {abbr} {note}", file=sys.stderr)

    # Only forward non-default knobs: tests monkeypatch two-argument
    # drivers in place of ``evaluate_app``.
    extra = {}
    if args.verify:
        extra["verify"] = True
    if args.passes:
        extra["passes"] = args.passes
    report = run_suite(
        [w.abbr for w in RESOURCE_SENSITIVE],
        config_name=args.config,
        evaluate=lambda abbr, config: (
            bench.evaluate_app(abbr, config, **extra)
            if extra
            else bench.evaluate_app(abbr, config)
        ),
        on_app=progress,
    )
    rows = []
    for app in RESOURCE_SENSITIVE:
        ev = report.evaluations.get(app.abbr)
        if ev is None:
            continue
        rows.append(
            (app.abbr, f"{ev.speedup('maxtlp'):.3f}", "1.000",
             f"{ev.speedup('crat-local'):.3f}", f"{ev.speedup('crat'):.3f}")
        )
    print(format_table(
        ["app", "MaxTLP", "OptTLP", "CRAT-local", "CRAT"], rows,
        title=f"CRAT suite results ({args.config})",
    ))
    if rows:
        crat_gm = geomean([float(r[4]) for r in rows])
        print(f"\nCRAT geomean speedup vs OptTLP: {crat_gm:.3f}")
    else:
        print("\nCRAT geomean speedup vs OptTLP: n/a (no app completed)")
    for failure in report.failures:
        print(f"repro: suite: {failure.abbr} failed [{failure.kind}]: "
              f"{failure.message}", file=sys.stderr)
    print(f"engine ({engine.jobs} job{'s' if engine.jobs != 1 else ''}): "
          f"{engine.stats.summary()}")
    _write_trace_json(args)
    if getattr(args, "report_json", ""):
        try:
            write_report_json(report, args.report_json)
        except OSError as err:
            raise SystemExit(f"error: cannot write suite report: {err}")
        print(f"suite report written to {args.report_json}", file=sys.stderr)
    return report.exit_code


def _parse_listen(value: str):
    """``HOST:PORT`` -> (host, port) with a readable error."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"error: --listen expects HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"error: invalid port in --listen: {port_text!r}")
    return host, port


def cmd_serve(args) -> int:
    from .engine.cache import resolve_max_entries
    from .service import serve_main

    host = port = None
    if args.listen:
        host, port = _parse_listen(args.listen)
    # A long-lived daemon bounds its in-memory result cache by default
    # (REPRO_CACHE_MAX_ENTRIES or --cache-max-entries override; 0
    # restores the CLI's unbounded behavior).
    bound = args.cache_max_entries
    if bound is None:
        bound = resolve_max_entries(None) or 4096
    configure_engine(
        jobs=args.jobs if args.jobs else None,
        fastpath_topk=args.fastpath_topk,
        fastpath_refine=False if args.no_refine else None,
        task_timeout=args.task_timeout,
        cache_max_entries=bound,
        passes=args.passes,
        batch=args.batch,
        costmodel=getattr(args, "costmodel", None),
        telemetry_dir=getattr(args, "telemetry_dir", None),
    )
    # Daemon-wide default pipeline; per-request "passes" params
    # override it (and re-key the single-flight signature).
    from .service import jobs as service_jobs

    service_jobs.set_default_passes(args.passes)
    if args.shards > 1:
        if args.listen:
            raise SystemExit(
                "error: --shards needs unix sockets; --listen is "
                "single-daemon only"
            )
        from .service import default_socket_path
        from .service.fleet import fleet_main

        return fleet_main(
            socket_path=args.socket or default_socket_path(),
            shards=args.shards,
            state_dir=args.state_dir or None,
            workers_per_shard=args.workers,
            queue_limit=args.queue_limit,
            jobs_per_shard=args.jobs or 0,
            passes=args.passes,
            heartbeat_interval=args.heartbeat_interval,
            replication_interval=args.replication_interval,
        )
    return serve_main(
        socket_path=args.socket or None,
        host=host,
        port=port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        log_interval=args.log_interval,
        costmodel_path=getattr(args, "costmodel", None) or None,
    )


def _submit_params(args) -> dict:
    """Build the job's params from the CLI surface, resolving FILE
    targets to inline PTX (the daemon never reads client paths)."""
    params: dict = {}
    if args.job in ("crat", "simulate", "verify"):
        if args.target is None:
            raise SystemExit(f"error: submit {args.job} requires a target")
        if args.target.upper() in BY_ABBR:
            params["target"] = args.target.upper()
        else:
            try:
                with open(args.target) as handle:
                    params["ptx"] = handle.read()
            except OSError as err:
                raise SystemExit(
                    f"error: {args.target!r} is neither a known app "
                    f"({', '.join(sorted(BY_ABBR))}) nor a readable "
                    f"file: {err}"
                )
    if args.config != "fermi":
        params["config"] = args.config
    if args.job == "crat":
        if args.static:
            params["static"] = True
        if args.no_shm_spill:
            params["no_shm_spill"] = True
        if args.verify:
            params["verify"] = True
    elif args.job == "simulate":
        params["tlp"] = args.tlp
        if args.grid:
            params["grid"] = args.grid
    elif args.job == "suite":
        if args.apps:
            params["apps"] = [a.upper() for a in args.apps]
        if args.verify:
            params["verify"] = True
    elif args.job == "reload-model":
        if getattr(args, "model", ""):
            params["path"] = args.model
    if args.job in ("crat", "simulate", "suite") and args.passes:
        params["passes"] = args.passes
    return params


def _render_submit_result(job: str, result: dict) -> None:
    if job == "crat":
        print(f"OptTLP ({result['opt_tlp_source']}): {result['opt_tlp']}")
        print("candidates:")
        chosen = result["chosen"]
        for cand in result["candidates"]:
            mark = (
                "  <== chosen"
                if (cand["reg"], cand["tlp"]) == (chosen["reg"], chosen["tlp"])
                else ""
            )
            print(f"  (reg={cand['reg']}, TLP={cand['tlp']}) "
                  f"TPSC={cand['tpsc']:.1f}{mark}")
        print(f"speedup vs OptTLP: {result['speedup_vs_opttlp']:.2f}X")
        print(f"speedup vs MaxTLP: {result['speedup_vs_maxtlp']:.2f}X")
    elif job == "simulate":
        print(f"cycles:        {result['cycles']:.0f}")
        print(f"instructions:  {result['instructions']}")
        print(f"IPC:           {result['ipc']:.3f}")
        print(f"L1 hit rate:   {result['l1_hit_rate']:.1%}")
        print(f"MSHR stalls:   {result['mshr_stall_cycles']:.0f} cycles")
        print(f"local insts:   {result['local_insts']}")
        print(f"DRAM traffic:  {result['dram_bytes'] >> 10} KiB")
        print(f"energy:        {result['energy_nj'] / 1e3:.1f} uJ")
    else:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))


def cmd_submit(args) -> int:
    import json

    from .service import ServiceClient, submit_or_raise

    host = port = None
    if args.connect:
        host, port = _parse_listen(args.connect)
    params = _submit_params(args)
    with ServiceClient(
        socket_path=args.socket or None,
        host=host,
        port=port,
        max_retries=args.retries,
    ) as client:
        if args.job == "stats":
            result = client.stats()
        else:
            result = submit_or_raise(
                client,
                args.job,
                params,
                deadline=args.deadline,
                priority=args.priority,
            )
    if args.json or args.job in ("verify", "suite", "stats", "reload-model"):
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _render_submit_result(args.job, result)
    if args.job == "verify" and not result.get("passed", True):
        from .errors import EXIT_VERIFY

        return EXIT_VERIFY
    return 0


def cmd_fleet(args) -> int:
    import json

    from .service import ServiceClient, unwrap

    with ServiceClient(
        socket_path=args.socket or None, max_retries=args.retries
    ) as client:
        payload = unwrap(client.submit("health"))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    fleet = payload.get("fleet")
    shards = payload.get("shards")
    if not isinstance(fleet, dict) or not isinstance(shards, dict):
        # A single (non-fleet) daemon also answers health; render it.
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    live = fleet.get("live") or []
    print(f"fleet on {fleet.get('socket')}: "
          f"{len(live)}/{fleet.get('shards')} shards live"
          f"{'  [DRAINING]' if fleet.get('draining') else ''}")
    print(f"  dispatches: accepted={fleet.get('accepted')} "
          f"completed={fleet.get('completed')} "
          f"rerouted={fleet.get('rerouted')} "
          f"expired={fleet.get('expired')} drained={fleet.get('drained')}")
    print(f"  supervision: spawns={fleet.get('spawns')} "
          f"restarts={fleet.get('restarts')} "
          f"heartbeat_misses={fleet.get('heartbeat_misses')} "
          f"handoffs={fleet.get('handoffs')}")
    conservation = fleet.get("conservation_ok")
    print(f"  conservation (accepted == completed+expired+drained"
          f"+rerouted): {'OK' if conservation else 'VIOLATED'}")
    for sid in sorted(shards):
        status = shards[sid] or {}
        health = status.get("health") or {}
        recovery = status.get("max_recovery_seconds")
        print(f"  {sid}: {status.get('state'):8s} pid={status.get('pid')} "
              f"epoch={status.get('epoch')} "
              f"restarts={status.get('restarts')} "
              f"misses={status.get('heartbeat_misses')} "
              f"max_recovery={recovery if recovery else 0:.2f}s "
              f"completed={health.get('completed', '?')} "
              f"checkpoint_hits={health.get('checkpoint_hits', '?')}")
    if conservation is False:
        from .errors import EXIT_SERVICE

        return EXIT_SERVICE
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="resource usage analysis")
    p_info.add_argument("target")
    p_info.add_argument("--config", default="fermi")
    p_info.set_defaults(func=cmd_info)

    def add_verify_flag(p):
        p.add_argument("--verify", action="store_true",
                       help="translation-validate every pipeline stage "
                            "(dataflow rules on inputs, independent "
                            "recheck of each allocation); findings are "
                            "hard errors (exit 6)")

    p_alloc = sub.add_parser("allocate", help="register-allocate a kernel")
    p_alloc.add_argument("target")
    p_alloc.add_argument("--reg", type=int, default=0,
                         help="register limit in slots (default: demand)")
    p_alloc.add_argument("--spare-shm", type=int, default=0,
                         help="shared-memory budget for Algorithm 1")
    add_verify_flag(p_alloc)
    p_alloc.set_defaults(func=cmd_allocate)

    p_verify = sub.add_parser(
        "verify", help="lint a kernel with the verification rules"
    )
    p_verify.add_argument("target")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the diagnostic report as JSON")
    p_verify.add_argument("--pipeline", action="store_true",
                          help="also run the transform passes under "
                               "effect-preservation checking (PL rules)")
    p_verify.add_argument("--strict", action="store_true",
                          help="treat warnings as errors (exit 6)")
    p_verify.set_defaults(func=cmd_verify)

    p_lint = sub.add_parser(
        "lint", help="static-analysis lint (pressure, memory, "
                     "divergence, hygiene; stable LNT rule codes)"
    )
    p_lint.add_argument("target")
    p_lint.add_argument("--config", default="fermi")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the diagnostic report as JSON")
    p_lint.add_argument("--sarif", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="write a SARIF 2.1.0 report to PATH "
                             "(or stdout when no path is given)")
    p_lint.add_argument("--rules", default="", metavar="LNT2,LNT101,...",
                        help="restrict findings to these rule codes or "
                             "code prefixes (comma-separated; unknown "
                             "names exit 2)")
    p_lint.add_argument("--fail-on", choices=["error", "warn", "never"],
                        default="error",
                        help="finding severity that fails the run with "
                             "exit 8 (default: error)")
    p_lint.add_argument("--features-json", default="", metavar="PATH",
                        help="write the versioned static feature vector "
                             "(tier-0 cost-model input) to PATH")
    p_lint.set_defaults(func=cmd_lint)

    def add_lint_flag(p):
        p.add_argument("--lint", action="store_true",
                       help="run the static-analysis lint first: "
                            "warnings are advisory (stderr), "
                            "error-severity findings abort with exit 8")

    def add_passes_flag(p):
        p.add_argument("--passes", default="", metavar="P1,P2,...",
                       help="pre-allocation optimization pipeline to run "
                            "over the kernel (comma-separated pass names; "
                            "see repro.ir: copy-prop, dce, bypass, "
                            "mlp-sched, minreg-sched, unroll; default: "
                            "none — the kernel is evaluated as written; "
                            "unknown names exit 2)")

    def add_engine_flags(p, trace=True, fastpath=False):
        p.add_argument("--jobs", type=int, default=0,
                       help="simulation worker processes "
                            "(default: $REPRO_JOBS or serial)")
        p.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per simulation task before "
                            "the supervisor abandons and retries it "
                            "(0 disables; default: $REPRO_TASK_TIMEOUT)")
        p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="evaluate multi-point sweeps through the "
                            "batched SoA simulation core (bit-identical "
                            "to the scalar simulator; default: on — "
                            "--no-batch forces point-by-point supervised "
                            "simulation)")
        if trace:
            p.add_argument("--trace-json", default="",
                           help="dump engine instrumentation (timings, "
                                "cache counters) as JSON to this path")
        if fastpath:
            p.add_argument("--fastpath-topk", type=int, default=None,
                           metavar="K",
                           help="screen TLP sweeps analytically and "
                                "simulate only the top-K survivors "
                                "(0 or unset: exact exhaustive profiling)")
            p.add_argument("--no-refine", action="store_true",
                           help="skip the bracket-refinement walk "
                                "(screen-only fast path: fewer "
                                "simulations, approximate winner)")

    def add_costmodel_flags(p):
        p.add_argument("--costmodel", default=None, metavar="MODEL",
                       help="install a trained tier-0 cost model "
                            "artifact on the engine: a healthy model "
                            "shrinks the fast path's survivor budget; "
                            "drift demotes it back to the analytical "
                            "screen ('' clears)")
        p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                       help="append one training record per fresh "
                            "simulation to DIR/telemetry.ndjsonl "
                            "(harvested by repro corpus export "
                            "--journal; default: $REPRO_TELEMETRY_DIR)")

    p_sim = sub.add_parser("simulate", help="run the timing simulator")
    p_sim.add_argument("target")
    p_sim.add_argument("--tlp", type=int, default=4)
    p_sim.add_argument("--grid", type=int, default=0)
    p_sim.add_argument("--config", default="fermi")
    add_engine_flags(p_sim, trace=False)
    add_verify_flag(p_sim)
    add_passes_flag(p_sim)
    add_lint_flag(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_crat = sub.add_parser("crat", help="run the CRAT optimizer")
    p_crat.add_argument("target")
    p_crat.add_argument("--config", default="fermi")
    p_crat.add_argument("--static", action="store_true",
                        help="estimate OptTLP statically (CRAT-static)")
    p_crat.add_argument("--no-shm-spill", action="store_true",
                        help="disable Algorithm 1 (CRAT-local)")
    p_crat.add_argument("--emit", default="",
                        help="write optimized PTX to this path")
    add_engine_flags(p_crat, fastpath=True)
    add_costmodel_flags(p_crat)
    add_verify_flag(p_crat)
    add_passes_flag(p_crat)
    add_lint_flag(p_crat)
    p_crat.set_defaults(func=cmd_crat)

    p_suite = sub.add_parser("suite", help="Fig 13 table on the sensitive suite")
    p_suite.add_argument("--config", default="fermi")
    p_suite.add_argument("--report-json", default="",
                         help="write the structured per-app failure report "
                              "(completed/failed apps, exit code) to this "
                              "path")
    add_engine_flags(p_suite, fastpath=True)
    add_costmodel_flags(p_suite)
    add_verify_flag(p_suite)
    add_passes_flag(p_suite)
    add_lint_flag(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser(
        "bench", help="pipeline benchmarking (--fastpath: exact vs "
                      "two-tier; --via-server: warm daemon vs cold)"
    )
    p_bench.add_argument("--fastpath", action="store_true",
                         help="compare the exact pipeline against the "
                              "two-tier fast path on every app")
    p_bench.add_argument("--via-server", action="store_true",
                         help="measure a repeated crat workload against "
                              "a warm in-process daemon vs cold one-shot "
                              "engines")
    p_bench.add_argument("--batchsim", action="store_true",
                         help="compare the scalar simulator against the "
                              "batched SoA core on every app's TLP "
                              "staircase (asserts bit-identity)")
    p_bench.add_argument("--costmodel", action="store_true",
                         help="compare exact vs analytical vs learned "
                              "tier-0 pipelines on every app (requires "
                              "--model; appends to BENCH_costmodel.json)")
    p_bench.add_argument("--model", default="", metavar="PATH",
                         help="trained model artifact for --costmodel "
                              "(see repro model train)")
    p_bench.add_argument("--report-json", default="", metavar="PATH",
                         help="write the structured per-app comparison "
                              "(rank-agreement rows included) to this "
                              "path (--fastpath and --costmodel)")
    p_bench.add_argument("--repeats", type=int, default=1,
                         help="best-of-N timing repeats for --batchsim "
                              "(default 1)")
    p_bench.add_argument("--record", default="", metavar="PATH",
                         help="append the --batchsim run record to this "
                              "JSON ledger (e.g. BENCH_batchsim.json)")
    p_bench.add_argument("--requests", type=int, default=10,
                         help="request count for --via-server "
                              "(default 10)")
    p_bench.add_argument("--suite", choices=("sensitive", "full"),
                         default="full",
                         help="which app suite to compare (default: full)")
    p_bench.add_argument("--apps", nargs="+", default=[],
                         help="explicit app abbreviations (overrides --suite)")
    p_bench.add_argument("--config", default="fermi")
    add_engine_flags(p_bench, trace=False, fastpath=True)
    add_verify_flag(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_corpus = sub.add_parser(
        "corpus", help="build/inspect the tier-0 training corpus "
                       "(versioned NDJSON of features -> cycles)"
    )
    corpus_sub = p_corpus.add_subparsers(dest="action", required=True)
    p_cexport = corpus_sub.add_parser(
        "export", help="harvest records from app sweeps and/or "
                       "telemetry journals into a deduplicated corpus"
    )
    p_cexport.add_argument("--apps", nargs="+", default=[],
                           help="app abbreviations to sweep exhaustively")
    p_cexport.add_argument("--all", action="store_true",
                           help="sweep the full 22-app suite")
    p_cexport.add_argument("--journal", nargs="+", default=[],
                           metavar="DIR",
                           help="telemetry journal directories to "
                                "harvest (engine/service/fleet "
                                "--telemetry-dir output)")
    p_cexport.add_argument("--schedulers", nargs="+", default=["gto"],
                           choices=("gto", "lrr"),
                           help="warp schedulers to sweep (default gto)")
    p_cexport.add_argument("--config", default="fermi")
    p_cexport.add_argument("--out", default="corpus.ndjsonl",
                           help="output corpus path "
                                "(default corpus.ndjsonl)")
    add_engine_flags(p_cexport, trace=False)
    p_cexport.set_defaults(func=cmd_corpus)
    p_cstats = corpus_sub.add_parser(
        "stats", help="print a JSON summary of a corpus file"
    )
    p_cstats.add_argument("corpus", help="corpus NDJSON path")
    p_cstats.set_defaults(func=cmd_corpus)

    p_model = sub.add_parser(
        "model", help="train/inspect the learned tier-0 cost model"
    )
    model_sub = p_model.add_subparsers(dest="action", required=True)
    p_mtrain = model_sub.add_parser(
        "train", help="fit the deterministic ridge surrogate with "
                      "per-app holdout metrics"
    )
    p_mtrain.add_argument("corpus", help="training corpus NDJSON path")
    p_mtrain.add_argument("--out", default="model.json",
                          help="artifact output path (default model.json)")
    p_mtrain.add_argument("--lam", type=float, default=1.0,
                          help="ridge penalty (default 1.0)")
    p_mtrain.add_argument("--seed", type=int, default=0,
                          help="provenance seed recorded in the artifact "
                               "(the closed-form fit is deterministic "
                               "regardless)")
    p_mtrain.set_defaults(func=cmd_model)
    p_minfo = model_sub.add_parser(
        "info", help="print an artifact's provenance and metrics"
    )
    p_minfo.add_argument("model", help="model artifact path")
    p_minfo.set_defaults(func=cmd_model)

    p_serve = sub.add_parser(
        "serve", help="persistent compilation daemon (NDJSON over a "
                      "unix socket; --listen for TCP)"
    )
    p_serve.add_argument("--socket", default="",
                         help="unix socket path (default: $REPRO_SOCKET "
                              "or a per-user path under the temp dir)")
    p_serve.add_argument("--listen", default="", metavar="HOST:PORT",
                         help="serve TCP instead of a unix socket")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="job worker threads (each still fans "
                              "simulations out over the engine's "
                              "process pool; default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="bounded queue depth before requests are "
                              "refused with an overloaded reply "
                              "(default 64)")
    p_serve.add_argument("--cache-max-entries", type=int, default=None,
                         metavar="N",
                         help="LRU bound on the in-memory result cache "
                              "(default: $REPRO_CACHE_MAX_ENTRIES or "
                              "4096; 0 unbounds it)")
    p_serve.add_argument("--log-interval", type=float, default=30.0,
                         metavar="SECONDS",
                         help="period of the structured stats log lines "
                              "on stderr (0 disables; default 30)")
    p_serve.add_argument("--shards", type=int, default=1, metavar="N",
                         help="run a self-healing fleet of N supervised "
                              "engine shards behind one router socket "
                              "(default 1 = the single daemon)")
    p_serve.add_argument("--state-dir", default="",
                         help="fleet state root (shard checkpoints + "
                              "replicas; default: <socket>.fleet)")
    p_serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="fleet: per-shard health-check period "
                              "(default 1.0)")
    p_serve.add_argument("--replication-interval", type=float, default=5.0,
                         metavar="SECONDS",
                         help="fleet: warm-state handoff period; each "
                              "round ships every shard's checkpoint "
                              "journal to its ring successor (default "
                              "5.0; 0 disables)")
    add_engine_flags(p_serve, trace=False, fastpath=True)
    add_costmodel_flags(p_serve)
    add_passes_flag(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="send one job to a running repro serve daemon"
    )
    p_submit.add_argument("job",
                          choices=("crat", "simulate", "verify", "suite",
                                   "stats", "reload-model"),
                          help="job type")
    p_submit.add_argument("target", nargs="?", default=None,
                          help="APP abbreviation or PTX file (sent "
                               "inline); required for kernel jobs")
    p_submit.add_argument("--config", default="fermi")
    p_submit.add_argument("--socket", default="",
                          help="daemon's unix socket (default: "
                               "$REPRO_SOCKET or the per-user default)")
    p_submit.add_argument("--connect", default="", metavar="HOST:PORT",
                          help="connect over TCP instead")
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="give up if the service has not answered "
                               "within this budget")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="queue priority (higher runs earlier)")
    p_submit.add_argument("--max-retries", "--retries", dest="retries",
                          type=int, default=5,
                          help="retry budget for overloaded/unreachable "
                               "replies; exhausting it exits 7 "
                               "(default 5; --retries is an alias)")
    p_submit.add_argument("--json", action="store_true",
                          help="print the raw result payload as JSON")
    p_submit.add_argument("--tlp", type=int, default=4,
                          help="simulate: thread-level parallelism")
    p_submit.add_argument("--grid", type=int, default=0,
                          help="simulate: grid blocks override")
    p_submit.add_argument("--static", action="store_true",
                          help="crat: static OptTLP estimate")
    p_submit.add_argument("--no-shm-spill", action="store_true",
                          help="crat: disable Algorithm 1 (CRAT-local)")
    p_submit.add_argument("--apps", nargs="+", default=[],
                          help="suite: explicit app list")
    p_submit.add_argument("--verify", action="store_true",
                          help="crat/suite: translation-validate")
    p_submit.add_argument("--model", default="",
                          help="reload-model: artifact path on the "
                               "daemon's filesystem (default: the path "
                               "the daemon booted with)")
    add_passes_flag(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_fleet = sub.add_parser(
        "fleet", help="inspect a running sharded fleet"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fstatus = fleet_sub.add_parser(
        "status", help="shard liveness, dispatch counters and the "
                       "conservation check (exit 7 if violated)"
    )
    p_fstatus.add_argument("--socket", default="",
                           help="router's unix socket (default: "
                                "$REPRO_SOCKET or the per-user default)")
    p_fstatus.add_argument("--max-retries", dest="retries", type=int,
                           default=2,
                           help="connection retry budget (default 2)")
    p_fstatus.add_argument("--json", action="store_true",
                           help="print the raw health payload as JSON")
    p_fstatus.set_defaults(func=cmd_fleet)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"repro: error: {err}", file=sys.stderr)
        return err.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
