"""CRAT: coordinated register allocation and TLP optimization.

The paper's primary contribution: resource-usage collection (Table 1),
design-space pruning (Section 4), the TPSC prediction model (Section
6), the thread-throttling baselines, and the orchestrating optimizer.
"""

from .crat import CRATOptimizer, CRATResult
from .design_space import DesignPoint, enumerate_space, prune
from .params import NVCC_DEFAULT_REG_CAP, ResourceUsage, collect_resource_usage
from .throttling import (
    BaselineResult,
    default_allocation,
    opt_tlp_from_profile,
    profile_tlp,
    run_baselines,
)
from .tpsc import ScoredPoint, score, select_best, spill_cost, tlp_gain

__all__ = [
    "BaselineResult",
    "CRATOptimizer",
    "CRATResult",
    "DesignPoint",
    "NVCC_DEFAULT_REG_CAP",
    "ResourceUsage",
    "ScoredPoint",
    "collect_resource_usage",
    "default_allocation",
    "enumerate_space",
    "opt_tlp_from_profile",
    "profile_tlp",
    "prune",
    "run_baselines",
    "score",
    "select_best",
    "spill_cost",
    "tlp_gain",
]
