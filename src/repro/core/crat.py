"""The CRAT optimizer: coordinated register allocation + TLP (Figure 9).

Pipeline per kernel:

1. collect resource usage (Table 1),
2. obtain OptTLP — by profiling every TLP (paper's default) or by the
   static GTO analysis (*CRAT-static*, Section 7.6),
3. prune the (reg, TLP) staircase to a few candidates (Section 4.2),
4. register-allocate each candidate, spilling to spare shared memory
   when profitable (Algorithm 1; disabled for *CRAT-local*),
5. rank candidates with the TPSC model (Section 6) and pick the best,
6. simulate the winner for evaluation.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from ..analysis.gto_model import estimate_opt_tlp
from ..arch.config import GPUConfig
from ..arch.latency import measure_costs
from ..arch.occupancy import compute_occupancy, spare_shm_per_block
from ..engine import EvaluationEngine, FastPathPolicy, get_engine
from ..errors import classify_error
from ..ir.pipeline import pipeline_signature, run_pipeline
from ..ptx.module import Kernel
from ..regalloc.allocator import InsufficientRegistersError, allocate
from ..sim.stats import SimResult
from .design_space import DesignPoint, prune
from .params import ResourceUsage, collect_resource_usage
from .throttling import BaselineResult, opt_tlp_from_profile, run_baselines
from .tpsc import ScoredPoint, score, select_best


@dataclasses.dataclass
class CRATResult:
    """Everything the evaluation needs about one optimized kernel."""

    usage: ResourceUsage
    opt_tlp: int
    opt_tlp_source: str
    candidates: List[ScoredPoint]
    chosen: ScoredPoint
    sim: SimResult
    baselines: Dict[str, BaselineResult]
    variant: str
    opt_tlp_seconds: float
    search_seconds: float

    @property
    def reg(self) -> int:
        return self.chosen.point.reg

    @property
    def tlp(self) -> int:
        return self.chosen.point.tlp

    def speedup_vs(self, scheme: str) -> float:
        """Cycles(baseline) / cycles(CRAT) — >1 means CRAT is faster."""
        base = self.baselines[scheme].sim.cycles
        if not self.sim.cycles:
            raise ValueError(
                f"CRAT simulation of {self.chosen.point} recorded zero "
                "cycles; the speedup ratio is undefined (a kernel that "
                "executes at least one instruction always takes cycles)"
            )
        return base / self.sim.cycles


class CRATOptimizer:
    """Configurable CRAT pipeline.

    ``enable_shm_spill=False`` gives the paper's *CRAT-local* variant;
    ``opt_tlp_mode='static'`` gives *CRAT-static* (OptTLP from code
    analysis instead of profiling).  ``verify=True`` translation-
    validates the pipeline: the input kernel is dataflow-checked and
    every allocation the search evaluates — baselines and candidates
    alike — is independently rechecked by
    :func:`repro.verify.verify_allocation`; any finding raises
    :class:`repro.errors.VerificationError`.

    ``passes`` names an optimization pipeline (``--passes`` spec, e.g.
    ``"copy-prop,dce,minreg-sched"``) run over the input kernel before
    resource collection and allocation; with ``verify`` every
    individual rewrite is additionally translation-validated.  The spec
    is validated at construction (unknown names raise
    :class:`repro.errors.ParseError`), never at optimize time.
    """

    def __init__(
        self,
        config: GPUConfig,
        enable_shm_spill: bool = True,
        opt_tlp_mode: str = "profile",
        hit_ratio: float = 0.6,
        weighted_tpsc: bool = False,
        engine: Optional[EvaluationEngine] = None,
        fastpath: Optional[FastPathPolicy] = None,
        verify: bool = False,
        passes: str = "",
    ):
        if opt_tlp_mode not in ("profile", "static"):
            raise ValueError("opt_tlp_mode must be 'profile' or 'static'")
        self.passes = pipeline_signature(passes)
        self.config = config
        self.enable_shm_spill = enable_shm_spill
        self.opt_tlp_mode = opt_tlp_mode
        self.hit_ratio = hit_ratio
        self.weighted_tpsc = weighted_tpsc
        self.verify = verify
        #: ``None`` resolves to the process-wide shared engine at use
        #: time, so ``repro.engine.configure()`` affects optimizers
        #: constructed earlier.
        self._engine = engine
        #: Tier-1 screening policy for the profiling sweep; ``None``
        #: defers to the engine's policy (itself exact by default).
        self.fastpath = fastpath

    @property
    def engine(self) -> EvaluationEngine:
        return self._engine or get_engine()

    # ------------------------------------------------------------------
    def optimize(
        self,
        kernel: Kernel,
        default_reg: Optional[int] = None,
        grid_blocks: Optional[int] = None,
        param_sizes: Optional[Dict[str, int]] = None,
        baselines: Optional[Dict[str, BaselineResult]] = None,
    ) -> CRATResult:
        """Run the full pipeline on one kernel.

        Failures anywhere in the pipeline surface as the structured
        :mod:`repro.errors` taxonomy with the kernel name attached, so
        suite-level callers can isolate and report the app without
        losing the classification.
        """
        try:
            return self._optimize(
                kernel,
                default_reg=default_reg,
                grid_blocks=grid_blocks,
                param_sizes=param_sizes,
                baselines=baselines,
            )
        except Exception as err:
            raise classify_error(err, kernel=kernel.name)

    def _optimize(
        self,
        kernel: Kernel,
        default_reg: Optional[int] = None,
        grid_blocks: Optional[int] = None,
        param_sizes: Optional[Dict[str, int]] = None,
        baselines: Optional[Dict[str, BaselineResult]] = None,
    ) -> CRATResult:
        config = self.config
        if grid_blocks is None:
            grid_blocks = 2 * config.max_blocks_per_sm
        if self.verify:
            from ..verify import lint_kernel

            lint_kernel(kernel, stage="input").raise_if_errors()
        engine = self.engine
        if self.passes:
            with engine.stage("passes"):
                kernel = run_pipeline(
                    kernel, self.passes, verify=self.verify
                ).kernel
        usage = collect_resource_usage(kernel, config, default_reg=default_reg)
        # Baselines are also the profiling source for OptTLP.
        t0 = time.perf_counter()
        if baselines is None:
            with engine.stage("baselines"):
                baselines = run_baselines(
                    kernel, config, usage, grid_blocks, param_sizes,
                    engine=engine, fastpath=self.fastpath,
                )
        for scheme, baseline in baselines.items():
            self._maybe_verify(baseline.allocation, f"baseline:{scheme}")
        if self.opt_tlp_mode == "profile":
            # Pruning ceiling: the contention optimum over the whole
            # achievable TLP range, not just what the default
            # allocation can reach (see run_baselines).
            opt_tlp = opt_tlp_from_profile(baselines["opttlp"].profile)
            opt_tlp_seconds = time.perf_counter() - t0
        else:
            t_static = time.perf_counter()
            ceiling = compute_occupancy(
                config,
                min(usage.min_reg, usage.default_reg),
                usage.shm_size,
                usage.block_size,
            ).blocks
            estimate = estimate_opt_tlp(
                baselines["opttlp"].allocation.kernel,
                config,
                max(ceiling, usage.max_tlp),
                hit_ratio=self.hit_ratio,
            )
            opt_tlp = estimate.opt_tlp
            opt_tlp_seconds = time.perf_counter() - t_static

        t1 = time.perf_counter()
        candidates = prune(config, usage, opt_tlp)
        costs = measure_costs(config)
        scored: List[ScoredPoint] = []
        for point in candidates:
            allocation = self._allocate_point(kernel, usage, point)
            if allocation is None:
                continue
            scored.append(
                score(
                    point,
                    allocation,
                    config,
                    usage.block_size,
                    costs=costs,
                    weighted=self.weighted_tpsc,
                )
            )
        if not scored:
            # Degenerate kernels (no register pressure range): fall back
            # to the throttling point with the default allocation.
            fallback = DesignPoint(reg=usage.default_reg, tlp=opt_tlp)
            scored = [
                score(
                    fallback,
                    baselines["opttlp"].allocation,
                    config,
                    usage.block_size,
                    costs=costs,
                    weighted=self.weighted_tpsc,
                )
            ]
        chosen = select_best(scored)
        search_seconds = time.perf_counter() - t1
        engine.record_stage("opt_tlp", opt_tlp_seconds)
        engine.record_stage("search", search_seconds)

        with engine.stage("winner_sim"):
            sim = engine.simulate(
                chosen.allocation.kernel,
                config,
                chosen.point.tlp,
                grid_blocks,
                param_sizes,
            )
        return CRATResult(
            usage=usage,
            opt_tlp=opt_tlp,
            opt_tlp_source=self.opt_tlp_mode,
            candidates=scored,
            chosen=chosen,
            sim=sim,
            baselines=baselines,
            variant="crat" if self.enable_shm_spill else "crat-local",
            opt_tlp_seconds=opt_tlp_seconds,
            search_seconds=search_seconds,
        )

    # ------------------------------------------------------------------
    def _allocate_point(
        self, kernel: Kernel, usage: ResourceUsage, point: DesignPoint
    ):
        """Allocate one candidate; returns None if it turns out infeasible."""
        spare = 0
        if self.enable_shm_spill:
            spare = spare_shm_per_block(self.config, usage.shm_size, point.tlp)
        try:
            allocation = allocate(
                kernel,
                point.reg,
                spare_shm_bytes=spare,
                enable_shm_spill=self.enable_shm_spill,
            )
        except InsufficientRegistersError:
            return None
        # Verify before the feasibility cut: an infeasible-but-miscompiled
        # candidate must still be reported, not silently discarded.
        self._maybe_verify(allocation, f"candidate:reg={point.reg}")
        # The allocation must actually sustain the candidate TLP once
        # its own shared-memory spill stack is accounted for.
        total_shm = usage.shm_size + allocation.shm_spill_block_bytes
        occ = compute_occupancy(
            self.config,
            allocation.reg_per_thread,
            total_shm,
            usage.block_size,
        )
        if occ.blocks < point.tlp:
            return None
        return allocation

    def _maybe_verify(self, allocation, stage: str) -> None:
        """Recheck one allocation when ``verify`` is on (else a no-op)."""
        if not self.verify or allocation is None:
            return
        from ..verify import verify_allocation

        verify_allocation(allocation, stage=stage).raise_if_errors()
