"""Design-space enumeration and pruning (paper Section 4.2).

The space ``C = {(reg, TLP) | MinReg <= reg <= MaxReg, 1 <= TLP <=
MaxTLP}`` forms a staircase (Figure 11): raising reg/thread keeps the
TLP until a block no longer fits, then the TLP drops a stair.  Two
pruning rules shrink it to a handful of candidates:

1. **Rightmost point per stair** — with equal TLP, more registers per
   thread is never worse, so only the largest reg sustaining each TLP
   survives.
2. **OptTLP ceiling** — points with ``TLP > OptTLP`` thrash the L1 and
   are discarded.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..arch.config import GPUConfig
from ..arch.occupancy import compute_occupancy, max_reg_at_tlp
from .params import ResourceUsage


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One ``(reg, TLP)`` candidate."""

    reg: int
    tlp: int

    def __str__(self) -> str:
        return f"(reg={self.reg}, TLP={self.tlp})"


def enumerate_space(
    config: GPUConfig, usage: ResourceUsage
) -> List[DesignPoint]:
    """The full (unpruned) staircase: every feasible (reg, TLP) pair.

    Used by the exhaustive-search ablation; real runs call
    :func:`prune` instead.
    """
    points = []
    lo = min(usage.min_reg, usage.max_reg)
    hi = min(usage.max_reg, config.max_reg_per_thread)
    for reg in range(lo, hi + 1):
        try:
            occ = compute_occupancy(
                config, reg, usage.shm_size, usage.block_size
            )
        except ValueError:
            continue
        for tlp in range(1, occ.blocks + 1):
            points.append(DesignPoint(reg=reg, tlp=tlp))
    return points


def prune(
    config: GPUConfig,
    usage: ResourceUsage,
    opt_tlp: int,
) -> List[DesignPoint]:
    """Apply both pruning rules; returns candidates sorted by TLP desc.

    For every TLP from 1 to ``min(OptTLP, MaxTLP achievable)``, keep the
    rightmost stair point: the largest reg/thread that still sustains
    that TLP, clamped to ``MaxReg`` (more registers than the kernel can
    use buy nothing).  When the clamp makes several TLPs share the same
    reg, only the highest TLP survives (same single-thread performance,
    more parallelism).
    """
    if opt_tlp <= 0:
        raise ValueError("opt_tlp must be positive")
    ceiling = compute_occupancy(
        config, 0, usage.shm_size, usage.block_size
    ).blocks
    top_tlp = min(opt_tlp, ceiling)

    by_reg = {}
    for tlp in range(1, top_tlp + 1):
        reg = max_reg_at_tlp(config, tlp, usage.shm_size, usage.block_size)
        reg = min(reg, usage.max_reg, config.max_reg_per_thread)
        if reg < min(usage.min_reg, usage.max_reg):
            continue  # cannot even hold the architectural floor
        # Highest TLP wins for a shared reg value.
        if reg not in by_reg or by_reg[reg] < tlp:
            by_reg[reg] = tlp
    candidates = [DesignPoint(reg=r, tlp=t) for r, t in by_reg.items()]
    candidates.sort(key=lambda p: (-p.tlp, -p.reg))
    return candidates
