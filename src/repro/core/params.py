"""Resource-usage analysis: the parameters of paper Table 1.

The design-space pruning component "collects the resource usage
parameters" (Section 4.1):

* ``MaxReg`` — registers/thread that hold every variable (dataflow
  analysis over the interference graphs);
* ``MinReg`` — ``NumRegister / MaxThreads``, the architecture floor
  below which fewer registers cannot buy more TLP;
* ``BlockSize``, ``MaxTLP``, ``OptTLP`` — thread-level parallelism;
* ``ShmSize`` — shared memory per thread block.
"""

from __future__ import annotations

import dataclasses

from ..arch.config import GPUConfig
from ..arch.occupancy import compute_occupancy
from ..ptx.module import Kernel
from ..regalloc.allocator import register_demand


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Collected resource parameters for one kernel (paper Table 1)."""

    kernel_name: str
    max_reg: int
    min_reg: int
    block_size: int
    shm_size: int
    max_tlp: int
    default_reg: int

    def reg_range(self):
        """The interesting register range ``[MinReg, MaxReg]``."""
        low = min(self.min_reg, self.max_reg)
        return range(low, self.max_reg + 1)


#: nvcc caps registers per thread (Fermi: 63); the "default register
#: allocation" of the MaxTLP/OptTLP baselines is the demand clipped to
#: this cap, mirroring how the toolchain compiles without -maxrregcount.
NVCC_DEFAULT_REG_CAP = 63


def collect_resource_usage(
    kernel: Kernel,
    config: GPUConfig,
    default_reg: int = None,
) -> ResourceUsage:
    """Analyze ``kernel`` and collect Table 1's parameters.

    ``default_reg`` overrides the modeled nvcc default (some workloads
    pin it to mimic a specific toolchain choice); otherwise it is the
    register demand clipped to the nvcc cap and floored at ``MinReg``.
    """
    max_reg = register_demand(kernel)
    min_reg = config.min_reg_per_thread
    if default_reg is None:
        default_reg = min(max_reg, NVCC_DEFAULT_REG_CAP)
        default_reg = max(default_reg, min(min_reg, max_reg))
    occupancy = compute_occupancy(
        config,
        reg_per_thread=default_reg,
        shm_per_block=kernel.shared_bytes(),
        block_size=kernel.block_size,
    )
    return ResourceUsage(
        kernel_name=kernel.name,
        max_reg=max_reg,
        min_reg=min_reg,
        block_size=kernel.block_size,
        shm_size=kernel.shared_bytes(),
        max_tlp=occupancy.blocks,
        default_reg=default_reg,
    )
