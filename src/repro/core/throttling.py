"""Baseline schemes: MaxTLP and OptTLP thread throttling (paper [3]).

``MaxTLP`` runs the default register allocation at the hardware's
maximum occupancy.  ``OptTLP`` keeps the default allocation but limits
the number of concurrent thread blocks to the profiled optimum —
"determined offline by exhaustively testing all the possible TLPs"
(Section 7.2).  Both are oblivious to register allocation, which is the
register waste CRAT recovers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..arch.config import GPUConfig
from ..engine import EvaluationEngine, FastPathPolicy, get_engine
from ..ptx.module import Kernel
from ..regalloc.allocator import AllocationResult, allocate
from ..sim.executor import BlockTrace
from ..sim.stats import SimResult
from .params import ResourceUsage, collect_resource_usage


@dataclasses.dataclass
class BaselineResult:
    """A baseline scheme's chosen point and its simulation."""

    scheme: str
    reg: int
    tlp: int
    allocation: AllocationResult
    sim: SimResult
    profile: Optional[Dict[int, SimResult]] = None


def default_allocation(
    kernel: Kernel, usage: ResourceUsage, spare_shm_bytes: int = 0
) -> AllocationResult:
    """The toolchain-default allocation: ``default_reg``, local spills only.

    The production compiler never spills to shared memory; CRAT
    introduces that (Section 5.3), so baselines disable it.
    """
    return allocate(
        kernel,
        usage.default_reg,
        spare_shm_bytes=spare_shm_bytes,
        enable_shm_spill=False,
    )


def profile_tlp(
    traces: List[BlockTrace],
    config: GPUConfig,
    max_tlp: int,
    engine: Optional[EvaluationEngine] = None,
) -> Dict[int, SimResult]:
    """Run every TLP in ``[1, MaxTLP]`` — the paper's profiling pass.

    This is the offline exhaustive search of [3]; its cost is what the
    static analysis of Section 4.1 avoids (see ``benchmarks/test_overhead``).
    The points are independent, so the engine fans them out across its
    worker pool (``REPRO_JOBS`` / ``--jobs``).  Trace-level entry: no
    kernel, no content key, so results are not cached — callers holding
    the kernel should prefer :meth:`EvaluationEngine.profile_tlp`.
    """
    if max_tlp <= 0:
        raise ValueError("max_tlp must be positive")
    engine = engine or get_engine()
    tlps = range(1, max_tlp + 1)
    return dict(zip(tlps, engine.simulate_traces_many(traces, config, tlps)))


def opt_tlp_from_profile(profile: Dict[int, SimResult]) -> int:
    """The TLP with the fewest cycles (ties to fewer blocks)."""
    return min(profile, key=lambda tlp: (profile[tlp].cycles, tlp))


def run_baselines(
    kernel: Kernel,
    config: GPUConfig,
    usage: Optional[ResourceUsage] = None,
    grid_blocks: Optional[int] = None,
    param_sizes: Optional[Dict[str, int]] = None,
    engine: Optional[EvaluationEngine] = None,
    fastpath: Optional[FastPathPolicy] = None,
) -> Dict[str, BaselineResult]:
    """Evaluate MaxTLP and OptTLP for one kernel.

    Returns ``{"maxtlp": ..., "opttlp": ...}``; the OptTLP entry carries
    the full TLP profile so callers (CRAT, benches) can reuse it.

    The profile covers every TLP achievable at *any* register choice
    (the occupancy ceiling at ``MinReg``), not just the TLPs reachable
    with the default allocation: CRAT's pruning needs the cache-
    contention optimum over the whole range — for register-bound apps
    like FDTD the default allocation caps occupancy below it (the paper
    reports CRAT picking TLP 2 where OptTLP could only run 1).  The
    throttling *baseline* itself is restricted to ``[1, MaxTLP]``, as a
    thread-throttling technique cannot raise occupancy.

    ``fastpath`` (default: the engine's policy) screens the sweep
    analytically and simulates only the top-K survivors; the MaxTLP
    point is always simulated — the baseline reports it regardless of
    its analytical rank.
    """
    if usage is None:
        usage = collect_resource_usage(kernel, config)
    if grid_blocks is None:
        grid_blocks = 2 * config.max_blocks_per_sm
    from ..arch.occupancy import compute_occupancy

    ceiling = compute_occupancy(
        config,
        min(usage.min_reg, usage.default_reg),
        usage.shm_size,
        usage.block_size,
    ).blocks
    ceiling = max(ceiling, usage.max_tlp)
    allocation = default_allocation(kernel, usage)
    engine = engine or get_engine()
    profile = engine.profile_tlp(
        allocation.kernel, config, ceiling, grid_blocks, param_sizes,
        policy=fastpath, must_include=(usage.max_tlp,),
    )
    baseline_profile = {t: r for t, r in profile.items() if t <= usage.max_tlp}
    opt = opt_tlp_from_profile(baseline_profile)
    return {
        "maxtlp": BaselineResult(
            scheme="maxtlp",
            reg=usage.default_reg,
            tlp=usage.max_tlp,
            allocation=allocation,
            sim=profile[usage.max_tlp],
        ),
        "opttlp": BaselineResult(
            scheme="opttlp",
            reg=usage.default_reg,
            tlp=opt,
            allocation=allocation,
            sim=profile[opt],
            profile=profile,
        ),
    }
