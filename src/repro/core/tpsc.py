"""The TPSC prediction model (paper Section 6).

``TPSC = TLP_gain * Spill_cost`` ranks the surviving design points:

* ``TLP_gain = 1 - TLP*BlockSize / (TLP*BlockSize + MaxThread)``
  shrinks as TLP grows — adding threads has diminishing returns once
  latency is already hidden;
* ``Spill_cost = Num_local*Cost_local + Num_shm*Cost_shm + Num_others``
  charges every inserted spill instruction its measured per-access
  delay (local and shared memory costs come from micro-benchmarks,
  :mod:`repro.arch.latency`).

The smallest TPSC wins.  The metric deliberately ignores cache effects:
points with serious contention were already pruned (Section 4.2).
Spill-free candidates all score zero, so ties break toward higher TLP
then higher reg/thread — more parallelism at equal single-thread cost.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..arch.config import GPUConfig
from ..arch.latency import MemoryCosts, measure_costs
from ..regalloc.allocator import AllocationResult
from .design_space import DesignPoint


@dataclasses.dataclass(frozen=True)
class ScoredPoint:
    """A design point with its allocation outcome and TPSC score."""

    point: DesignPoint
    allocation: AllocationResult
    tlp_gain: float
    spill_cost: float

    @property
    def tpsc(self) -> float:
        return self.tlp_gain * self.spill_cost


def tlp_gain(tlp: int, block_size: int, max_threads: int) -> float:
    """``TLP_gain`` of Section 6 (diminishing returns in thread count)."""
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    active = tlp * block_size
    return 1.0 - active / (active + max_threads)


def spill_cost(
    allocation: AllocationResult,
    costs: MemoryCosts,
    weighted: bool = False,
) -> float:
    """``Spill_cost`` of Section 6.

    ``weighted=True`` swaps the paper's static instruction counts for
    loop-depth-weighted counts (an ablation; the paper counts inserted
    instructions statically).
    """
    if weighted:
        num_local = allocation.weighted_local_accesses
        num_shm = allocation.weighted_shared_accesses
    else:
        num_local = allocation.num_local_insts
        num_shm = allocation.num_shared_insts
    others = allocation.num_address_insts + allocation.num_remat_insts
    return (
        num_local * costs.cost_local
        + num_shm * costs.cost_shared
        + others * costs.cost_other
    )


def score(
    point: DesignPoint,
    allocation: AllocationResult,
    config: GPUConfig,
    block_size: int,
    costs: Optional[MemoryCosts] = None,
    weighted: bool = False,
) -> ScoredPoint:
    """Score one allocated design point."""
    if costs is None:
        costs = measure_costs(config)
    return ScoredPoint(
        point=point,
        allocation=allocation,
        tlp_gain=tlp_gain(point.tlp, block_size, config.max_threads_per_sm),
        spill_cost=spill_cost(allocation, costs, weighted=weighted),
    )


def select_best(scored: List[ScoredPoint]) -> ScoredPoint:
    """Pick the winner: min TPSC, ties to higher TLP then higher reg."""
    if not scored:
        raise ValueError("no candidates to select from")
    return min(scored, key=_rank_key)


def _rank_key(s: ScoredPoint) -> Tuple[float, int, int]:
    return (s.tpsc, -s.point.tlp, -s.point.reg)
