"""Shared evaluation engine: cached, parallel, instrumented simulation.

The single owner of trace generation and timing simulation for the
whole CRAT pipeline.  See :mod:`repro.engine.engine` for the design.
"""

from .cache import (
    CACHE_DIR_ENV,
    SimResultCache,
    cache_schema_version,
    config_signature,
    make_sim_key,
)
from .engine import (
    EvaluationEngine,
    SimRequest,
    configure,
    get_engine,
    set_engine,
)
from .events import (
    BatchEvent,
    EngineStats,
    FastPathEvent,
    SimulationEvent,
    StageEvent,
    TraceEvent,
    event_to_dict,
)
from .fastpath import (
    FASTPATH_SCHEMA_VERSION,
    CandidateScore,
    FastPathEvaluator,
    FastPathPolicy,
    FastPathSelection,
    rank_agreement,
)
from .parallel import JOBS_ENV, resolve_jobs

__all__ = [
    "BatchEvent",
    "CACHE_DIR_ENV",
    "CandidateScore",
    "EngineStats",
    "EvaluationEngine",
    "FASTPATH_SCHEMA_VERSION",
    "FastPathEvaluator",
    "FastPathEvent",
    "FastPathPolicy",
    "FastPathSelection",
    "JOBS_ENV",
    "SimRequest",
    "SimResultCache",
    "SimulationEvent",
    "StageEvent",
    "TraceEvent",
    "cache_schema_version",
    "config_signature",
    "configure",
    "event_to_dict",
    "get_engine",
    "make_sim_key",
    "rank_agreement",
    "resolve_jobs",
    "set_engine",
]
