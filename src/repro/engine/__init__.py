"""Shared evaluation engine: cached, parallel, instrumented simulation.

The single owner of trace generation and timing simulation for the
whole CRAT pipeline.  See :mod:`repro.engine.engine` for the design.
"""

from .cache import CACHE_DIR_ENV, SimResultCache, config_signature, make_sim_key
from .engine import (
    EvaluationEngine,
    SimRequest,
    configure,
    get_engine,
    set_engine,
)
from .events import (
    BatchEvent,
    EngineStats,
    SimulationEvent,
    StageEvent,
    TraceEvent,
    event_to_dict,
)
from .parallel import JOBS_ENV, resolve_jobs

__all__ = [
    "BatchEvent",
    "CACHE_DIR_ENV",
    "EngineStats",
    "EvaluationEngine",
    "JOBS_ENV",
    "SimRequest",
    "SimResultCache",
    "SimulationEvent",
    "StageEvent",
    "TraceEvent",
    "config_signature",
    "configure",
    "event_to_dict",
    "get_engine",
    "make_sim_key",
    "resolve_jobs",
    "set_engine",
]
