"""Shared evaluation engine: cached, parallel, instrumented simulation.

The single owner of trace generation and timing simulation for the
whole CRAT pipeline.  See :mod:`repro.engine.engine` for the design and
:mod:`repro.engine.faults` for the deterministic fault-injection
harness that exercises its recovery paths.
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_ENTRIES_ENV,
    CacheCorruptionError,
    SimResultCache,
    cache_schema_version,
    config_signature,
    decode_entry,
    encode_entry,
    make_sim_key,
    resolve_max_entries,
)
from .engine import (
    CHECKPOINT_DIR_ENV,
    EvaluationEngine,
    SimRequest,
    configure,
    get_engine,
    set_engine,
)
from .events import (
    BatchEvent,
    CacheCorruptEvent,
    CheckpointEvent,
    DegradeEvent,
    EngineStats,
    FastPathEvent,
    FaultEvent,
    RequestEvent,
    RetryEvent,
    SimulationEvent,
    StageEvent,
    TraceEvent,
    event_to_dict,
)
from .fastpath import (
    FASTPATH_SCHEMA_VERSION,
    CandidateScore,
    FastPathEvaluator,
    FastPathPolicy,
    FastPathSelection,
    estimate_sim_result,
    rank_agreement,
)
from .faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
)
from .parallel import (
    JOBS_ENV,
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    SupervisorPolicy,
    TaskOutcome,
    resolve_jobs,
    run_supervised,
)

__all__ = [
    "BatchEvent",
    "CACHE_DIR_ENV",
    "CACHE_MAX_ENTRIES_ENV",
    "CHECKPOINT_DIR_ENV",
    "CacheCorruptEvent",
    "CacheCorruptionError",
    "CandidateScore",
    "CheckpointEvent",
    "DegradeEvent",
    "EngineStats",
    "EvaluationEngine",
    "FASTPATH_SCHEMA_VERSION",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FastPathEvaluator",
    "FastPathEvent",
    "FastPathPolicy",
    "FastPathSelection",
    "FaultEvent",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "JOBS_ENV",
    "RequestEvent",
    "RetryEvent",
    "SimRequest",
    "SimResultCache",
    "SimulationEvent",
    "StageEvent",
    "SupervisorPolicy",
    "TASK_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "TaskOutcome",
    "TraceEvent",
    "cache_schema_version",
    "config_signature",
    "configure",
    "decode_entry",
    "encode_entry",
    "estimate_sim_result",
    "event_to_dict",
    "get_engine",
    "make_sim_key",
    "rank_agreement",
    "resolve_jobs",
    "resolve_max_entries",
    "run_supervised",
    "set_engine",
]
