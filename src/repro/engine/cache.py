"""Content-addressed caching for simulation results.

A design point is identified by the tuple ``(kernel fingerprint,
configuration, grid_blocks, param_sizes, tlp, scheduler)``.  The kernel
contributes through :meth:`repro.ptx.module.Kernel.fingerprint` (a
digest of its canonical printed form) and the configuration through the
``repr`` of the frozen :class:`~repro.arch.config.GPUConfig` dataclass,
so two configs that differ in any field — even under the same preset
name — never collide.

The cache is two-level: an in-process LRU map, plus an optional
on-disk store (one file per key digest) enabled by passing a directory
or setting ``REPRO_CACHE_DIR``.  Disk entries survive across
processes, which is what makes repeated benchmark invocations free.

**Bounding.**  The in-memory level is unbounded by default (a one-shot
CLI run cannot outgrow its own working set) but accepts a maximum
entry count — ``REPRO_CACHE_MAX_ENTRIES`` or the ``max_entries``
constructor argument — above which the least-recently-used entry is
evicted (counted in :attr:`SimResultCache.evictions`).  A long-lived
host like ``repro serve`` sets a bound so the resident set stays flat
under arbitrary traffic; evicted entries that also live on disk are
re-admitted on their next lookup.

**Integrity.**  Each disk entry is framed as ``magic + sha256(payload)
+ payload`` (:data:`ENTRY_MAGIC`).  A truncated write (power loss,
full disk, an injected ``corrupt-cache`` fault), a garbled payload, or
a legacy bare-pickle file all fail verification on read; the entry is
**deleted** and reported through the ``on_corrupt`` hook (the engine
counts it and emits a ``cache_corrupt`` event) instead of being
silently treated as a miss on every future lookup.  Writes remain
atomic (temp file + rename), so readers never observe a half-written
entry under POSIX semantics either.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..arch.config import GPUConfig
from ..ir.pipeline import PIPELINE_SCHEMA_VERSION
from ..model.artifact import MODEL_SCHEMA_VERSION
from ..sim.batch import BATCH_SCHEMA_VERSION
from ..sim.stats import SimResult
from . import faults
from .fastpath import FASTPATH_SCHEMA_VERSION

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the in-memory result cache (entry
#: count; unset, empty, or <= 0 all mean unbounded).
CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"


def resolve_max_entries(value: Optional[int] = None) -> Optional[int]:
    """Normalize a cache bound: explicit argument wins, then the
    ``REPRO_CACHE_MAX_ENTRIES`` environment variable; ``None`` or a
    non-positive value means unbounded.  Unparseable env values are
    ignored (unbounded) rather than fatal — matching ``resolve_jobs``'s
    tolerance for bad environments."""
    if value is None:
        raw = os.environ.get(CACHE_MAX_ENTRIES_ENV, "").strip()
        if not raw:
            return None
        try:
            value = int(raw)
        except ValueError:
            return None
    return value if value > 0 else None

#: Revision of the cached-result layout itself (what a ``SimResult``
#: contains and how keys are built).  v2: checksummed entry framing +
#: the ``estimated`` result flag.
RESULT_SCHEMA_VERSION = 2

#: Leading magic of a framed disk entry; bump with the framing.
ENTRY_MAGIC = b"RPRC2\n"

_DIGEST_LEN = hashlib.sha256().digest_size


class CacheCorruptionError(Exception):
    """A persistent cache entry failed integrity verification."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"{reason}: {path}")


def cache_schema_version() -> str:
    """The schema tag baked into every simulation-cache key.

    Combines the result-layout revision with the fast-path scoring
    revision (:data:`repro.engine.fastpath.FASTPATH_SCHEMA_VERSION`),
    the optimization-pipeline revision
    (:data:`repro.ir.pipeline.PIPELINE_SCHEMA_VERSION`) and the batched
    simulation core's revision
    (:data:`repro.sim.batch.BATCH_SCHEMA_VERSION`) and the learned
    tier-0 cost model's revision
    (:data:`repro.model.artifact.MODEL_SCHEMA_VERSION`): on-disk
    entries written under a different scoring model — whose pruning
    decided *which* points ever got simulated — under pass semantics
    that have since changed, by a batched core whose semantics have
    since been revised, or under a learned screen whose prediction
    semantics have since been revised, are invalidated wholesale by a
    version bump rather than trusted silently.
    """
    return (
        f"r{RESULT_SCHEMA_VERSION}.fp{FASTPATH_SCHEMA_VERSION}"
        f".pp{PIPELINE_SCHEMA_VERSION}.b{BATCH_SCHEMA_VERSION}"
        f".m{MODEL_SCHEMA_VERSION}"
    )


SimKey = Tuple[str, str, str, int, Tuple[Tuple[str, int], ...], int, str, str]


def config_signature(config: GPUConfig) -> str:
    """A stable, content-complete rendering of a configuration.

    ``GPUConfig`` is a frozen dataclass whose ``repr`` lists every
    field (including the nested cache/latency configs), so it is a
    faithful content key — unlike ``config.name``, which ``scaled()``
    copies share.
    """
    return repr(config)


def make_sim_key(
    fingerprint: str,
    config: GPUConfig,
    grid_blocks: int,
    param_sizes: Optional[Dict[str, int]],
    tlp: int,
    scheduler: str,
    pipeline: str = "",
    schema: Optional[str] = None,
) -> SimKey:
    """Build a cache key; ``schema`` defaults to the current version.

    ``pipeline`` is the active ``--passes`` signature
    (:func:`repro.ir.pipeline.pipeline_signature`); folding it into the
    key means results produced under different pass pipelines can never
    alias, even when a pass happens to leave a kernel's content (and
    hence its fingerprint) unchanged.
    """
    if schema is None:
        schema = cache_schema_version()
    params = tuple(sorted((param_sizes or {}).items()))
    return (
        schema,
        fingerprint,
        config_signature(config),
        grid_blocks,
        params,
        tlp,
        scheduler,
        pipeline,
    )


def key_digest(key: Tuple) -> str:
    """Short hex digest of a cache key (disk filename / event label)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]


def encode_entry(result: SimResult, token: str = "") -> bytes:
    """Frame a result for disk: magic + payload checksum + payload.

    ``token`` feeds the fault-injection harness — under an active
    ``corrupt-cache`` fault the *stored* payload is perturbed while the
    checksum still covers the clean payload, which is exactly what a
    torn write looks like to the reader.
    """
    payload = pickle.dumps(result)
    stored = faults.corrupt_payload(token, payload) if token else payload
    return ENTRY_MAGIC + hashlib.sha256(payload).digest() + stored


def decode_entry(data: bytes, path: str = "<memory>") -> SimResult:
    """Verify and unpickle a framed entry.

    Raises :class:`CacheCorruptionError` on a missing/foreign magic
    (legacy bare-pickle entries included), a short read, or a checksum
    mismatch.
    """
    if not data.startswith(ENTRY_MAGIC):
        raise CacheCorruptionError(path, "legacy or foreign entry format")
    header_len = len(ENTRY_MAGIC) + _DIGEST_LEN
    if len(data) < header_len:
        raise CacheCorruptionError(path, "truncated entry header")
    digest = data[len(ENTRY_MAGIC):header_len]
    payload = data[header_len:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruptionError(path, "checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as err:
        # Checksum passed but unpickling failed: written by an
        # incompatible interpreter / class layout.
        raise CacheCorruptionError(path, f"unreadable payload: {err}")


class SimResultCache:
    """In-memory dict fronting an optional on-disk checksummed store.

    ``on_corrupt(path, reason)`` is invoked whenever a disk entry fails
    verification (it has already been deleted by then); the engine uses
    it to emit ``cache_corrupt`` instrumentation.
    """

    def __init__(
        self,
        disk_dir: Optional[str] = None,
        on_corrupt: Optional[Callable[[str, str], None]] = None,
        max_entries: Optional[int] = None,
    ):
        if disk_dir is None:
            disk_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.disk_dir = disk_dir
        self.on_corrupt = on_corrupt
        self.corrupt_entries = 0
        self.evictions = 0
        self.max_entries = resolve_max_entries(max_entries)
        self._memory: "OrderedDict[SimKey, SimResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def set_max_entries(self, max_entries: Optional[int]) -> None:
        """Re-bound the in-memory level (``None``/``<=0`` unbounds it);
        an over-budget cache sheds its LRU tail immediately."""
        self.max_entries = (
            max_entries if max_entries is not None and max_entries > 0 else None
        )
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        if self.max_entries is None:
            return
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    def _disk_path(self, key: SimKey) -> Optional[str]:
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"sim-{key_digest(key)}.pkl")

    def _discard_corrupt(self, path: str, reason: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
        self.corrupt_entries += 1
        if self.on_corrupt:
            self.on_corrupt(path, reason)

    # ------------------------------------------------------------------
    def get(self, key: SimKey) -> Tuple[Optional[SimResult], str]:
        """Look a key up; returns ``(result, source)`` where source is
        ``"memory"``, ``"disk"``, or ``"miss"``."""
        result = self._memory.get(key)
        if result is not None:
            self._memory.move_to_end(key)
            return result, "memory"
        path = self._disk_path(key)
        if path and os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                return None, "miss"
            try:
                result = decode_entry(data, path)
            except CacheCorruptionError as err:
                self._discard_corrupt(path, err.reason)
                return None, "miss"
            self._memory[key] = result
            self._evict_over_budget()
            return result, "disk"
        return None, "miss"

    def put(self, key: SimKey, result: SimResult) -> None:
        if getattr(result, "estimated", False):
            # Degraded analytical estimates never enter the cache: a
            # later healthy run must re-simulate the real point.
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        self._evict_over_budget()
        path = self._disk_path(key)
        if path:
            try:
                os.makedirs(self.disk_dir, exist_ok=True)
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "wb") as handle:
                    handle.write(encode_entry(result, token=key_digest(key)))
                os.replace(tmp, path)
            except OSError:
                pass  # disk persistence is best-effort

    def clear(self, disk: bool = False) -> None:
        self._memory.clear()
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.startswith("sim-") and name.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass
