"""Content-addressed caching for simulation results.

A design point is identified by the tuple ``(kernel fingerprint,
configuration, grid_blocks, param_sizes, tlp, scheduler)``.  The kernel
contributes through :meth:`repro.ptx.module.Kernel.fingerprint` (a
digest of its canonical printed form) and the configuration through the
``repr`` of the frozen :class:`~repro.arch.config.GPUConfig` dataclass,
so two configs that differ in any field — even under the same preset
name — never collide.

The cache is two-level: a plain in-process dict, plus an optional
on-disk pickle store (one file per key digest) enabled by passing a
directory or setting ``REPRO_CACHE_DIR``.  Disk entries survive across
processes, which is what makes repeated benchmark invocations free.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Dict, Optional, Tuple

from ..arch.config import GPUConfig
from ..sim.stats import SimResult
from .fastpath import FASTPATH_SCHEMA_VERSION

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Revision of the cached-result layout itself (what a ``SimResult``
#: contains and how keys are built).
RESULT_SCHEMA_VERSION = 1


def cache_schema_version() -> str:
    """The schema tag baked into every simulation-cache key.

    Combines the result-layout revision with the fast-path scoring
    revision (:data:`repro.engine.fastpath.FASTPATH_SCHEMA_VERSION`):
    on-disk entries written under a different scoring model — whose
    pruning decided *which* points ever got simulated — are invalidated
    wholesale by a version bump rather than trusted silently.
    """
    return f"r{RESULT_SCHEMA_VERSION}.fp{FASTPATH_SCHEMA_VERSION}"


SimKey = Tuple[str, str, str, int, Tuple[Tuple[str, int], ...], int, str]


def config_signature(config: GPUConfig) -> str:
    """A stable, content-complete rendering of a configuration.

    ``GPUConfig`` is a frozen dataclass whose ``repr`` lists every
    field (including the nested cache/latency configs), so it is a
    faithful content key — unlike ``config.name``, which ``scaled()``
    copies share.
    """
    return repr(config)


def make_sim_key(
    fingerprint: str,
    config: GPUConfig,
    grid_blocks: int,
    param_sizes: Optional[Dict[str, int]],
    tlp: int,
    scheduler: str,
    schema: Optional[str] = None,
) -> SimKey:
    """Build a cache key; ``schema`` defaults to the current version."""
    if schema is None:
        schema = cache_schema_version()
    params = tuple(sorted((param_sizes or {}).items()))
    return (
        schema,
        fingerprint,
        config_signature(config),
        grid_blocks,
        params,
        tlp,
        scheduler,
    )


def key_digest(key: Tuple) -> str:
    """Short hex digest of a cache key (disk filename / event label)."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]


class SimResultCache:
    """In-memory dict fronting an optional on-disk pickle store."""

    def __init__(self, disk_dir: Optional[str] = None):
        if disk_dir is None:
            disk_dir = os.environ.get(CACHE_DIR_ENV) or None
        self.disk_dir = disk_dir
        self._memory: Dict[SimKey, SimResult] = {}

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: SimKey) -> Optional[str]:
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"sim-{key_digest(key)}.pkl")

    # ------------------------------------------------------------------
    def get(self, key: SimKey) -> Tuple[Optional[SimResult], str]:
        """Look a key up; returns ``(result, source)`` where source is
        ``"memory"``, ``"disk"``, or ``"miss"``."""
        result = self._memory.get(key)
        if result is not None:
            return result, "memory"
        path = self._disk_path(key)
        if path and os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    result = pickle.load(handle)
            except Exception:
                return None, "miss"  # corrupt entry: treat as a miss
            self._memory[key] = result
            return result, "disk"
        return None, "miss"

    def put(self, key: SimKey, result: SimResult) -> None:
        self._memory[key] = result
        path = self._disk_path(key)
        if path:
            try:
                os.makedirs(self.disk_dir, exist_ok=True)
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "wb") as handle:
                    pickle.dump(result, handle)
                os.replace(tmp, path)
            except OSError:
                pass  # disk persistence is best-effort

    def clear(self, disk: bool = False) -> None:
        self._memory.clear()
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.startswith("sim-") and name.endswith(".pkl"):
                    try:
                        os.remove(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass
