"""The shared evaluation engine: cached, parallel, instrumented simulation.

Every stage of the CRAT pipeline — exhaustive TLP profiling, baseline
evaluation, candidate scoring, the final winner run, the latency
micro-benchmarks — ultimately calls the same two primitives: generate
functional traces for a kernel, then replay them through the timing
model at some TLP.  Historically each call site did both by hand, so a
full suite run re-derived identical traces and re-simulated identical
design points many times over.

:class:`EvaluationEngine` is the single owner of those primitives:

* **Content-addressed caching** — results are keyed by ``(kernel
  fingerprint, config, grid_blocks, param_sizes, tlp, scheduler)``;
  traces by the same key minus the TLP/scheduler.  An optional on-disk
  store (``REPRO_CACHE_DIR``) persists results across processes.
* **Parallel fan-out** — :meth:`simulate_many` runs independent design
  points on a process pool (``REPRO_JOBS`` / ``--jobs``), bit-identical
  to the serial path because the simulator is deterministic.
* **Instrumentation** — every trace generation, simulation, batch and
  named pipeline stage is recorded as a typed event with timings and
  hit/miss counters (:mod:`repro.engine.events`), dumpable as JSON.

Call sites share one engine via :func:`get_engine` so caching composes
across layers (the bench driver, the optimizer, the baselines and the
micro-benchmarks all feed the same cache).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..arch.config import GPUConfig
from ..errors import ReproError, classify_error
from ..ir.pipeline import pipeline_signature
from ..ptx.module import Kernel
from ..sim.batch import simulate_traces_batched
from ..sim.executor import BlockTrace
from ..sim.gpu import simulate_traces, trace_grid
from ..sim.stats import SimResult
from . import faults
from .cache import SimKey, SimResultCache, config_signature, key_digest, make_sim_key
from .events import (
    BatchEvent,
    BatchSimEvent,
    CacheCorruptEvent,
    CheckpointEvent,
    CostModelEvent,
    DegradeEvent,
    EngineEvent,
    EngineStats,
    FastPathEvent,
    SimulationEvent,
    StageEvent,
    TraceEvent,
    event_to_dict,
)
from .fastpath import (
    FastPathEvaluator,
    FastPathPolicy,
    estimate_sim_result,
    rank_agreement,
)
from .parallel import (
    SupervisorPolicy,
    TaskOutcome,
    resolve_jobs,
    run_simulations,
    run_supervised,
)

#: Environment variable naming the checkpoint journal directory.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Environment variable naming the telemetry journal directory: every
#: fresh successful simulation appends one training record (features +
#: design point + realized cycles) to ``telemetry.ndjsonl`` there, the
#: raw material of ``repro corpus export --journal``.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"


@dataclasses.dataclass(frozen=True)
class SimRequest:
    """One design point to evaluate: a kernel at a TLP on a config."""

    kernel: Kernel
    config: GPUConfig
    tlp: int
    grid_blocks: Optional[int] = None
    param_sizes: Optional[Dict[str, int]] = None
    scheduler: str = "gto"

    def resolved_grid(self) -> int:
        if self.grid_blocks is not None:
            return self.grid_blocks
        return 2 * self.config.max_blocks_per_sm


class EvaluationEngine:
    """Single owner of trace generation and timing simulation."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        disk_cache: Optional[str] = None,
        max_events: int = 100_000,
        fastpath: Optional[FastPathPolicy] = None,
        supervisor: Optional[SupervisorPolicy] = None,
        checkpoint_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        pipeline: str = "",
        batch: bool = True,
        costmodel: Optional[object] = None,
        telemetry_dir: Optional[str] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        #: Route multi-point groups through the batched SoA core
        #: (:class:`repro.sim.batch.BatchedSimulator`) by default.
        #: Bit-identical to the scalar path; ``--no-batch`` turns it
        #: off, and an active fault-injection plan disables it for the
        #: affected run (faults are exercised by the supervised pool).
        self.batch = batch
        #: The active ``--passes`` signature; folded into every cache
        #: key so results simulated under different pipelines never
        #: alias (see :func:`repro.engine.cache.make_sim_key`).
        self.pipeline = pipeline_signature(pipeline)
        self._sim_cache = SimResultCache(
            disk_cache,
            on_corrupt=self._on_cache_corrupt,
            max_entries=cache_max_entries,
        )
        self._trace_cache: Dict[Tuple, List[BlockTrace]] = {}
        self.stats = EngineStats()
        self.events: List[EngineEvent] = []
        self._max_events = max_events
        #: Tier-1 screening policy; ``top_k=None`` means every design
        #: point simulates (the exact, pre-fast-path pipeline).
        self.fastpath = fastpath or FastPathPolicy()
        #: Retry/timeout budget for supervised batches
        #: (``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``).
        self.supervisor = supervisor or SupervisorPolicy.from_env()
        #: Optional checkpoint journal: completed design points are
        #: persisted (content-keyed, like the sim cache) so an
        #: interrupted sweep resumes without re-simulating them.
        if checkpoint_dir is None:
            checkpoint_dir = os.environ.get(CHECKPOINT_DIR_ENV) or None
        self._checkpoint: Optional[SimResultCache] = (
            SimResultCache(checkpoint_dir, on_corrupt=self._on_cache_corrupt)
            if checkpoint_dir
            else None
        )
        #: Optional learned tier-0 screen
        #: (:class:`repro.model.screen.Tier0Screen`): when active it
        #: re-picks the fast path's survivors from static features and
        #: a shrunken budget; when absent, demoted or declining, the
        #: analytical selection is used untouched.
        self.costmodel = costmodel
        #: Optional telemetry journal: every fresh successful
        #: simulation appends one training record.  Strictly
        #: best-effort — journal failures never fail a simulation.
        if telemetry_dir is None:
            telemetry_dir = os.environ.get(TELEMETRY_DIR_ENV) or None
        self.telemetry_dir = telemetry_dir
        self._telemetry_features: Dict[Tuple[str, str], Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Learned tier-0 cost model.
    # ------------------------------------------------------------------
    def set_costmodel(self, screen: Optional[object]) -> None:
        """Install (or clear, with ``None``) the tier-0 screen.

        Also the hot-reload path: the service's ``reload-model``
        control job loads a fresh artifact into the shared engine
        without a restart."""
        self.costmodel = screen
        if screen is not None:
            summary = screen.summary() if hasattr(screen, "summary") else {}
            self._emit(
                CostModelEvent(
                    kernel="",
                    action="loaded",
                    agreement=float(summary.get("rolling_agreement", 1.0)),
                    reason=str(summary.get("reason", "")),
                )
            )

    def _record_telemetry(self, req: "SimRequest", fingerprint: str,
                          result: SimResult) -> None:
        """Append one training record for a fresh simulation.

        Journal problems are swallowed (telemetry must never affect
        results); schema problems cannot occur because the record is
        built by the same code that defines the schema.
        """
        if not self.telemetry_dir or getattr(result, "estimated", False):
            return
        try:
            from ..analysis.features import extract_features
            from ..model.corpus import CorpusRecord, TELEMETRY_FILE

            sig = config_signature(req.config)
            cache_key = (fingerprint, key_digest((sig,)))
            features = self._telemetry_features.get(cache_key)
            if features is None:
                features = dict(
                    extract_features(req.kernel, config=req.config).values
                )
                self._telemetry_features[cache_key] = features
            record = CorpusRecord(
                kernel=req.kernel.name,
                fingerprint=fingerprint,
                config=cache_key[1],
                pipeline=self.pipeline,
                grid_blocks=req.resolved_grid(),
                tlp=req.tlp,
                scheduler=req.scheduler,
                cycles=result.cycles,
                features=features,
                source="telemetry",
            )
            os.makedirs(self.telemetry_dir, exist_ok=True)
            path = os.path.join(self.telemetry_dir, TELEMETRY_FILE)
            with open(path, "a") as handle:
                handle.write(
                    json.dumps(record.to_dict(), sort_keys=True) + "\n"
                )
        except Exception:
            pass

    def _on_cache_corrupt(self, path: str, reason: str) -> None:
        self.stats.cache_corrupt += 1
        self._emit(CacheCorruptEvent(path=path, reason=reason))

    @property
    def checkpoint_dir(self) -> Optional[str]:
        # NB: ``is not None`` — an empty SimResultCache is falsy
        # (it defines ``__len__``).
        if self._checkpoint is not None:
            return self._checkpoint.disk_dir
        return None

    def set_checkpoint_dir(self, directory: Optional[str]) -> None:
        """Enable (or disable, with ``None``) the checkpoint journal."""
        self._checkpoint = (
            SimResultCache(directory, on_corrupt=self._on_cache_corrupt)
            if directory
            else None
        )

    # ------------------------------------------------------------------
    # Instrumentation plumbing.
    # ------------------------------------------------------------------
    def _emit(self, event: EngineEvent) -> None:
        if getattr(event, "kind", "") == "fault":
            self.stats.faults_injected += 1
        if len(self.events) < self._max_events:
            self.events.append(event)

    def record_stage(self, name: str, seconds: float) -> None:
        """Account a pipeline stage that the caller timed itself."""
        self.stats.record_stage(name, seconds)
        self._emit(StageEvent(name=name, seconds=seconds))

    @contextlib.contextmanager
    def stage(self, name: str):
        """Time a named pipeline stage (``with engine.stage("search"):``)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record_stage(name, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Trace generation (the expensive functional step).
    # ------------------------------------------------------------------
    def traces_for(
        self,
        kernel: Kernel,
        config: GPUConfig,
        grid_blocks: int,
        param_sizes: Optional[Dict[str, int]] = None,
        fingerprint: Optional[str] = None,
    ) -> List[BlockTrace]:
        """Functional traces for a kernel/grid, cached by content."""
        if fingerprint is None:
            fingerprint = kernel.fingerprint()
        params = tuple(sorted((param_sizes or {}).items()))
        key = (fingerprint, config_signature(config), grid_blocks, params)
        traces = self._trace_cache.get(key)
        if traces is not None:
            self.stats.trace_hits += 1
            self._emit(
                TraceEvent(
                    key=key_digest(key),
                    kernel=kernel.name,
                    grid_blocks=grid_blocks,
                    cached=True,
                    seconds=0.0,
                )
            )
            return traces
        t0 = time.perf_counter()
        traces = trace_grid(kernel, config, grid_blocks, param_sizes)
        seconds = time.perf_counter() - t0
        self._trace_cache[key] = traces
        self.stats.trace_misses += 1
        self.stats.trace_seconds += seconds
        self._emit(
            TraceEvent(
                key=key_digest(key),
                kernel=kernel.name,
                grid_blocks=grid_blocks,
                cached=False,
                seconds=seconds,
            )
        )
        return traces

    # ------------------------------------------------------------------
    # Single-point simulation.
    # ------------------------------------------------------------------
    def simulate(
        self,
        kernel: Kernel,
        config: GPUConfig,
        tlp: int,
        grid_blocks: Optional[int] = None,
        param_sizes: Optional[Dict[str, int]] = None,
        scheduler: str = "gto",
    ) -> SimResult:
        """Simulate one design point, through the cache."""
        request = SimRequest(kernel, config, tlp, grid_blocks, param_sizes, scheduler)
        return self.simulate_many([request])[0]

    # ------------------------------------------------------------------
    # Batched simulation with parallel fan-out.
    # ------------------------------------------------------------------
    def simulate_many(self, requests: Sequence[SimRequest]) -> List[SimResult]:
        """Evaluate a batch of independent design points (strict).

        Cache hits are served immediately; the remaining points run
        under the supervisor on the process pool when ``jobs > 1``
        (serial otherwise).  Results come back in request order and are
        bit-identical to the serial path.  A point that still has no
        result after the supervisor's retry budget raises its
        classified :class:`~repro.errors.ReproError`; callers that can
        degrade per-point use :meth:`simulate_outcomes`.
        """
        outcomes = self.simulate_outcomes(requests)
        for outcome in outcomes:
            if isinstance(outcome, ReproError):
                raise outcome
        return outcomes  # type: ignore[return-value]

    def evaluate_batch(self, requests: Sequence[SimRequest]) -> List[SimResult]:
        """Evaluate a multi-point sweep through the batched SoA core.

        Identical results to :meth:`simulate_many` (the batched core is
        bit-identical to the scalar simulator and any group it cannot
        take falls back to the supervised path), but the batched route
        is forced even when the engine default (:attr:`batch`) is off.
        Strict like :meth:`simulate_many`: the first failed point
        raises its classified error.
        """
        outcomes = self.simulate_outcomes(requests, batch=True)
        for outcome in outcomes:
            if isinstance(outcome, ReproError):
                raise outcome
        return outcomes  # type: ignore[return-value]

    def _run_batched(
        self,
        tasks: List[Tuple[List[BlockTrace], GPUConfig, int, str]],
        outcomes: List[Optional[TaskOutcome]],
    ) -> List[int]:
        """Evaluate batchable groups of ``tasks`` with the SoA core.

        Groups share (traces, config, scheduler) and differ only in
        TLP — the shape of a profile sweep.  Fills ``outcomes`` for
        every position it evaluated and returns the positions it left
        for the supervised pool: singleton groups (packing amortizes
        nothing) and any group whose batched run raised (the supervised
        path retries those with its usual budget).
        """
        groups: Dict[Tuple[int, str, str], List[int]] = {}
        for pos, (traces, config, _, scheduler) in enumerate(tasks):
            key = (id(traces), scheduler, config_signature(config))
            groups.setdefault(key, []).append(pos)
        leftover: List[int] = []
        for positions in groups.values():
            if len(positions) < 2:
                leftover.extend(positions)
                continue
            traces, config, _, scheduler = tasks[positions[0]]
            tlps = [tasks[p][2] for p in positions]
            t0 = time.perf_counter()
            try:
                results = simulate_traces_batched(
                    traces, config, tlps, scheduler=scheduler
                )
            except Exception:
                # Whatever went wrong, the supervised scalar path is
                # the retry rung — it owns the failure from here.
                leftover.extend(positions)
                continue
            for p, result in zip(positions, results):
                outcomes[p] = TaskOutcome(result=result, attempts=1)
            self.stats.batched_groups += 1
            self.stats.batched_points += len(positions)
            self._emit(
                BatchSimEvent(
                    points=len(positions),
                    scheduler=scheduler,
                    seconds=time.perf_counter() - t0,
                )
            )
        leftover.sort()
        return leftover

    def simulate_outcomes(
        self,
        requests: Sequence[SimRequest],
        batch: Optional[bool] = None,
    ) -> List[Union[SimResult, ReproError]]:
        """Evaluate a batch, reporting per-point failures in-band.

        Each slot of the returned list is either the point's
        :class:`SimResult` or the classified error its supervised
        execution ended with (timeouts included).  Successful points
        are cached (and journaled to the checkpoint store when one is
        configured); failed points are not.

        ``batch`` overrides the engine's :attr:`batch` default for this
        call.  When batching applies, groups of two or more points that
        share traces, config and scheduler run in-process through the
        bit-identical SoA core (exempt from per-task timeouts, like the
        serial path); everything else — including every point of a run
        with an active fault-injection plan, which must exercise the
        supervised machinery — goes to the supervised pool.
        """
        t0 = time.perf_counter()
        results: List[Optional[Union[SimResult, ReproError]]] = (
            [None] * len(requests)
        )
        keys: List[SimKey] = []
        pending: List[int] = []
        batch_hits = 0
        fingerprints: Dict[int, str] = {}
        for i, req in enumerate(requests):
            fp = fingerprints.setdefault(id(req.kernel), req.kernel.fingerprint())
            key = make_sim_key(
                fp, req.config, req.resolved_grid(), req.param_sizes,
                req.tlp, req.scheduler, pipeline=self.pipeline,
            )
            keys.append(key)
            cached, source = self._sim_cache.get(key)
            if cached is None and self._checkpoint is not None:
                cached, ckpt_source = self._checkpoint.get(key)
                if cached is not None:
                    source = "checkpoint"
                    # Promote into the primary cache so later lookups
                    # are plain memory hits.
                    self._sim_cache.put(key, cached)
                    self.stats.checkpoint_hits += 1
                    self._emit(
                        CheckpointEvent(
                            key=key_digest(key),
                            kernel=req.kernel.name,
                            tlp=req.tlp,
                        )
                    )
            if cached is not None:
                results[i] = cached
                batch_hits += 1
                self.stats.sim_hits += 1
                if source == "disk":
                    self.stats.disk_hits += 1
                self._emit(
                    SimulationEvent(
                        key=key_digest(key),
                        kernel=req.kernel.name,
                        tlp=req.tlp,
                        scheduler=req.scheduler,
                        cached=True,
                        source=source,
                        seconds=0.0,
                    )
                )
            else:
                pending.append(i)

        if pending:
            tasks = []
            tokens = []
            for i in pending:
                req = requests[i]
                try:
                    traces = self.traces_for(
                        req.kernel,
                        req.config,
                        req.resolved_grid(),
                        req.param_sizes,
                        fingerprint=fingerprints[id(req.kernel)],
                    )
                except Exception as err:
                    # Trace generation failed (e.g. a divergence trap):
                    # every point of this kernel fails identically, but
                    # classification stays per-point for the report.
                    self.stats.sim_failures += 1
                    results[i] = classify_error(
                        err,
                        kernel=req.kernel.name,
                        design_point=(None, req.tlp),
                        stage="trace",
                    )
                    continue
                tasks.append((traces, req.config, req.tlp, req.scheduler))
                tokens.append(key_digest(keys[i]))
            pending = [i for i in pending if results[i] is None]
            t_run = time.perf_counter()
            use_batch = self.batch if batch is None else batch
            outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
            remaining = list(range(len(tasks)))
            if use_batch and len(tasks) > 1 and faults.active_plan() is None:
                remaining = self._run_batched(tasks, outcomes)
            if remaining:
                supervised = run_supervised(
                    [tasks[p] for p in remaining],
                    self.jobs,
                    policy=self.supervisor,
                    tokens=[tokens[p] for p in remaining],
                    emit=self._emit,
                )
                for p, outcome in zip(remaining, supervised):
                    outcomes[p] = outcome
            run_seconds = time.perf_counter() - t_run
            per_point = run_seconds / len(pending) if pending else 0.0
            for i, outcome in zip(pending, outcomes):
                req = requests[i]
                self.stats.retries += max(0, outcome.attempts - 1)
                if outcome.timed_out:
                    self.stats.timeouts += 1
                if outcome.ok:
                    result = outcome.result
                    self._sim_cache.put(keys[i], result)
                    if self._checkpoint is not None:
                        self._checkpoint.put(keys[i], result)
                    self._record_telemetry(
                        req, fingerprints[id(req.kernel)], result
                    )
                    results[i] = result
                    self.stats.sim_misses += 1
                    self._emit(
                        SimulationEvent(
                            key=key_digest(keys[i]),
                            kernel=req.kernel.name,
                            tlp=req.tlp,
                            scheduler=req.scheduler,
                            cached=False,
                            source="run",
                            seconds=per_point,
                        )
                    )
                else:
                    self.stats.sim_failures += 1
                    results[i] = classify_error(
                        outcome.error,
                        kernel=req.kernel.name,
                        design_point=(None, req.tlp),
                        stage="simulate",
                    )
            self.stats.sim_seconds += run_seconds

        if len(requests) > 1:
            self.stats.batches += 1
            self._emit(
                BatchEvent(
                    points=len(requests),
                    cache_hits=batch_hits,
                    jobs=self.jobs if len(pending) > 1 else 1,
                    seconds=time.perf_counter() - t0,
                )
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # TLP profiling (the paper's exhaustive offline search).
    # ------------------------------------------------------------------
    def profile_tlp(
        self,
        kernel: Kernel,
        config: GPUConfig,
        max_tlp: int,
        grid_blocks: Optional[int] = None,
        param_sizes: Optional[Dict[str, int]] = None,
        scheduler: str = "gto",
        policy: Optional[FastPathPolicy] = None,
        must_include: Iterable[int] = (),
    ) -> Dict[int, SimResult]:
        """Simulate the TLP sweep ``[1, max_tlp]`` for one kernel.

        With the fast path disabled (``policy`` and the engine default
        both ``top_k=None``) every TLP is simulated — the paper's
        exhaustive profiling.  Otherwise the sweep runs the two-tier
        pipeline:

        1. simulate the **anchors** — the ceiling ``max_tlp`` plus any
           ``must_include`` TLPs (e.g. the MaxTLP baseline point, which
           the pipeline reports regardless) — and feed the ceiling
           result's measured DRAM traffic into the analytical model;
        2. **screen** the whole sweep analytically
           (:meth:`~repro.engine.fastpath.FastPathEvaluator.
           screen_sweep`) and simulate the top-K survivors;
        3. with ``policy.refine``, **walk** the running optimum's
           bracket — simulate the analytically-preferred unsimulated
           neighbour of the current best, one point at a time, until
           the best TLP has both neighbours simulated.

        The returned profile contains only the simulated points — plus,
        when a point's simulation ultimately fails despite the
        supervisor's retries, its analytical fast-path estimate
        (``estimated=True``, flagged by a ``DegradeEvent`` and excluded
        from the cache): a sweep always returns its best available
        answer rather than aborting on one bad point.
        """
        if max_tlp <= 0:
            raise ValueError("max_tlp must be positive")
        policy = policy if policy is not None else self.fastpath
        tlps: List[int] = list(range(1, max_tlp + 1))

        def request(tlp: int) -> SimRequest:
            return SimRequest(kernel, config, tlp, grid_blocks, param_sizes, scheduler)

        failures: Dict[int, ReproError] = {}

        def sim_points(ts: Sequence[int]) -> Dict[int, SimResult]:
            good: Dict[int, SimResult] = {}
            for t, outcome in zip(
                ts, self.simulate_outcomes([request(t) for t in ts])
            ):
                if isinstance(outcome, ReproError):
                    failures[t] = outcome
                else:
                    good[t] = outcome
            return good

        def degrade_into(profile: Dict[int, SimResult]) -> None:
            """Fill failed points with analytical estimates (rung 2 of
            the degradation ladder; rung 1 was the supervisor retry)."""
            if not failures:
                return
            anchor = profile.get(max_tlp)
            resolved_grid = request(max_tlp).resolved_grid()
            for t in sorted(failures):
                profile[t] = estimate_sim_result(
                    kernel, config, t, resolved_grid,
                    anchor=anchor, policy=policy,
                )
                self.stats.degraded += 1
                self._emit(
                    DegradeEvent(
                        kernel=kernel.name, tlp=t, reason=failures[t].kind
                    )
                )
            failures.clear()

        if not (policy.enabled and policy.resolve_k(len(tlps)) < len(tlps)):
            profile = sim_points(tlps)
            degrade_into(profile)
            return dict(sorted(profile.items()))

        # Tier 1: anchors first — the ceiling simulation calibrates the
        # bandwidth floor of the analytical screen.  A failed anchor is
        # degraded immediately: the screen then runs un-anchored (pure
        # mimic ordering) rather than not at all.
        anchors = sorted({max_tlp, *(t for t in must_include if 1 <= t <= max_tlp)})
        profile = sim_points(anchors)
        degrade_into(profile)

        t0 = time.perf_counter()
        evaluator = FastPathEvaluator(config, policy)
        resolved_grid = request(max_tlp).resolved_grid()
        scores = evaluator.screen_sweep(
            kernel, tlps, resolved_grid, anchor=profile[max_tlp]
        )
        selection = evaluator.select(scores, must_keep=anchors)

        # Tier 0: a healthy learned screen re-picks the survivors from
        # static features with a budget that shrinks as its measured
        # rank agreement rises.  It can only choose which points
        # simulate *first* — the refinement walk below still runs, so
        # the reported optimum stays a simulated local minimum either
        # way — and any decline (inactive, demoted, too uncertain)
        # leaves the analytical selection bit-identical.
        tier0 = self.costmodel
        tier0_used = False
        if tier0 is not None and getattr(tier0, "active", False):
            picked = tier0.screen_sweep(
                kernel, config, tlps, resolved_grid, anchors,
                selection.top_k,
            )
            agreement_now = tier0.detector.rolling_agreement()
            if picked is None:
                self.stats.tier0_declined += 1
                self._emit(
                    CostModelEvent(
                        kernel=kernel.name,
                        action="declined",
                        agreement=agreement_now,
                        reason="predictions too uncertain to rank",
                    )
                )
            else:
                survivors, skipped, k_eff = picked
                selection = dataclasses.replace(
                    selection, survivors=survivors, skipped=skipped
                )
                tier0_used = True
                self.stats.tier0_screened += 1
                self._emit(
                    CostModelEvent(
                        kernel=kernel.name,
                        action="screened",
                        k_eff=k_eff,
                        agreement=agreement_now,
                    )
                )
        fastpath_seconds = time.perf_counter() - t0

        fresh = [t for t in sorted(selection.survivors) if t not in profile]
        profile.update(sim_points(fresh))
        degrade_into(profile)

        if policy.refine:
            # Tier 2: bracket walk — one simulation at a time until the
            # running best is a simulated local minimum.  A failed walk
            # point degrades to its estimate, which still anchors the
            # bracket so the walk terminates.
            while True:
                nxt = evaluator.next_refinement(
                    scores,
                    {t: r.cycles for t, r in profile.items()},
                    1,
                    max_tlp,
                )
                if nxt is None:
                    break
                profile.update(sim_points([nxt]))
                degrade_into(profile)

        profile = dict(sorted(profile.items()))

        if tier0_used:
            # Score the model's predicted ordering against realized
            # cycles; a verdict comes back only when this observation
            # demoted the model (sticky — analytical from here on).
            verdict = tier0.observe_profile(
                kernel.name,
                {t: r.cycles for t, r in profile.items() if not r.estimated},
            )
            if verdict is not None:
                self.stats.tier0_demotions += 1
                self._emit(
                    CostModelEvent(
                        kernel=kernel.name,
                        action="demoted",
                        agreement=verdict.rolling_agreement,
                        reason=verdict.reason,
                    )
                )

        simulated = sum(1 for r in profile.values() if not r.estimated)
        skipped = max_tlp - len(profile)
        self.stats.fastpath_scored += len(scores)
        self.stats.fastpath_skipped += skipped
        self._emit(
            FastPathEvent(
                kernel=kernel.name,
                scored=len(scores),
                simulated=simulated,
                skipped=skipped,
                top_k=selection.top_k,
                agreement=rank_agreement(
                    scores, {t: r.cycles for t, r in profile.items()}
                ),
                seconds=fastpath_seconds,
            )
        )
        return profile

    def simulate_traces_many(
        self,
        traces: List[BlockTrace],
        config: GPUConfig,
        tlps: Iterable[int],
        scheduler: str = "gto",
    ) -> List[SimResult]:
        """Parallel fan-out over pre-computed traces (uncached: without
        the originating kernel there is no content key).  Multi-point
        calls take the batched SoA core when the engine default allows
        it, falling back to the supervised pool on any batched-core
        failure."""
        tasks = [(traces, config, tlp, scheduler) for tlp in tlps]
        t0 = time.perf_counter()
        outcomes: Optional[List[SimResult]] = None
        if self.batch and len(tasks) > 1 and faults.active_plan() is None:
            try:
                outcomes = simulate_traces_batched(
                    traces, config, [t[2] for t in tasks],
                    scheduler=scheduler,
                )
            except Exception:
                outcomes = None
            if outcomes is not None:
                self.stats.batched_groups += 1
                self.stats.batched_points += len(tasks)
                self._emit(
                    BatchSimEvent(
                        points=len(tasks),
                        scheduler=scheduler,
                        seconds=time.perf_counter() - t0,
                    )
                )
        if outcomes is None:
            outcomes = run_simulations(
                tasks, self.jobs, policy=self.supervisor, emit=self._emit
            )
        seconds = time.perf_counter() - t0
        self.stats.sim_misses += len(tasks)
        self.stats.sim_seconds += seconds
        if len(tasks) > 1:
            self.stats.batches += 1
            self._emit(
                BatchEvent(
                    points=len(tasks),
                    cache_hits=0,
                    jobs=self.jobs,
                    seconds=seconds,
                )
            )
        return outcomes

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of counters, timings and the event log."""
        return {
            "jobs": self.jobs,
            "batch": self.batch,
            "pipeline": self.pipeline,
            "cached_results": len(self._sim_cache),
            "cached_traces": len(self._trace_cache),
            "cache_max_entries": self._sim_cache.max_entries,
            "cache_evictions": self._sim_cache.evictions,
            "task_timeout": self.supervisor.timeout,
            "max_attempts": self.supervisor.max_attempts,
            "checkpoint_dir": self.checkpoint_dir,
            "stats": self.stats.to_dict(),
            "events": [event_to_dict(e) for e in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset_stats(self) -> None:
        """Zero the counters and drop the event log (caches stay warm)."""
        self.stats = EngineStats()
        self.events = []

    def clear(self, disk: bool = False) -> None:
        """Drop cached results and traces (and stats/events)."""
        self._sim_cache.clear(disk=disk)
        self._trace_cache.clear()
        self.reset_stats()


# ----------------------------------------------------------------------
# The process-wide shared engine.
# ----------------------------------------------------------------------
_default_engine: Optional[EvaluationEngine] = None

#: Guards creation/replacement/reconfiguration of the shared engine.
#: Under ``repro serve`` many handler threads reach :func:`get_engine`
#: and :func:`configure` concurrently; without the lock two threads
#: could each instantiate an engine (splitting the cache) or observe a
#: half-applied :func:`configure`.  Reentrant so ``configure`` can call
#: ``get_engine`` while holding it.
_engine_lock = threading.RLock()


def get_engine() -> EvaluationEngine:
    """The process-wide engine every pipeline layer shares by default."""
    global _default_engine
    with _engine_lock:
        if _default_engine is None:
            _default_engine = EvaluationEngine()
        return _default_engine


def set_engine(engine: EvaluationEngine) -> EvaluationEngine:
    """Swap the shared engine (tests / embedding)."""
    global _default_engine
    with _engine_lock:
        _default_engine = engine
        return engine


def configure(
    jobs: Optional[int] = None,
    disk_cache: Optional[str] = None,
    fastpath_topk: Optional[int] = None,
    fastpath_refine: Optional[bool] = None,
    task_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    cache_max_entries: Optional[int] = None,
    passes: Optional[str] = None,
    batch: Optional[bool] = None,
    costmodel: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> EvaluationEngine:
    """Adjust the shared engine in place (the CLI's ``--jobs`` /
    ``--fastpath-topk`` / ``--task-timeout`` hook).  ``fastpath_topk=0``
    disables the fast path (every design point simulates); positive
    values keep that many survivors per candidate set.
    ``fastpath_refine`` toggles the bracket-refinement walk of enabled
    fast paths.  ``task_timeout`` (seconds; 0 disables) bounds each
    supervised simulation attempt; ``checkpoint_dir`` ("" disables)
    points the resumption journal; ``cache_max_entries`` (0 unbounds)
    LRU-bounds the in-memory result cache.  ``passes`` sets the active
    optimization-pipeline signature folded into cache keys ("" clears
    it; unknown pass names raise :class:`repro.errors.ParseError`).
    The whole adjustment runs under the engine lock, so a concurrent
    ``get_engine`` caller sees either the old or the new configuration,
    never a mix."""
    with _engine_lock:
        engine = get_engine()
        if jobs is not None:
            engine.jobs = resolve_jobs(jobs)
        if batch is not None:
            engine.batch = batch
        if disk_cache is not None:
            engine._sim_cache.disk_dir = disk_cache
        if fastpath_topk is not None:
            engine.fastpath = dataclasses.replace(
                engine.fastpath,
                top_k=fastpath_topk if fastpath_topk > 0 else None,
            )
        if fastpath_refine is not None:
            engine.fastpath = dataclasses.replace(
                engine.fastpath, refine=fastpath_refine
            )
        if task_timeout is not None:
            engine.supervisor = dataclasses.replace(
                engine.supervisor,
                timeout=task_timeout if task_timeout > 0 else None,
            )
        if checkpoint_dir is not None:
            engine.set_checkpoint_dir(checkpoint_dir or None)
        if cache_max_entries is not None:
            engine._sim_cache.set_max_entries(cache_max_entries)
        if passes is not None:
            # Normalized (and validated) before taking effect: a typo'd
            # spec must fail loudly, never silently tag cache keys.
            engine.pipeline = pipeline_signature(passes)
        if costmodel is not None:
            if costmodel:
                # Import lazily: the model package costs numpy setup
                # and most invocations never load an artifact.
                from ..model.screen import load_screen

                engine.set_costmodel(load_screen(costmodel))
            else:
                engine.set_costmodel(None)
        if telemetry_dir is not None:
            engine.telemetry_dir = telemetry_dir or None
        return engine
