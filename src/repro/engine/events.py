"""Typed instrumentation events and counters for the evaluation engine.

Every observable action of the :class:`~repro.engine.engine.
EvaluationEngine` — a trace generation, a timing simulation, a named
pipeline stage — is recorded as a small frozen dataclass, and the
running totals live in :class:`EngineStats`.  The CLI can dump the
whole event log as JSON (``--trace-json``) and the ``suite`` command
prints the counter summary, which is how the "zero new simulations on
a warm cache" property is verified.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Dict, List, Union


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One functional trace generation (or trace-cache hit)."""

    kind: ClassVar[str] = "trace"

    key: str  # short cache-key digest
    kernel: str
    grid_blocks: int
    cached: bool
    seconds: float


@dataclasses.dataclass(frozen=True)
class SimulationEvent:
    """One timing simulation of a design point (or a cache hit)."""

    kind: ClassVar[str] = "simulate"

    key: str  # short cache-key digest
    kernel: str
    tlp: int
    scheduler: str
    cached: bool
    #: Where the result came from: "memory", "disk", or "run".
    source: str
    seconds: float


@dataclasses.dataclass(frozen=True)
class BatchEvent:
    """One ``simulate_many`` fan-out batch."""

    kind: ClassVar[str] = "batch"

    points: int
    cache_hits: int
    jobs: int
    seconds: float


@dataclasses.dataclass(frozen=True)
class BatchSimEvent:
    """One group of design points evaluated by the batched SoA core
    (:class:`repro.sim.batch.BatchedSimulator`) instead of point-by-
    point supervised simulation.  ``points`` is the lane count of the
    group (one lane per TLP); results are bit-identical to the scalar
    path, so this event is a performance trace, not a semantic one.
    """

    kind: ClassVar[str] = "batchsim"

    points: int
    scheduler: str
    seconds: float


@dataclasses.dataclass(frozen=True)
class StageEvent:
    """One named pipeline stage (OptTLP profiling, candidate search...)."""

    kind: ClassVar[str] = "stage"

    name: str
    seconds: float


@dataclasses.dataclass(frozen=True)
class FastPathEvent:
    """One tier-1 analytical screening pass over a candidate set.

    ``scored`` design points were ranked analytically, ``simulated`` of
    them went on to cycle-level simulation and ``skipped`` were pruned.
    ``agreement`` is the pairwise rank concordance between the
    fast-path scores and the simulated cycles of the survivors (the
    calibration signal; 1.0 means perfectly monotone-consistent).
    """

    kind: ClassVar[str] = "fastpath"

    kernel: str
    scored: int
    simulated: int
    skipped: int
    top_k: int
    agreement: float
    seconds: float


@dataclasses.dataclass(frozen=True)
class CostModelEvent:
    """One learned tier-0 screen decision or state transition.

    ``action`` is ``"screened"`` (the model picked this sweep's
    survivors; ``k_eff`` is its shrunken budget), ``"declined"`` (the
    model was active but its uncertainty gate let tier 1 decide),
    ``"demoted"`` (the drift detector or a static check retired the
    model to the analytical tier — ``reason`` says why; sticky until a
    new artifact loads), or ``"loaded"`` (an artifact was installed,
    including via the service's ``reload-model`` control job).
    ``agreement`` is the detector's rolling rank agreement at the time
    of the event.
    """

    kind: ClassVar[str] = "costmodel"

    kernel: str
    action: str
    k_eff: int = 0
    agreement: float = 1.0
    reason: str = ""


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injected fault observed by the supervisor (test harness).

    ``fault`` is the injection kind (``crash``, ``hang``, ``fail``,
    ``corrupt-cache``); ``token`` the deterministic decision token (the
    design point's cache-key digest), so a faulty run can be replayed
    point-by-point.
    """

    kind: ClassVar[str] = "fault"

    fault: str
    token: str
    attempt: int


@dataclasses.dataclass(frozen=True)
class RetryEvent:
    """One supervised task attempt that failed and will be retried.

    ``reason`` is ``"timeout"``, ``"pool-broken"``, ``"crash"`` (an
    exception out of the worker), or ``"no-pool"``; ``final`` marks
    the attempt after which no retry budget remains.
    """

    kind: ClassVar[str] = "retry"

    token: str
    attempt: int
    reason: str
    final: bool
    error: str = ""


@dataclasses.dataclass(frozen=True)
class DegradeEvent:
    """One design point served by the analytical estimate instead of
    simulation (its simulation ultimately failed after retries).

    ``estimated`` is always ``True`` — it rides along so trace
    consumers can filter degraded points without knowing the kind —
    and such results are never written to the result cache.
    """

    kind: ClassVar[str] = "degrade"

    kernel: str
    tlp: int
    reason: str
    estimated: bool = True


@dataclasses.dataclass(frozen=True)
class RequestEvent:
    """One compilation-service request, from acceptance to reply.

    Emitted by ``repro serve`` into the shared engine's event log (and
    its periodic structured log lines), so a service trace interleaves
    with the simulations it caused.  ``status`` is the reply status
    (``ok``, ``error``, ``overloaded``, ``expired``, ``drained``);
    ``deduped`` marks requests that attached to an identical in-flight
    job instead of evaluating; ``queue_seconds`` / ``run_seconds``
    split the latency into waiting and execution.
    """

    kind: ClassVar[str] = "request"

    job: str
    status: str
    deduped: bool
    queue_seconds: float
    run_seconds: float


@dataclasses.dataclass(frozen=True)
class ShardEvent:
    """One fleet-supervision action on an engine shard.

    Emitted by the fleet router/supervisor into its engine's event log
    (so ``--trace-json`` and the periodic structured log lines carry
    them) and mirrored into the fleet counters that ``repro fleet
    status`` and the chaos smoke read — recovery behavior is asserted
    from data, not scraped from logs.  ``action`` is one of ``spawn``,
    ``ready``, ``heartbeat-miss``, ``dead``, ``restart``, ``restore``,
    ``handoff`` or ``reroute``; ``epoch`` counts the shard's restarts
    (0 = first boot).
    """

    kind: ClassVar[str] = "shard"

    shard: str
    action: str
    epoch: int
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class CacheCorruptEvent:
    """One corrupt/truncated/legacy persistent-cache entry, detected by
    checksum verification on read and deleted (the point re-simulates
    instead of silently missing forever)."""

    kind: ClassVar[str] = "cache_corrupt"

    path: str
    reason: str


@dataclasses.dataclass(frozen=True)
class CheckpointEvent:
    """One design point restored from the checkpoint journal on resume."""

    kind: ClassVar[str] = "checkpoint"

    key: str
    kernel: str
    tlp: int


EngineEvent = Union[
    TraceEvent,
    SimulationEvent,
    BatchEvent,
    BatchSimEvent,
    StageEvent,
    FastPathEvent,
    CostModelEvent,
    FaultEvent,
    RetryEvent,
    DegradeEvent,
    RequestEvent,
    ShardEvent,
    CacheCorruptEvent,
    CheckpointEvent,
]


def event_to_dict(event: EngineEvent) -> Dict[str, object]:
    """Render one event as a JSON-ready dict (``kind`` included)."""
    payload: Dict[str, object] = {"kind": event.kind}
    payload.update(dataclasses.asdict(event))
    return payload


@dataclasses.dataclass
class EngineStats:
    """Running counters over the engine's lifetime (until ``reset``)."""

    sim_hits: int = 0
    sim_misses: int = 0
    disk_hits: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    batches: int = 0
    batched_points: int = 0
    batched_groups: int = 0
    fastpath_scored: int = 0
    fastpath_skipped: int = 0
    tier0_screened: int = 0
    tier0_declined: int = 0
    tier0_demotions: int = 0
    retries: int = 0
    timeouts: int = 0
    faults_injected: int = 0
    degraded: int = 0
    sim_failures: int = 0
    cache_corrupt: int = 0
    checkpoint_hits: int = 0
    sim_seconds: float = 0.0
    trace_seconds: float = 0.0
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def simulations(self) -> int:
        """Timing simulations actually executed (cache misses)."""
        return self.sim_misses

    @property
    def sim_requests(self) -> int:
        return self.sim_hits + self.sim_misses

    @property
    def hit_rate(self) -> float:
        total = self.sim_requests
        return self.sim_hits / total if total else 0.0

    def record_stage(self, name: str, seconds: float) -> None:
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["simulations"] = self.simulations
        data["sim_requests"] = self.sim_requests
        data["hit_rate"] = self.hit_rate
        return data

    def summary(self) -> str:
        """One-line human summary (printed by ``repro suite``)."""
        line = (
            f"{self.simulations} simulations run, "
            f"{self.sim_hits}/{self.sim_requests} cache hits "
            f"({self.hit_rate:.0%}), "
            f"{self.trace_misses} traces generated "
            f"({self.trace_hits} reused), "
            f"{self.sim_seconds + self.trace_seconds:.2f}s simulating"
        )
        if self.batched_points:
            line += (
                f", {self.batched_points} points batched "
                f"({self.batched_groups} groups)"
            )
        if self.fastpath_scored:
            line += (
                f", fast path skipped {self.fastpath_skipped}/"
                f"{self.fastpath_scored} scored points"
            )
        if self.tier0_screened or self.tier0_demotions:
            line += (
                f", tier-0 screened {self.tier0_screened} sweeps "
                f"({self.tier0_declined} declined, "
                f"{self.tier0_demotions} demotions)"
            )
        if self.retries:
            line += f", {self.retries} retries ({self.timeouts} timeouts)"
        if self.degraded:
            line += f", {self.degraded} points degraded to estimates"
        if self.cache_corrupt:
            line += f", {self.cache_corrupt} corrupt cache entries dropped"
        if self.checkpoint_hits:
            line += f", {self.checkpoint_hits} points resumed from checkpoint"
        return line
