"""Tier-1 analytical candidate evaluation (the fast path).

CRAT's hot path historically paid a full cycle-level simulation for
every ``(reg, TLP)`` design point it touched — above all in the OptTLP
profiling sweep, which replays the kernel's traces at every TLP in
``[1, ceiling]``.  The paper itself shows that a static GTO-scheduling
model can *rank* TLP points without simulating (Section 4.1, Figure
10b), and related register-allocation work screens candidates with
analytical cost models before committing to expensive evaluation.

This module is that screen.  :class:`FastPathEvaluator` scores every
design point in a candidate set using only static ingredients:

* **occupancy math** (:mod:`repro.arch.occupancy` and the wave-
  quantization term below) — infeasible points are rejected outright,
  and the latency term charges partially-filled trailing waves, which
  is what makes grid-tail optima (MUM's TLP 4-vs-5 sawtooth)
  distinguishable without simulation;
* **the GTO scheduling mimic** (:func:`repro.analysis.gto_model.
  throughput_cost`) — the kernel is segmented once and the mimic's
  serial makespan anchors the latency scale of the sweep;
* **spill access-count estimates** (:mod:`repro.core.tpsc` over the
  counters :mod:`repro.regalloc.spill` maintains) — points whose
  allocations spill are charged the TPSC per-access delays, ordering
  the register axis (the spill instructions themselves also reach the
  mimic as memory work, because scoring sees the *allocated* kernel).

The model is **anchor-calibrated**: one cycle-level simulation at the
sweep ceiling — which the MaxTLP baseline needs anyway — supplies the
measured DRAM traffic that fixes the bandwidth floor.  Each TLP ``n``
of a grid with ``M`` blocks is then predicted as::

    latency(n)   = serial_mimic_cycles * ceil(M / n) / M
    bandwidth(n) = anchor.dram_bytes / dram_bytes_per_cycle
    cost(n)      = max(latency(n), bandwidth(n))

The engine runs cycle-level simulation only on the **top-K survivors**
of this ranking (:class:`FastPathPolicy`; ``top_k=None`` keeps the
exact pipeline: every point simulates).  With ``refine=True`` the
engine additionally walks the simulated optimum's bracket — simulating
one analytically-preferred neighbour at a time until the running best
has both neighbours simulated — which restores the exact winner on
every calibration workload at a measured ~1.7x simulation saving;
``refine=False`` is the aggressive screen-only tier (>2x fewer
simulations, winner drift bounded by the tolerance documented in
``tests/test_fastpath_differential.py``).

Calibration story: the fast-path scores are *monotone-consistent* with
simulated cycles on the calibration workloads (the resource-sensitive
suite) — watched by the ``agreement`` field of every
:class:`~repro.engine.events.FastPathEvent` and enforced by the
differential tests.

``FASTPATH_SCHEMA_VERSION`` names the scoring model's revision; it is
folded into the simulation-cache schema key so on-disk results produced
under a different scoring model never satisfy a lookup.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.gto_model import throughput_cost
from ..analysis.segments import Segment, segment_kernel
from ..arch.config import GPUConfig
from ..arch.latency import MemoryCosts, measure_costs
from ..arch.occupancy import compute_occupancy
from ..ptx.module import Kernel
from ..sim.stats import SimResult

#: Revision of the analytical scoring model.  Bump whenever the score
#: computed for a design point can change (new mimic extension, new
#: calibration term...): the simulation cache folds this into its
#: schema key, so stale on-disk rankings can never be replayed.
FASTPATH_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class FastPathPolicy:
    """How aggressively the fast path prunes before simulation.

    ``top_k=None`` (the default) disables the tier entirely: every
    design point goes to cycle-level simulation and the pipeline is
    bit-identical to the pre-fast-path behaviour.  ``top_k=K`` keeps
    the K best-ranked points per candidate set (plus any the caller
    marks *must-keep*, e.g. the MaxTLP baseline point).

    ``refine`` controls the second tier's bracket walk: after the
    survivors simulate, keep simulating the analytically-preferred
    unsimulated neighbour of the running best until the best point has
    both neighbours simulated.  This guarantees the reported optimum is
    a simulated local minimum — on the calibration suite, the global
    one — at the price of a few extra simulations; ``refine=False``
    trusts the top-K screen outright.
    """

    top_k: Optional[int] = None
    refine: bool = True
    hit_ratio: float = 0.6

    @property
    def enabled(self) -> bool:
        return self.top_k is not None

    def resolve_k(self, n_points: int) -> int:
        """The number of survivors out of ``n_points`` candidates."""
        if self.top_k is None:
            return n_points
        if self.top_k <= 0:
            raise ValueError("top_k must be positive (or None for all)")
        return min(self.top_k, n_points)


@dataclasses.dataclass(frozen=True)
class CandidateScore:
    """One design point's analytical (tier-1) score.

    ``cost`` is the predicted cycle count (the max of the latency and
    bandwidth terms for anchored sweeps, the mimic's makespan-per-block
    for un-anchored candidate scoring); ``spill_cost`` the TPSC
    per-access charge of the point's allocation (0 when spill counters
    are unavailable, e.g. the default allocation of a TLP sweep, where
    it is constant across points anyway).  The ordering key is
    lexicographic: predicted cost first, spill charge second, then
    *lower* TLP — at equal predicted cost fewer concurrent blocks give
    the same throughput with less cache-contention risk, which is the
    measured-safe direction on the calibration suite.
    """

    tlp: int
    cost: float
    latency_cycles: float = 0.0
    bandwidth_cycles: float = 0.0
    spill_cost: float = 0.0
    reg: int = 0
    feasible: bool = True

    @property
    def rank_key(self) -> Tuple:
        return (not self.feasible, self.cost, self.spill_cost, self.tlp, -self.reg)


@dataclasses.dataclass(frozen=True)
class FastPathSelection:
    """Outcome of one tier-1 screening pass over a candidate set."""

    scores: Tuple[CandidateScore, ...]  # every point, analytical rank order
    survivors: Tuple[int, ...]  # TLPs that go on to simulation
    skipped: Tuple[int, ...]  # TLPs the fast path pruned
    top_k: int

    @property
    def scored(self) -> int:
        return len(self.scores)

    def score_of(self, tlp: int) -> CandidateScore:
        for s in self.scores:
            if s.tlp == tlp:
                return s
        raise KeyError(f"no fast-path score for TLP {tlp}")


class FastPathEvaluator:
    """Scores design points analytically — no trace replay.

    One evaluator is constructed per candidate set; the kernel is
    segmented once and every TLP reuses the segment stream, so a full
    sweep costs microseconds where a simulation sweep costs seconds.
    """

    def __init__(
        self,
        config: GPUConfig,
        policy: Optional[FastPathPolicy] = None,
        costs: Optional[MemoryCosts] = None,
    ):
        self.config = config
        self.policy = policy or FastPathPolicy()
        #: Lazily measured: the TPSC per-access delays only matter for
        #: candidate sets whose allocations spill.
        self._costs = costs

    @property
    def costs(self) -> MemoryCosts:
        if self._costs is None:
            self._costs = measure_costs(self.config)
        return self._costs

    # ------------------------------------------------------------------
    def screen_sweep(
        self,
        kernel: Kernel,
        tlps: Iterable[int],
        grid_blocks: int,
        anchor: SimResult,
        segments: Optional[List[Segment]] = None,
    ) -> List[CandidateScore]:
        """Score a TLP sweep against the ceiling anchor's measurements.

        ``anchor`` is the cycle-level result at the sweep ceiling (the
        MaxTLP baseline simulation, which the pipeline needs
        regardless); its DRAM traffic fixes the bandwidth floor while
        the GTO mimic's serial makespan fixes the latency scale.  The
        latency term charges wave quantization: a grid of
        ``grid_blocks`` blocks runs ``ceil(M/n)`` waves at TLP ``n``,
        so TLPs that leave a partially-filled trailing wave rank
        measurably worse than divisors of the grid.  Returns scores
        sorted best-first.
        """
        if grid_blocks <= 0:
            raise ValueError("grid_blocks must be positive")
        if segments is None:
            segments = segment_kernel(kernel, self.config)
        serial = throughput_cost(segments, 1, self.config, self.policy.hit_ratio)
        bandwidth = anchor.dram_bytes / self.config.dram_bytes_per_cycle
        scores = []
        for tlp in tlps:
            waves = math.ceil(grid_blocks / tlp)
            latency = serial * waves / grid_blocks
            scores.append(
                CandidateScore(
                    tlp=tlp,
                    cost=max(latency, bandwidth),
                    latency_cycles=latency,
                    bandwidth_cycles=bandwidth,
                )
            )
        scores.sort(key=lambda s: s.rank_key)
        return scores

    def score_tlp_sweep(
        self,
        kernel: Kernel,
        tlps: Iterable[int],
        reg_per_thread: int = 0,
        shm_per_block: int = 0,
        segments: Optional[List[Segment]] = None,
    ) -> List[CandidateScore]:
        """Score every TLP of a sweep at one fixed allocation, without
        an anchor (pure static mimic ordering).

        The kernel's segments (spill instructions included — the
        allocation already rewrote the body) feed the GTO mimic at each
        TLP.  Points whose TLP is not sustainable at ``reg_per_thread``
        are marked infeasible and rank last.  Returns scores sorted
        best-first.
        """
        if segments is None:
            segments = segment_kernel(kernel, self.config)
        ceiling = None
        if reg_per_thread:
            ceiling = compute_occupancy(
                self.config, reg_per_thread, shm_per_block, kernel.block_size
            ).blocks
        scores = []
        for tlp in tlps:
            feasible = ceiling is None or tlp <= ceiling
            scores.append(
                CandidateScore(
                    tlp=tlp,
                    cost=throughput_cost(
                        segments, tlp, self.config, self.policy.hit_ratio
                    ),
                    reg=reg_per_thread,
                    feasible=feasible,
                )
            )
        scores.sort(key=lambda s: s.rank_key)
        return scores

    def score_point(
        self,
        kernel: Kernel,
        tlp: int,
        reg_per_thread: int,
        spill_cost: float,
        segments: Optional[List[Segment]] = None,
    ) -> CandidateScore:
        """Score one allocated ``(reg, TLP)`` candidate.

        ``spill_cost`` is the TPSC per-access charge of the candidate's
        allocation (:func:`repro.core.tpsc.spill_cost`); the kernel is
        the *allocated* kernel, so its segments carry the inserted
        spill instructions into the mimic as memory work.
        """
        if segments is None:
            segments = segment_kernel(kernel, self.config)
        return CandidateScore(
            tlp=tlp,
            cost=throughput_cost(
                segments, tlp, self.config, self.policy.hit_ratio
            ),
            spill_cost=spill_cost,
            reg=reg_per_thread,
        )

    # ------------------------------------------------------------------
    def select(
        self,
        scores: Sequence[CandidateScore],
        must_keep: Iterable[int] = (),
    ) -> FastPathSelection:
        """Split ranked scores into simulation survivors and skips.

        ``must_keep`` TLPs always survive (the calibration anchor and
        the MaxTLP baseline must be simulated regardless of their
        analytical rank); they do not eat into the top-K budget unless
        they rank inside it anyway.
        """
        ranked = sorted(scores, key=lambda s: s.rank_key)
        k = self.policy.resolve_k(len(ranked))
        keep = set(must_keep)
        survivors = []
        skipped = []
        for i, s in enumerate(ranked):
            if i < k or s.tlp in keep:
                survivors.append(s.tlp)
            else:
                skipped.append(s.tlp)
        return FastPathSelection(
            scores=tuple(ranked),
            survivors=tuple(survivors),
            skipped=tuple(skipped),
            top_k=k,
        )

    def next_refinement(
        self,
        scores: Sequence[CandidateScore],
        simulated_cycles: Dict[int, float],
        lo: int,
        hi: int,
    ) -> Optional[int]:
        """The next TLP the bracket walk should simulate, if any.

        The running best is the simulated point with the fewest cycles
        (ties to the lower TLP, matching
        :func:`repro.core.throttling.opt_tlp_from_profile`).  If it has
        unsimulated neighbours inside ``[lo, hi]``, return the one the
        analytical ranking prefers; otherwise ``None`` — the best is
        bracketed by simulated points (or by the sweep boundary) and
        the walk is done.
        """
        if not simulated_cycles:
            return None
        best = min(simulated_cycles, key=lambda t: (simulated_cycles[t], t))
        pending = [
            n for n in (best - 1, best + 1)
            if lo <= n <= hi and n not in simulated_cycles
        ]
        if not pending:
            return None
        by_tlp = {s.tlp: s for s in scores}
        pending.sort(
            key=lambda n: by_tlp[n].rank_key if n in by_tlp else (False, float("inf"), 0.0, n, 0)
        )
        return pending[0]


def estimate_sim_result(
    kernel: Kernel,
    config: GPUConfig,
    tlp: int,
    grid_blocks: int,
    anchor: Optional[SimResult] = None,
    policy: Optional[FastPathPolicy] = None,
) -> SimResult:
    """Analytical stand-in for a design point whose simulation failed.

    The graceful-degradation ladder's last rung: when a point still has
    no simulation after the supervisor's retry budget, the engine
    substitutes the tier-1 predicted cycle count so a sweep can finish
    and report its best available answer.  With a healthy ``anchor``
    (the sweep-ceiling simulation) the anchored screen supplies the
    bandwidth-floored prediction; without one, the pure GTO-mimic cost
    does.  The result is marked ``estimated=True`` — excluded from the
    cache and flagged in the ``DegradeEvent`` instrumentation — and
    deliberately carries zero counters: only its cycle count is
    meaningful.
    """
    from ..sim.cache import CacheStats

    evaluator = FastPathEvaluator(config, policy)
    if anchor is not None and not getattr(anchor, "estimated", False):
        score = evaluator.screen_sweep(kernel, [tlp], grid_blocks, anchor)[0]
    else:
        score = evaluator.score_tlp_sweep(kernel, [tlp])[0]
    return SimResult(
        cycles=score.cost,
        instructions=0,
        tlp=tlp,
        blocks_executed=0,
        l1=CacheStats(),
        l2=CacheStats(),
        mshr_stall_events=0,
        mshr_stall_cycles=0.0,
        barrier_stall_cycles=0.0,
        idle_cycles=0.0,
        local_load_insts=0,
        local_store_insts=0,
        shared_insts=0,
        global_insts=0,
        bypassed_insts=0,
        dram_transactions=0,
        dram_bytes=0,
        issued_by_class={},
        energy_nj=0.0,
        estimated=True,
    )


def rank_agreement(
    scores: Sequence[CandidateScore],
    simulated_cycles: Dict[int, float],
) -> float:
    """Pairwise order agreement between fast-path scores and cycles.

    The fraction of survivor pairs the analytical ranking orders the
    same way cycle-level simulation does (a Kendall-style concordance
    in ``[0, 1]``; ties in either ordering count as agreement).  Only
    points that were actually simulated participate — this is the
    calibration signal the differential tests watch.  Returns 1.0 when
    fewer than two points were simulated (nothing to disagree about).
    """
    ranked = [s for s in scores if s.tlp in simulated_cycles]
    if len(ranked) < 2:
        return 1.0
    agree = 0
    total = 0
    for i in range(len(ranked)):
        for j in range(i + 1, len(ranked)):
            a, b = ranked[i], ranked[j]
            total += 1
            analytic = _sign(b.cost - a.cost)
            simulated = _sign(
                simulated_cycles[b.tlp] - simulated_cycles[a.tlp]
            )
            if analytic == 0 or simulated == 0 or analytic == simulated:
                agree += 1
    return agree / total


def _sign(x: float) -> int:
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0
