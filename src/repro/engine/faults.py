"""Deterministic fault injection for the supervised execution layer.

Set ``REPRO_FAULTS`` to a comma-separated ``kind:rate`` spec and the
engine's workers and cache I/O are perturbed with those probabilities::

    REPRO_FAULTS=crash:0.1,hang:0.05,corrupt-cache:0.1 repro suite

Four fault kinds exist:

``crash``
    A pool worker raises :class:`InjectedFault` before simulating —
    the supervisor sees a crashed task and must retry it.  Transient:
    only injected into pool workers, and the decision token includes
    the attempt number, so a retried task eventually runs clean (and
    the supervisor's final in-process attempt always does).
``hang``
    A pool worker sleeps :data:`REPRO_FAULT_HANG_SECONDS` before
    working — long enough to trip ``REPRO_TASK_TIMEOUT``.  Transient,
    pool-only, like ``crash``.
``corrupt-cache``
    Bytes written to the persistent result store are truncated and
    garbled, exercising the checksum-verification read path.  Applied
    to the first write of each entry per process.
``fail``
    The task raises on *every* attempt, pool or in-process — a
    permanent failure that forces the engine's degradation ladder
    (analytical fast-path estimate instead of a simulated point).

Three further kinds target the *service tier* (they are consulted only
by engine-shard server processes — plain ``repro`` runs and the
single-process daemon never check them):

``shard-crash``
    A shard process exits abruptly (``os._exit``) just before
    executing a job — the fleet supervisor must detect the death,
    re-route the in-flight jobs and restart the shard.
``shard-hang``
    A shard stops answering health checks (its control plane sleeps),
    tripping the supervisor's missed-heartbeat threshold.
``net-drop``
    A shard writes only half of a reply frame and drops the
    connection, exercising the truncated-frame (``ProtocolError``)
    path and the router's failover replay.

Decisions are **deterministic**: each is a pure function of the seed
(``REPRO_FAULTS_SEED``, default 0), the fault kind, and a stable token
(the design point's cache-key digest plus, for transient kinds, the
attempt number).  Execution order — pool scheduling, batch splits,
retries of other tasks — cannot change which points fault, so a faulty
run is reproducible and comparable point-by-point against a clean one.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import time
from typing import Dict, Mapping, Optional

#: Environment variables controlling the harness.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_SECONDS"

#: Recognized fault kinds (anything else in the spec is an error).
#: The ``shard-*`` / ``net-drop`` kinds perturb engine-shard server
#: processes; the rest perturb the engine's own workers and cache I/O.
KINDS = (
    "crash", "hang", "corrupt-cache", "fail",
    "shard-crash", "shard-hang", "net-drop",
)

#: Per-process write counters for ``corrupt-cache`` decisions (see
#: :func:`corrupt_payload`).
_write_counts: Dict[str, int] = {}


class FaultSpecError(ValueError):
    """Malformed ``REPRO_FAULTS`` specification."""


class InjectedFault(RuntimeError):
    """An injected worker fault (never raised by real code paths).

    The supervisor recognizes this class to emit ``FaultEvent``
    instrumentation; it is defined at module level so it pickles
    cleanly across the process-pool boundary.
    """

    def __init__(self, fault_kind: str, token: str, attempt: int):
        self.fault_kind = fault_kind
        self.token = token
        self.attempt = attempt
        super().__init__(
            f"injected {fault_kind} fault (token={token}, attempt={attempt})"
        )

    def __reduce__(self):
        # Default exception reduction would replay ``args`` (the
        # formatted message) into ``__init__`` and fail — this class
        # must survive the pool's pickle round-trip intact.
        return (InjectedFault, (self.fault_kind, self.token, self.attempt))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: per-kind rates plus the decision seed."""

    rates: Mapping[str, float]
    seed: int = 0
    hang_seconds: float = 30.0

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, hang_seconds: float = 30.0
    ) -> "FaultPlan":
        """Parse ``kind:rate,kind:rate`` into a plan.

        Raises :class:`FaultSpecError` on unknown kinds or rates
        outside ``[0, 1]`` — a fault harness that silently ignores a
        typo would "pass" every recovery test vacuously.
        """
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, raw = part.partition(":")
            kind = kind.strip()
            if not sep or kind not in KINDS:
                raise FaultSpecError(
                    f"unknown fault {part!r} (expected kind:rate with kind "
                    f"in {', '.join(KINDS)})"
                )
            try:
                rate = float(raw)
            except ValueError:
                raise FaultSpecError(f"non-numeric rate in {part!r}") from None
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"rate out of [0, 1] in {part!r}")
            rates[kind] = rate
        return cls(rates=rates, seed=seed, hang_seconds=hang_seconds)

    @property
    def enabled(self) -> bool:
        return any(rate > 0 for rate in self.rates.values())

    def decide(self, kind: str, token: str) -> bool:
        """Deterministically decide whether ``kind`` fires for ``token``.

        A sha256 draw over ``(seed, kind, token)`` — independent of
        execution order, process, and platform hash randomization.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{token}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < rate


@functools.lru_cache(maxsize=8)
def _parse_cached(spec: str, seed: int, hang_seconds: float) -> FaultPlan:
    return FaultPlan.parse(spec, seed=seed, hang_seconds=hang_seconds)


def active_plan() -> Optional[FaultPlan]:
    """The plan configured by the environment, or ``None``.

    Read afresh on every call (tests flip the environment between
    cases; pool workers inherit it at fork), with the parse itself
    memoized.
    """
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    seed = int(os.environ.get(FAULTS_SEED_ENV, "0") or "0")
    hang = float(os.environ.get(HANG_SECONDS_ENV, "30") or "30")
    plan = _parse_cached(spec, seed, hang)
    return plan if plan.enabled else None


def perturb_task(token: str, attempt: int, in_pool: bool) -> None:
    """Maybe perturb one simulation task (called before it runs).

    ``crash`` and ``hang`` model worker/infrastructure failures, so
    they fire only inside pool workers (``in_pool=True``) and their
    decision token carries the attempt number — a retry re-rolls.
    ``fail`` models a permanently failing design point: its token is
    attempt-free and it fires everywhere, including the supervisor's
    trusted in-process last attempt.
    """
    plan = active_plan()
    if plan is None:
        return
    transient_token = f"{token}#a{attempt}"
    if in_pool and plan.decide("hang", transient_token):
        time.sleep(plan.hang_seconds)
    if in_pool and plan.decide("crash", transient_token):
        raise InjectedFault("crash", token, attempt)
    if plan.decide("fail", token):
        raise InjectedFault("fail", token, attempt)


def corrupt_payload(token: str, payload: bytes) -> bytes:
    """Maybe corrupt a cache payload about to be persisted.

    The decision token includes a per-process write counter so a
    re-simulated entry's rewrite is an independent draw — otherwise a
    corrupted entry would be re-corrupted forever and the recovery
    path would never converge within a process.
    """
    plan = active_plan()
    if plan is None:
        return payload
    count = _write_counts.get(token, 0)
    _write_counts[token] = count + 1
    if not plan.decide("corrupt-cache", f"{token}#w{count}"):
        return payload
    # Truncate and garble: exercises both the checksum-mismatch and
    # short-read detection paths.
    return payload[: max(1, len(payload) // 2)] + b"\x00INJECTED"


def shard_fault(token: str) -> Optional[str]:
    """Decide a service-level shard fault for one job dispatch.

    Returns ``"crash"`` (the shard must die abruptly), ``"hang"`` (the
    shard's control plane must stop answering health checks) or
    ``None``.  The token is built by the shard server from the job's
    dedup signature plus the dispatch attempt, the shard id and the
    shard's restart epoch — so a replayed job re-rolls instead of
    chasing the fleet through an infinite kill loop, while the decision
    stays a pure function of ``(seed, kind, token)``.
    """
    plan = active_plan()
    if plan is None:
        return None
    if plan.decide("shard-crash", token):
        return "crash"
    if plan.decide("shard-hang", token):
        return "hang"
    return None


def shard_net_drop(token: str) -> bool:
    """Decide whether a shard truncates this reply mid-write.

    Same token discipline as :func:`shard_fault`; the router must see
    the partial frame as a typed :class:`ProtocolError` and replay the
    (idempotent) job elsewhere.
    """
    plan = active_plan()
    if plan is None:
        return False
    return plan.decide("net-drop", token)


__all__ = [
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "HANG_SECONDS_ENV",
    "KINDS",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "active_plan",
    "corrupt_payload",
    "perturb_task",
    "shard_fault",
    "shard_net_drop",
]
