"""Supervised process-pool fan-out for independent simulation points.

Design-space sweeps (TLP profiling, candidate evaluation) simulate many
independent points over the same traces — embarrassingly parallel work.
:func:`run_supervised` executes a batch under a **supervisor** instead
of a bare ``pool.map``:

* tasks are submitted individually, so one crashed or hung worker
  fails only its own task, not the whole batch;
* each task gets a per-attempt wall-clock timeout
  (``REPRO_TASK_TIMEOUT`` / ``--task-timeout``; pool mode only — an
  in-process task cannot be interrupted portably);
* crashed and timed-out tasks are retried with backoff, up to
  ``REPRO_TASK_RETRIES`` extra attempts; the **final attempt always
  runs serially in-process**, so a poisoned pool can never lose work
  the interpreter itself could do;
* a ``BrokenProcessPool`` fails only the tasks that were in flight —
  finished results are kept, the pool is rebuilt for the retry round;
* deterministic Python exceptions (e.g. a divergence trap in the
  functional simulator) are *not* retried: re-running a deterministic
  failure is wasted work, the error is reported immediately.

Everything observable — injected faults, retries, timeouts — is
reported through the ``emit`` hook as typed events
(:class:`~repro.engine.events.FaultEvent` /
:class:`~repro.engine.events.RetryEvent`), which the engine routes into
its ``--trace-json`` channel.

:func:`run_simulations` keeps the historical strict interface (results
in input order, first failure raised); the engine uses
:func:`run_supervised` directly to degrade failed points gracefully.

The worker count comes from the ``REPRO_JOBS`` environment variable or
the CLI's ``--jobs`` flag.  If a pool cannot be created (restricted
sandboxes) the batch falls back to the serial path.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..arch.config import GPUConfig
from ..errors import TaskTimeoutError
from ..sim.executor import BlockTrace
from ..sim.stats import SimResult
from . import faults
from .events import EngineEvent, FaultEvent, RetryEvent

#: Environment variable setting the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variables configuring the supervisor.
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"

SimTask = Tuple[List[BlockTrace], GPUConfig, int, str]

EmitFn = Callable[[EngineEvent], None]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit ``jobs`` request against ``REPRO_JOBS``.

    ``None`` means "use the environment default"; anything below 1 is
    clamped to the serial path.  An unparseable ``REPRO_JOBS`` falls
    back to serial *loudly*: misconfigured parallelism that silently
    runs serial looks like a performance bug and hides forever.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "")
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                print(
                    f"repro: warning: ignoring invalid {JOBS_ENV}={raw!r} "
                    "(expected an integer); running simulations serially",
                    file=sys.stderr,
                )
                jobs = 1
        else:
            jobs = 1
    return max(1, jobs)


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout budget for one supervised batch.

    ``timeout`` is the per-task wall-clock budget in seconds (``None``:
    unlimited; only enforceable in pool mode).  ``max_attempts`` counts
    every attempt including the first and the final in-process one, so
    the default of 3 means: pool try, pool retry, serial last resort.
    ``backoff`` seconds are slept between rounds, scaled by the round
    number — enough to let transient resource pressure clear without
    stalling tests.
    """

    timeout: Optional[float] = None
    max_attempts: int = 3
    backoff: float = 0.05

    @classmethod
    def from_env(cls) -> "SupervisorPolicy":
        timeout: Optional[float] = None
        raw = os.environ.get(TASK_TIMEOUT_ENV, "")
        if raw:
            try:
                timeout = float(raw)
            except ValueError:
                print(
                    f"repro: warning: ignoring invalid {TASK_TIMEOUT_ENV}="
                    f"{raw!r} (expected seconds)",
                    file=sys.stderr,
                )
        if timeout is not None and timeout <= 0:
            timeout = None
        attempts = 3
        raw = os.environ.get(TASK_RETRIES_ENV, "")
        if raw:
            try:
                attempts = max(1, int(raw) + 1)
            except ValueError:
                print(
                    f"repro: warning: ignoring invalid {TASK_RETRIES_ENV}="
                    f"{raw!r} (expected an integer)",
                    file=sys.stderr,
                )
        return cls(timeout=timeout, max_attempts=attempts)


@dataclasses.dataclass
class TaskOutcome:
    """Terminal state of one supervised task."""

    result: Optional[SimResult] = None
    error: Optional[BaseException] = None
    attempts: int = 0
    timed_out: bool = False
    retried: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def _simulate_task(task: SimTask) -> SimResult:
    traces, config, tlp, scheduler = task
    from ..sim.gpu import simulate_traces

    return simulate_traces(traces, config, tlp, scheduler=scheduler)


def _supervised_task(payload: Tuple[SimTask, str, int]) -> SimResult:
    """Pool-worker entry: fault injection point, then the simulation."""
    task, token, attempt = payload
    faults.perturb_task(token, attempt, in_pool=True)
    return _simulate_task(task)


def _retryable(error: BaseException) -> bool:
    """Whether a failed attempt is worth retrying.

    Infrastructure failures (timeouts, broken pools, injected transient
    faults, OS-level errors) are transient; deterministic Python
    exceptions out of the simulator are not — the same inputs will fail
    the same way, and the ``fail`` injection kind models exactly that.
    """
    if isinstance(error, faults.InjectedFault):
        return error.fault_kind != "fail"
    if isinstance(error, TaskTimeoutError):
        return True
    try:
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(error, BrokenProcessPool):
            return True
    except ImportError:  # pragma: no cover
        pass
    return isinstance(error, OSError)


def _fail_reason(error: BaseException, timed_out: bool) -> str:
    if timed_out:
        return "timeout"
    if isinstance(error, faults.InjectedFault):
        return error.fault_kind
    try:
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(error, BrokenProcessPool):
            return "pool-broken"
    except ImportError:  # pragma: no cover
        pass
    return "crash"


def _record_fault(error: BaseException, emit: Optional[EmitFn]) -> None:
    if emit and isinstance(error, faults.InjectedFault):
        emit(
            FaultEvent(
                fault=error.fault_kind,
                token=error.token,
                attempt=error.attempt,
            )
        )


def _pool_round(
    tasks: Sequence[SimTask],
    pending: List[int],
    tokens: Sequence[str],
    outcomes: List[TaskOutcome],
    jobs: int,
    attempt: int,
    timeout: Optional[float],
) -> Tuple[List[int], bool]:
    """One pool attempt over ``pending``; returns (still_failed, pool_ok).

    ``pool_ok=False`` means the pool could not even be created (no
    fork in this sandbox) and the caller should go serial for good.
    """
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    except (OSError, ImportError, PermissionError):
        return list(pending), False

    futures = {}
    try:
        for i in pending:
            futures[i] = pool.submit(
                _supervised_task, (tasks[i], tokens[i], attempt)
            )
    except BrokenProcessPool:
        # The pool died during submission; everything retries.
        pool.shutdown(wait=False)
        for i in pending:
            out = outcomes[i]
            out.attempts = attempt
            out.error = BrokenProcessPool("pool broke during submission")
        return list(pending), True

    failed: List[int] = []
    abandoned = False
    for i in pending:
        out = outcomes[i]
        out.attempts = attempt
        out.timed_out = False
        try:
            out.result = futures[i].result(timeout=timeout)
            out.error = None
        except FuturesTimeout:
            futures[i].cancel()
            out.error = TaskTimeoutError(
                f"simulation task exceeded {timeout:.3g}s wall clock"
            )
            out.timed_out = True
            failed.append(i)
            abandoned = True  # a hung worker may still hold the slot
        except BrokenProcessPool as err:
            out.error = err
            failed.append(i)
        except BaseException as err:  # worker exception (incl. injected)
            out.error = err
            failed.append(i)
    # A timed-out worker cannot be interrupted; waiting on shutdown
    # would serialize behind the hang.  Abandon the pool (its processes
    # exit once their current task finishes) and let the retry round
    # build a fresh one.
    pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
    return failed, True


def run_supervised(
    tasks: Sequence[SimTask],
    jobs: int = 1,
    policy: Optional[SupervisorPolicy] = None,
    tokens: Optional[Sequence[str]] = None,
    emit: Optional[EmitFn] = None,
) -> List[TaskOutcome]:
    """Run a batch under supervision; one terminal outcome per task.

    Never raises for task failures — each :class:`TaskOutcome` carries
    either a result or the last attempt's error, and the caller decides
    whether to degrade, report, or raise.
    """
    policy = policy or SupervisorPolicy.from_env()
    if tokens is None:
        tokens = [f"task{i}" for i in range(len(tasks))]
    outcomes = [TaskOutcome() for _ in tasks]
    pending = list(range(len(tasks)))
    pool_ok = jobs > 1
    attempt = 0
    while pending and attempt < policy.max_attempts:
        attempt += 1
        last = attempt >= policy.max_attempts
        if pool_ok and not last:
            failed, pool_ok = _pool_round(
                tasks, pending, tokens, outcomes, jobs, attempt,
                policy.timeout,
            )
            if not pool_ok:
                # No pool in this environment: the round ran nothing.
                # Fall through to a serial attempt without burning the
                # retry budget on infrastructure that can never work.
                attempt -= 1
                continue
        else:
            failed = []
            for i in pending:
                out = outcomes[i]
                out.attempts = attempt
                try:
                    faults.perturb_task(tokens[i], attempt, in_pool=False)
                    out.result = _simulate_task(tasks[i])
                    out.error = None
                except BaseException as err:
                    out.error = err
                    failed.append(i)

        retry = []
        for i in failed:
            out = outcomes[i]
            assert out.error is not None
            _record_fault(out.error, emit)
            will_retry = not last and _retryable(out.error)
            if emit:
                emit(
                    RetryEvent(
                        token=tokens[i],
                        attempt=attempt,
                        reason=_fail_reason(out.error, out.timed_out),
                        final=not will_retry,
                        error=type(out.error).__name__,
                    )
                )
            if will_retry:
                out.retried = True
                retry.append(i)
        pending = retry
        if pending and policy.backoff > 0:
            time.sleep(policy.backoff * attempt)
    return outcomes


def run_simulations(
    tasks: Sequence[SimTask],
    jobs: int = 1,
    policy: Optional[SupervisorPolicy] = None,
    tokens: Optional[Sequence[str]] = None,
    emit: Optional[EmitFn] = None,
) -> List[SimResult]:
    """Run a batch of simulation tasks, results in input order.

    The strict interface: the first task that still fails after the
    supervisor's retry budget raises its error.  Callers that can
    degrade per-point use :func:`run_supervised` directly.
    """
    outcomes = run_supervised(
        tasks, jobs=jobs, policy=policy, tokens=tokens, emit=emit
    )
    results: List[SimResult] = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        assert outcome.result is not None
        results.append(outcome.result)
    return results
