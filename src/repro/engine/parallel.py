"""Process-pool fan-out for independent simulation points.

Design-space sweeps (TLP profiling, candidate evaluation) simulate many
independent points over the same traces — embarrassingly parallel work.
:func:`run_simulations` executes a batch either serially (the default,
``jobs=1``) or on a ``concurrent.futures`` process pool, preserving
input order so the two paths are interchangeable; the timing simulator
is deterministic, so results are bit-identical either way.

The worker count comes from the ``REPRO_JOBS`` environment variable or
the CLI's ``--jobs`` flag.  If a pool cannot be created (restricted
sandboxes) the batch silently falls back to the serial path.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from ..arch.config import GPUConfig
from ..sim.executor import BlockTrace
from ..sim.stats import SimResult

#: Environment variable setting the default worker count.
JOBS_ENV = "REPRO_JOBS"

SimTask = Tuple[List[BlockTrace], GPUConfig, int, str]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit ``jobs`` request against ``REPRO_JOBS``.

    ``None`` means "use the environment default"; anything below 1 is
    clamped to the serial path.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _simulate_task(task: SimTask) -> SimResult:
    traces, config, tlp, scheduler = task
    from ..sim.gpu import simulate_traces

    return simulate_traces(traces, config, tlp, scheduler=scheduler)


def run_simulations(tasks: Sequence[SimTask], jobs: int = 1) -> List[SimResult]:
    """Run a batch of simulation tasks, results in input order."""
    if jobs <= 1 or len(tasks) <= 1:
        return [_simulate_task(task) for task in tasks]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            return list(pool.map(_simulate_task, tasks))
    except (OSError, ImportError, PermissionError):
        # No process pool available (sandboxed interpreter): serial path.
        return [_simulate_task(task) for task in tasks]
