"""Structured error taxonomy for the whole pipeline.

Historically each layer raised its own ad-hoc exception —
:class:`~repro.ptx.parser.PTXParseError`,
:class:`~repro.ptx.verifier.VerificationError`,
:class:`~repro.regalloc.allocator.InsufficientRegistersError`,
:class:`~repro.sim.executor.DivergentBranchError`,
:class:`~repro.sim.cache.MSHRFullError` — and whatever reached the CLI
surfaced as a raw traceback.  The supervised execution layer needs one
vocabulary to make retry/degrade/abort decisions, and the CLI needs
stable exit codes, so every failure is routed into this tree at the
engine boundary (:func:`classify_error`):

``ReproError``
    ├── ``ParseError``       — malformed or unverifiable PTX      (exit 2)
    ├── ``AllocationError``  — no feasible register allocation    (exit 3)
    ├── ``SimulationError``  — trace generation or timing failure (exit 4)
    │      └── ``TaskTimeoutError`` — a supervised task overran
    │          ``REPRO_TASK_TIMEOUT``
    ├── ``CacheError``       — persistent-store corruption/IO     (exit 4)
    ├── ``VerificationError`` — translation validation failed     (exit 6)
    ├── ``ServiceError``     — compilation-service transport or
    │   protocol failure (daemon unreachable, malformed frame,
    │   request rejected)                                          (exit 7)
    └── ``LintError``        — ``repro lint`` found gating
        findings (at/above the ``--fail-on`` threshold)            (exit 8)

Every node carries the *context* of the failure — the app / kernel and
the ``(reg, TLP)`` design point being evaluated when it happened — so a
suite-level failure report can say *what* was lost, not just that
something raised.  Exit code 5 (partial suite failure) is not an
exception class: the suite runner returns it when some apps succeeded
and some did not.
"""

from __future__ import annotations

import builtins
from typing import Optional, Tuple

#: CLI exit codes (documented in README "Troubleshooting").
EXIT_OK = 0
EXIT_PARSE = 2
EXIT_ALLOCATION = 3
EXIT_SIMULATION = 4
EXIT_PARTIAL = 5
EXIT_VERIFY = 6
EXIT_SERVICE = 7
EXIT_LINT = 8


class ReproError(Exception):
    """Root of the structured error taxonomy.

    ``app`` names the workload (or file) being evaluated, ``kernel``
    the kernel, and ``design_point`` the ``(reg, TLP)`` coordinate —
    ``reg`` may be ``None`` when the failure is TLP-only (a profiling
    sweep point).  ``stage`` names the pipeline stage that failed.
    """

    exit_code = 1

    def __init__(
        self,
        message: str,
        app: Optional[str] = None,
        kernel: Optional[str] = None,
        design_point: Optional[Tuple[Optional[int], Optional[int]]] = None,
        stage: Optional[str] = None,
    ):
        self.app = app
        self.kernel = kernel
        self.design_point = design_point
        self.stage = stage
        super().__init__(self._decorate(message))

    def _decorate(self, message: str) -> str:
        where = []
        if self.app:
            where.append(f"app={self.app}")
        if self.kernel and self.kernel != self.app:
            where.append(f"kernel={self.kernel}")
        if self.design_point is not None:
            reg, tlp = self.design_point
            point = []
            if reg is not None:
                point.append(f"reg={reg}")
            if tlp is not None:
                point.append(f"tlp={tlp}")
            where.extend(point)
        if self.stage:
            where.append(f"stage={self.stage}")
        if where:
            return f"{message} [{', '.join(where)}]"
        return message

    @property
    def kind(self) -> str:
        """Machine-readable taxonomy label (used in failure reports)."""
        return type(self).__name__

    def to_dict(self) -> dict:
        """JSON-ready rendering for ``--report-json`` failure reports."""
        return {
            "kind": self.kind,
            "message": str(self),
            "app": self.app,
            "kernel": self.kernel,
            "design_point": list(self.design_point)
            if self.design_point is not None
            else None,
            "stage": self.stage,
            "exit_code": self.exit_code,
        }


class ParseError(ReproError):
    """PTX text could not be parsed or failed verification."""

    exit_code = EXIT_PARSE


class AllocationError(ReproError):
    """No feasible register allocation for the requested limit."""

    exit_code = EXIT_ALLOCATION


class SimulationError(ReproError):
    """Trace generation or timing simulation failed."""

    exit_code = EXIT_SIMULATION


class TaskTimeoutError(SimulationError, builtins.TimeoutError):
    """A supervised simulation task overran its wall-clock budget.

    Subclasses the builtin ``TimeoutError`` as well, so generic
    ``except TimeoutError`` handlers still see it.
    """


class CacheError(ReproError):
    """The persistent result store misbehaved (corruption, IO)."""

    exit_code = EXIT_SIMULATION


class VerificationError(ReproError):
    """Translation validation found a miscompile (``repro verify``,
    ``--verify``).

    Carries the full list of typed
    :class:`~repro.verify.diagnostics.Diagnostic` findings so suite
    failure reports preserve the rule codes, not just a message.  Not
    to be confused with the legacy
    :class:`repro.ptx.verifier.VerificationError` (a ``ValueError``
    subclass), which :func:`classify_error` maps to :class:`ParseError`
    because it fires at load time.
    """

    exit_code = EXIT_VERIFY

    def __init__(self, message: str, diagnostics=None, **context):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message, **context)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        data["rules"] = sorted({d.rule for d in self.diagnostics})
        return data


class ServiceError(ReproError):
    """The compilation service misbehaved at the transport or protocol
    layer: the daemon is unreachable, a frame failed validation, the
    queue rejected the request past the client's retry budget, or the
    connection died mid-reply.

    Job-level failures are *not* ``ServiceError``s: a ``crat`` job that
    hits an infeasible allocation travels back to the client as its
    original taxonomy kind and exit code, exactly as the one-shot CLI
    would have reported it.
    """

    exit_code = EXIT_SERVICE

    def __init__(self, message: str, retry_after: Optional[float] = None,
                 **context):
        self.retry_after = retry_after
        super().__init__(message, **context)


class LintError(ReproError):
    """Static-analysis lint found findings that gate the run.

    Raised by ``repro lint`` (and ``--lint`` on the main commands) when
    the report contains findings at or above the ``--fail-on``
    threshold.  Like :class:`VerificationError` it carries the typed
    :class:`~repro.verify.diagnostics.Diagnostic` list so callers keep
    the rule codes; the distinct exit code (8) lets CI distinguish
    "the kernel is suspicious" from "the kernel is miscompiled".
    """

    exit_code = EXIT_LINT

    def __init__(self, message: str, diagnostics=None, **context):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message, **context)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        data["rules"] = sorted({d.rule for d in self.diagnostics})
        return data


def classify_error(
    exc: BaseException,
    app: Optional[str] = None,
    kernel: Optional[str] = None,
    design_point: Optional[Tuple[Optional[int], Optional[int]]] = None,
    stage: Optional[str] = None,
) -> ReproError:
    """Route an arbitrary exception into the taxonomy with context.

    Already-classified errors pass through unchanged (context is *not*
    overwritten — the innermost frame knows best).  The legacy ad-hoc
    exceptions map onto their natural branches; anything unrecognized
    becomes a generic :class:`SimulationError`, which is the only thing
    that can go wrong past the compile stages.

    The mapping imports lazily so this module stays import-cycle-free
    (``repro.errors`` must be importable from every layer).
    """
    if isinstance(exc, ReproError):
        return exc

    from .ptx.parser import PTXParseError
    from .ptx.verifier import VerificationError as LegacyVerificationError
    from .regalloc.allocator import InsufficientRegistersError
    from .service.protocol import ProtocolError
    from .sim.cache import MSHRFullError
    from .sim.executor import DivergentBranchError

    context = dict(
        app=app, kernel=kernel, design_point=design_point, stage=stage
    )
    if isinstance(exc, ProtocolError):
        # Wire-level damage (truncated frame, oversized or malformed
        # JSON) is a transport failure: exit 7, never a JSON traceback.
        err = ServiceError(f"protocol violation: {exc}", **context)
        err.__cause__ = exc
        return err
    if isinstance(exc, (PTXParseError, LegacyVerificationError)):
        cls = ParseError
    elif isinstance(exc, InsufficientRegistersError):
        cls = AllocationError
    elif isinstance(exc, builtins.TimeoutError):
        cls = TaskTimeoutError
    elif isinstance(exc, (MSHRFullError, DivergentBranchError)):
        cls = SimulationError
    else:
        cls = SimulationError
    err = cls(f"{type(exc).__name__}: {exc}", **context)
    err.__cause__ = exc
    return err


__all__ = [
    "EXIT_ALLOCATION",
    "EXIT_LINT",
    "EXIT_OK",
    "EXIT_PARSE",
    "EXIT_PARTIAL",
    "EXIT_SERVICE",
    "EXIT_SIMULATION",
    "EXIT_VERIFY",
    "AllocationError",
    "CacheError",
    "LintError",
    "ParseError",
    "ReproError",
    "ServiceError",
    "SimulationError",
    "TaskTimeoutError",
    "VerificationError",
    "classify_error",
]
