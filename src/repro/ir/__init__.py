"""Declarative pattern-rewrite infrastructure over the PTX-subset IR.

The optimization passes in :mod:`repro.opt` are expressed as
:class:`RewritePattern` subclasses — pure matchers from an immutable
:class:`InstrWindow` (plus cached CFG/liveness/loop context) to a
declarative :class:`Rewrite` — applied through one audited mutation
API (:class:`Rewriter`) by a :class:`GreedyRewriteDriver` that iterates
pattern sets to a fixpoint with per-pattern counters and a provenance
trace.  Every applied rewrite can be individually translation-validated
by :func:`repro.verify.verify_pass`, replacing whole-pass snapshot
diffs with per-edit checks.

:mod:`repro.ir.pipeline` adds the named pass registry behind the CLI's
``--passes`` flag and the pipeline component of cache/dedup keys.
"""

from .driver import (
    DriverResult,
    GreedyRewriteDriver,
    RewriteApplication,
    RewriteBudgetWarning,
)
from .pipeline import (
    DEFAULT_PASSES,
    PIPELINE_SCHEMA_VERSION,
    PipelineRunResult,
    available_passes,
    parse_passes,
    pipeline_signature,
    run_pipeline,
)
from .rewrite import Rewrite, RewriteError, RewritePattern, Rewriter, Splice
from .view import InstrWindow, RewriteContext

__all__ = [
    "DEFAULT_PASSES",
    "DriverResult",
    "GreedyRewriteDriver",
    "InstrWindow",
    "PIPELINE_SCHEMA_VERSION",
    "PipelineRunResult",
    "Rewrite",
    "RewriteApplication",
    "RewriteBudgetWarning",
    "RewriteContext",
    "RewriteError",
    "RewritePattern",
    "Rewriter",
    "Splice",
    "available_passes",
    "parse_passes",
    "pipeline_signature",
    "run_pipeline",
]
