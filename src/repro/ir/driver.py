"""Greedy fixpoint rewrite driver with provenance and per-rewrite
translation validation.

The driver sweeps the kernel in program order, offering each position
to its patterns in priority (list) order.  The first pattern that
matches has its :class:`~repro.ir.rewrite.Rewrite` applied through the
audited :class:`~repro.ir.rewrite.Rewriter`; the analysis context is
rebuilt and the sweep resumes *at the same position* (erasures shift
the next instruction in; replacements no longer match, so re-offering
is cheap and keeps the work-list implicit).  A sweep that applies no
rewrite is the fixpoint.

Every application is recorded as a :class:`RewriteApplication` —
pattern name, anchor instruction, before/after text — and, when
``verify`` is on, individually checked with
:func:`repro.verify.verify_pass` in the pattern's declared mode, so a
single bad rewrite is caught at its application site instead of being
smeared across a whole-pass snapshot diff.

Budget exhaustion (sweeps or rewrites) is never silent: the driver
emits a structured :class:`RewriteBudgetWarning` and reports
``converged=False``.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import Counter
from typing import List, Optional, Sequence

from ..ptx.module import Kernel
from .rewrite import Rewrite, RewritePattern, Rewriter
from .view import InstrWindow, RewriteContext


class RewriteBudgetWarning(UserWarning):
    """The driver hit a sweep/rewrite budget before reaching a fixpoint.

    Structured: carries the kernel name, the budget that tripped, and
    the application count, so callers (and tests) can filter on more
    than a message substring.
    """

    def __init__(self, kernel: str, budget: str, limit: int, applied: int):
        self.kernel = kernel
        self.budget = budget
        self.limit = limit
        self.applied = applied
        super().__init__(
            f"rewrite driver stopped before fixpoint on kernel "
            f"{kernel!r}: {budget} budget of {limit} exhausted after "
            f"{applied} applied rewrite(s)"
        )


@dataclasses.dataclass(frozen=True)
class RewriteApplication:
    """Provenance record of one applied rewrite."""

    pattern: str
    anchor: int
    before: str
    after: str
    sweep: int
    note: str = ""
    metadata: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class DriverResult:
    """Outcome of one driver run."""

    kernel: Kernel
    applications: List[RewriteApplication]
    counters: "Counter[str]"
    sweeps: int
    converged: bool

    @property
    def applied(self) -> int:
        return len(self.applications)


def _render_span(ctx: RewriteContext, rewrite: Rewrite) -> str:
    parts = []
    n = len(ctx)
    for sp in rewrite.splices:
        parts.extend(
            str(ctx.instructions[p])
            for p in range(sp.start, min(sp.start + sp.length, n))
        )
    return "; ".join(parts)


def _render_replacement(rewrite: Rewrite) -> str:
    parts = []
    for sp in rewrite.splices:
        parts.extend(str(inst) for inst in sp.replacement)
    return "; ".join(parts)


class GreedyRewriteDriver:
    """Iterates a pattern set over a kernel to a fixpoint.

    ``max_sweeps`` bounds full program-order passes (a pass framework's
    "iterations"); ``max_rewrites`` bounds total applications and is
    the safety net against a pattern that matches its own output.
    ``warn_on_budget=False`` silences the structured warning for
    callers that intentionally run a bounded number of sweeps (e.g. the
    single-sweep legacy copy-prop semantics).
    """

    def __init__(
        self,
        patterns: Sequence[RewritePattern],
        max_sweeps: int = 32,
        max_rewrites: int = 100_000,
        verify: bool = False,
        warn_on_budget: bool = True,
    ):
        self.patterns = list(patterns)
        self.max_sweeps = max_sweeps
        self.max_rewrites = max_rewrites
        self.verify = verify
        self.warn_on_budget = warn_on_budget

    def run(self, kernel: Kernel) -> DriverResult:
        if self.verify:
            from ..verify import verify_pass
        current = kernel.copy()
        applications: List[RewriteApplication] = []
        counters: "Counter[str]" = Counter()
        sweeps = 0
        converged = False

        def exhausted(budget: str, limit: int) -> None:
            if self.warn_on_budget:
                warnings.warn(
                    RewriteBudgetWarning(
                        kernel.name, budget, limit, len(applications)
                    ),
                    stacklevel=3,
                )

        while sweeps < self.max_sweeps:
            sweeps += 1
            ctx = RewriteContext(current)
            pos = 0
            applied_in_sweep = 0
            while pos < len(ctx):
                rewrite: Optional[Rewrite] = None
                pattern: Optional[RewritePattern] = None
                window = InstrWindow(ctx, pos)
                for candidate in self.patterns:
                    rewrite = candidate.match(window, ctx)
                    if rewrite is not None:
                        pattern = candidate
                        break
                if rewrite is None or pattern is None:
                    pos += 1
                    continue
                if len(applications) >= self.max_rewrites:
                    exhausted("rewrite", self.max_rewrites)
                    return DriverResult(
                        current, applications, counters, sweeps, False
                    )
                before_text = _render_span(ctx, rewrite)
                new_kernel = Rewriter(current).apply(rewrite)
                if self.verify:
                    verify_pass(
                        current,
                        new_kernel,
                        pattern.name,
                        compare_effects=pattern.verify_mode == "exact",
                    ).raise_if_errors()
                applications.append(
                    RewriteApplication(
                        pattern=pattern.name,
                        anchor=rewrite.anchor,
                        before=before_text,
                        after=_render_replacement(rewrite),
                        sweep=sweeps,
                        note=rewrite.note,
                        metadata=dict(rewrite.metadata),
                    )
                )
                counters[pattern.name] += 1
                applied_in_sweep += 1
                current = new_kernel
                ctx = RewriteContext(current)
                # Stay at the same position: erasures shift the next
                # instruction in, replacements re-offer harmlessly.
            if applied_in_sweep == 0:
                converged = True
                break
        if not converged:
            exhausted("sweep", self.max_sweeps)
        return DriverResult(current, applications, counters, sweeps, converged)
