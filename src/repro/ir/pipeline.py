"""Pass-pipeline registry and the ``--passes`` configuration surface.

Maps stable pass names (``copy-prop``, ``dce``, ``bypass``,
``mlp-sched``, ``minreg-sched``, ``unroll``) to rewrite-pattern
factories and runs a comma-separated pipeline spec through the
:class:`~repro.ir.driver.GreedyRewriteDriver`, one driver per stage.

The spec string is part of every cache/dedup identity downstream:
:data:`PIPELINE_SCHEMA_VERSION` versions the *semantics* of the passes
(bump it whenever a pass's output changes for the same input), and
:func:`pipeline_signature` canonicalizes a spec for inclusion in engine
cache keys and service single-flight signatures so two runs with
different ``--passes`` can never alias to one cached result.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from ..errors import ParseError
from ..ptx.module import Kernel
from .driver import DriverResult, GreedyRewriteDriver
from .rewrite import RewritePattern

#: Bump when any registered pass produces different output for the same
#: input kernel; folded into the engine cache schema
#: (``repro.engine.cache.cache_schema_version``) so stale entries miss.
PIPELINE_SCHEMA_VERSION = 1

#: The pipeline applied when ``--passes`` is not given: empty — the
#: kernel is evaluated exactly as written, matching the historical CLI
#: behaviour where the cleanup passes were opt-in library calls.
DEFAULT_PASSES = ""


@dataclasses.dataclass(frozen=True)
class PassSpec:
    """One registry entry: a named, self-describing pattern factory."""

    name: str
    description: str
    factory: Callable[[], RewritePattern]
    max_sweeps: int = 32


def _registry() -> Dict[str, PassSpec]:
    # Lazy import: repro.opt builds its passes on repro.ir, so the
    # registry must not import repro.opt at module-import time.
    from ..opt.bypass import BypassPattern
    from ..opt.copy_prop import CopyPropPattern
    from ..opt.dce import DCEPattern
    from ..opt.minreg import MinRegSchedPattern
    from ..opt.schedule import MlpSchedPattern
    from ..opt.unroll import UnrollPattern

    specs = [
        PassSpec(
            "copy-prop",
            "propagate register copies within basic blocks",
            CopyPropPattern,
        ),
        PassSpec(
            "dce",
            "delete definitions that are never observed",
            DCEPattern,
        ),
        PassSpec(
            "bypass",
            "mark streaming global loads .cg (L1 bypass)",
            BypassPattern,
        ),
        PassSpec(
            "mlp-sched",
            "hoist independent loads for memory-level parallelism",
            MlpSchedPattern,
        ),
        PassSpec(
            "minreg-sched",
            "reorder blocks to minimize MaxLive (register pressure)",
            MinRegSchedPattern,
        ),
        PassSpec(
            "unroll",
            "partially unroll counted innermost loops (factor 2)",
            UnrollPattern,
        ),
    ]
    return {spec.name: spec for spec in specs}


def available_passes() -> List[str]:
    """Registered pass names, in registry (documentation) order."""
    return list(_registry().keys())


def parse_passes(spec: str) -> List[str]:
    """Split and validate a ``--passes`` spec.

    Accepts a comma-separated list of registered pass names (blank
    entries ignored, repeats allowed — a pipeline may legitimately run
    ``dce`` twice).  Unknown names raise :class:`repro.errors.ParseError`
    (CLI exit code 2): a typo must never silently evaluate the wrong
    pipeline.
    """
    registry = _registry()
    names: List[str] = []
    for part in (spec or "").split(","):
        name = part.strip()
        if not name:
            continue
        if name not in registry:
            raise ParseError(
                f"unknown optimization pass {name!r}; available: "
                + ", ".join(registry),
                stage="passes",
            )
        names.append(name)
    return names


def pipeline_signature(spec: str) -> str:
    """Canonical form of a pipeline spec for cache/dedup identities.

    Whitespace and blank entries are normalized away; order and
    repetition are preserved (they change the output kernel).  Raises
    :class:`~repro.errors.ParseError` on unknown names, so a signature
    is always computed from a valid pipeline.
    """
    return ",".join(parse_passes(spec))


@dataclasses.dataclass
class PipelineRunResult:
    """Outcome of running a pipeline spec over one kernel."""

    kernel: Kernel
    stages: List[Tuple[str, DriverResult]]

    @property
    def total_applied(self) -> int:
        return sum(result.applied for _, result in self.stages)


def run_pipeline(
    kernel: Kernel, spec: str, verify: bool = False
) -> PipelineRunResult:
    """Run the pipeline named by ``spec`` (see :func:`parse_passes`).

    Each stage is one :class:`GreedyRewriteDriver` over that pass's
    pattern; with ``verify``, every individual rewrite is translation-
    validated (:func:`repro.verify.verify_pass`) in the pattern's
    declared mode, raising :class:`repro.errors.VerificationError` at
    the first bad rewrite.
    """
    registry = _registry()
    current = kernel
    stages: List[Tuple[str, DriverResult]] = []
    for name in parse_passes(spec):
        pass_spec = registry[name]
        driver = GreedyRewriteDriver(
            [pass_spec.factory()],
            max_sweeps=pass_spec.max_sweeps,
            verify=verify,
        )
        result = driver.run(current)
        stages.append((name, result))
        current = result.kernel
    return PipelineRunResult(kernel=current, stages=stages)
