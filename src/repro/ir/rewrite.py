"""Rewrite descriptions and the audited mutation API.

A :class:`RewritePattern` matches at an instruction window and returns
a :class:`Rewrite` — a declarative set of body *splices* (replace /
erase / insert) anchored at the match position.  The only way a rewrite
reaches a kernel is :meth:`Rewriter.apply`, which audits the splice set
(in range, non-overlapping, never crossing a label) and produces a new
kernel, leaving the input untouched.  Patterns therefore cannot corrupt
a kernel silently: every malformed edit fails loudly as a
:class:`RewriteError` at application time, and every applied edit is a
single well-defined delta the driver can hand to the translation
validator.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ptx.instruction import Instruction, Label
from ..ptx.module import Kernel
from .view import InstrWindow, RewriteContext


class RewriteError(RuntimeError):
    """A pattern produced a malformed rewrite (audit failure)."""


@dataclasses.dataclass(frozen=True)
class Splice:
    """Replace ``length`` instructions starting at global position
    ``start`` with ``replacement`` (``length == 0`` inserts)."""

    start: int
    length: int
    replacement: Tuple[Instruction, ...]


class Rewrite:
    """A declarative edit produced by one pattern match.

    ``anchor`` is the global instruction position the pattern matched
    at (provenance); ``note`` is a human-readable description; and
    ``metadata`` carries pattern-specific counters (e.g. how many uses
    copy propagation rewrote) that the driver accumulates.
    """

    def __init__(self, anchor: int, note: str = ""):
        self.anchor = anchor
        self.note = note
        self.metadata: Dict[str, Any] = {}
        self._splices: List[Splice] = []

    # ------------------------------------------------------------------
    # Edit builders.
    # ------------------------------------------------------------------
    def replace(self, pos: int, *instructions: Instruction) -> "Rewrite":
        """Replace the instruction at ``pos`` with ``instructions``."""
        return self.splice(pos, 1, instructions)

    def erase(self, pos: int) -> "Rewrite":
        """Erase the instruction at ``pos``."""
        return self.splice(pos, 1, ())

    def insert_before(self, pos: int, *instructions: Instruction) -> "Rewrite":
        """Insert ``instructions`` immediately before ``pos``."""
        return self.splice(pos, 0, instructions)

    def splice(
        self, start: int, length: int, replacement: Sequence[Instruction]
    ) -> "Rewrite":
        """Replace ``length`` instructions at ``start`` with ``replacement``."""
        if start < 0 or length < 0:
            raise RewriteError(
                f"splice bounds must be non-negative: start={start} length={length}"
            )
        for item in replacement:
            if not isinstance(item, Instruction):
                raise RewriteError(
                    f"splice replacement must be instructions, got {type(item).__name__}"
                )
        self._splices.append(Splice(start, length, tuple(replacement)))
        return self

    @property
    def splices(self) -> List[Splice]:
        return sorted(self._splices, key=lambda s: s.start)

    @property
    def is_empty(self) -> bool:
        return not self._splices


class RewritePattern:
    """Base class for declarative rewrite patterns.

    Subclasses set :attr:`name` (the registry / provenance / verifier
    stage name) and :attr:`verify_mode` (``"exact"`` for effect-summary
    preservation, ``"structure"`` for passes that legitimately change
    the static event sequence — see ``repro.verify.pipeline``), and
    implement :meth:`match`.
    """

    name: str = "pattern"
    verify_mode: str = "exact"

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        """Return a :class:`Rewrite` anchored at ``window.pos``, or
        ``None`` if the pattern does not apply there."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Rewriter:
    """Applies one :class:`Rewrite` to a kernel through a single audited
    path; the input kernel is never mutated."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    def apply(self, rewrite: Rewrite) -> Kernel:
        """Validate ``rewrite`` against the kernel and return the edited
        copy.  Raises :class:`RewriteError` on any audit failure."""
        splices = rewrite.splices
        if not splices:
            raise RewriteError(
                f"empty rewrite at anchor {rewrite.anchor}: a matched "
                "pattern must describe at least one edit"
            )
        n = sum(1 for item in self.kernel.body if isinstance(item, Instruction))
        previous_end = -1
        previous_start = -1
        for sp in splices:
            if sp.start + sp.length > n or sp.start > n:
                raise RewriteError(
                    f"splice [{sp.start}, {sp.start + sp.length}) out of "
                    f"range for kernel with {n} instructions"
                )
            if sp.start == previous_start or sp.start < previous_end:
                raise RewriteError(
                    f"overlapping splices at position {sp.start}"
                )
            previous_start = sp.start
            previous_end = sp.start + sp.length

        by_start = {sp.start: sp for sp in splices}
        new_body: List[Any] = []
        position = 0
        skip_until = -1
        for item in self.kernel.body:
            if isinstance(item, Label):
                if position < skip_until:
                    raise RewriteError(
                        f"splice ending at {skip_until} crosses label "
                        f"{item.name!r} at position {position}"
                    )
                new_body.append(item)
                continue
            if position < skip_until:
                position += 1
                continue
            sp = by_start.get(position)
            if sp is not None:
                new_body.extend(sp.replacement)
                if sp.length == 0:
                    new_body.append(item)
                    position += 1
                else:
                    skip_until = position + sp.length
                    position += 1
                continue
            new_body.append(item)
            position += 1
        # Pure insertions at the end of the body (start == n).
        sp = by_start.get(position)
        if sp is not None:
            new_body.extend(sp.replacement)

        out = self.kernel.copy()
        out.body = new_body
        return out
