"""Immutable instruction views for the rewrite driver.

Patterns never see the mutable :class:`~repro.ptx.module.Kernel`
directly.  They match against an :class:`InstrWindow` — one instruction
position inside a :class:`RewriteContext` that exposes the kernel, its
CFG, liveness, loops, and a generic analysis memo.  All analyses are
computed lazily and cached for the lifetime of the context; the driver
discards the context after every applied rewrite, so a pattern can
trust that whatever it reads describes the *current* kernel.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cfg.graph import CFG, BasicBlock
from ..cfg.liveness import LivenessInfo
from ..cfg.loops import Loop, find_loops
from ..ptx.instruction import Instruction
from ..ptx.module import Kernel


class RewriteContext:
    """Read-only analysis view of one kernel revision.

    The context is rebuilt by the driver after each applied rewrite, so
    every cached analysis (CFG, liveness, loops, pattern-specific memos
    via :meth:`cached`) is always consistent with :attr:`kernel`.
    Patterns must treat everything reachable from here as immutable —
    mutation goes through :class:`repro.ir.rewrite.Rewriter` only.
    """

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self._instructions: Optional[Tuple[Instruction, ...]] = None
        self._cfg: Optional[CFG] = None
        self._liveness: Optional[LivenessInfo] = None
        self._loops: Optional[List[Loop]] = None
        self._block_of_pos: Optional[Dict[int, BasicBlock]] = None
        self._memo: Dict[Any, Any] = {}

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """All instructions in body order (labels skipped)."""
        if self._instructions is None:
            self._instructions = tuple(self._kernel.instructions())
        return self._instructions

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = CFG(self._kernel)
        return self._cfg

    @property
    def liveness(self) -> LivenessInfo:
        if self._liveness is None:
            self._liveness = LivenessInfo(self._kernel, self.cfg)
        return self._liveness

    @property
    def loops(self) -> List[Loop]:
        if self._loops is None:
            self._loops = find_loops(self.cfg)
        return self._loops

    def block_of(self, pos: int) -> BasicBlock:
        """The basic block containing global instruction position ``pos``."""
        if self._block_of_pos is None:
            mapping: Dict[int, BasicBlock] = {}
            for block in self.cfg.blocks:
                for p, _ in block.positions():
                    mapping[p] = block
            self._block_of_pos = mapping
        return self._block_of_pos[pos]

    def cached(self, key: Any, compute: Callable[["RewriteContext"], Any]) -> Any:
        """Memoize a pattern-specific analysis for this kernel revision.

        ``key`` should be unique per analysis (conventionally the
        pattern name); ``compute`` receives the context and its result
        is cached until the driver rebuilds the context.
        """
        if key not in self._memo:
            self._memo[key] = compute(self)
        return self._memo[key]


@dataclasses.dataclass(frozen=True)
class InstrWindow:
    """One anchor position a pattern is asked to match at."""

    ctx: RewriteContext
    pos: int

    @property
    def instr(self) -> Instruction:
        return self.ctx.instructions[self.pos]

    @property
    def block(self) -> BasicBlock:
        return self.ctx.block_of(self.pos)

    @property
    def is_block_leader(self) -> bool:
        """Whether this is the first instruction of its basic block."""
        return self.block.start == self.pos
