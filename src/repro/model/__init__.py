"""Learned tier-0 cost model: telemetry-trained surrogate + safety gate.

The ROADMAP's tier-0 screen, ahead of the tier-1 analytical fast path
(:mod:`repro.engine.fastpath`): a pure-numpy regression surrogate that
ranks the whole ``(reg, TLP)`` staircase from the versioned static
feature vector (:mod:`repro.analysis.features`) alone — no anchor
simulation, no trace replay — and lets the fast path's simulation
budget shrink as the model's *measured* rank agreement rises.

The subsystem has a strict training/inference split:

* :mod:`repro.model.corpus` — the dataset contract: harvest
  ``(features, config, pipeline) -> cycles`` pairs from engine
  telemetry journals and live sweeps into a versioned, deduplicated
  NDJSON corpus (``repro corpus export`` / ``stats``);
* :mod:`repro.model.train` — fit the deterministic ridge regressor
  with per-app holdout metrics (``repro model train``);
* :mod:`repro.model.artifact` — the versioned, checksummed model
  artifact (``MODEL_SCHEMA_VERSION``, training-set fingerprint,
  embedded metrics; corrupted/legacy artifacts refuse to load);
* :mod:`repro.model.screen` — the inference side:
  :class:`~repro.model.screen.Tier0Screen` wired into
  :meth:`repro.engine.engine.EvaluationEngine.profile_tlp`;
* :mod:`repro.model.drift` — the online drift detector and the
  demotion state machine that guarantee the screen degrades to the
  analytical tier, never to wrong answers.
"""

from .artifact import (
    MODEL_SCHEMA_VERSION,
    ModelArtifact,
    ModelArtifactError,
    load_artifact,
    save_artifact,
)
from .corpus import (
    CORPUS_SCHEMA_VERSION,
    CorpusRecord,
    CorpusSchemaError,
    corpus_fingerprint,
    corpus_stats,
    load_corpus,
    write_corpus,
)
from .drift import DriftDetector, DriftVerdict
from .screen import ScreenState, Tier0Screen, load_screen
from .train import train_model

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "MODEL_SCHEMA_VERSION",
    "CorpusRecord",
    "CorpusSchemaError",
    "DriftDetector",
    "DriftVerdict",
    "ModelArtifact",
    "ModelArtifactError",
    "ScreenState",
    "Tier0Screen",
    "corpus_fingerprint",
    "corpus_stats",
    "load_artifact",
    "load_corpus",
    "load_screen",
    "save_artifact",
    "train_model",
    "write_corpus",
]
