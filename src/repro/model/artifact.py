"""The versioned, checksummed model artifact and its predictor.

A trained tier-0 model is one JSON file: a ridge-regression surrogate
(weights, standardization statistics, the inverse Gram matrix for
predictive uncertainty) plus the provenance the safety gate needs —
:data:`MODEL_SCHEMA_VERSION`, the feature schema it was trained
against, the training corpus fingerprint and the per-app holdout
metrics.  The file carries a checksum of its canonical payload;
:func:`load_artifact` refuses corrupted, truncated, legacy or
foreign-schema artifacts with a typed :class:`ModelArtifactError`
(never a silently-wrong predictor).

The input layout is fixed by the schema: the 30 standardized static
features (:data:`~repro.analysis.features.FEATURE_NAMES`) followed by
:data:`DERIVED_NAMES`, the design-point terms derived from ``(tlp,
grid_blocks)`` — the only part of the input that varies along one
kernel's staircase, which is what lets a single static vector rank the
whole sweep.  The regression target is ``log(cycles)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.features import FEATURE_NAMES, FEATURES_SCHEMA_VERSION
from ..errors import CacheError

#: Bump on any change to the artifact payload, the input layout or the
#: prediction semantics.  Folded into the engine cache schema tag and
#: the service single-flight signatures, so a bump invalidates every
#: result a stale model could have influenced.
MODEL_SCHEMA_VERSION = 1

#: Design-point terms appended after the standardized static features.
DERIVED_NAMES = (
    "tlp",
    "log2_tlp",
    "inv_tlp",
    "waves",
    "log2_waves",
    "tail_fraction",
)


class ModelArtifactError(CacheError):
    """A model artifact failed to load: corrupted, legacy, or foreign.

    A :class:`~repro.errors.CacheError` (exit 4): like a bad cache
    entry, a bad artifact is a persistence-layer integrity failure —
    the remedy is retraining, never best-effort use.
    """


def derived_inputs(tlp: int, grid_blocks: int) -> List[float]:
    """Design-point terms for one (tlp, grid) coordinate.

    ``waves`` is the number of sequential block waves at this TLP and
    ``tail_fraction`` the occupancy of the final partial wave — the two
    quantities that dominate how cycles scale along the staircase.
    """
    tlp = max(1, int(tlp))
    grid = max(1, int(grid_blocks))
    waves = math.ceil(grid / tlp)
    tail = grid - (waves - 1) * tlp
    return [
        float(tlp),
        math.log2(tlp + 1.0),
        1.0 / tlp,
        float(waves),
        math.log2(waves + 1.0),
        tail / float(tlp),
    ]


def input_names() -> List[str]:
    """Full input column layout: static features then derived terms."""
    return list(FEATURE_NAMES) + list(DERIVED_NAMES)


@dataclasses.dataclass(frozen=True)
class ModelArtifact:
    """An immutable trained surrogate plus its provenance."""

    schema_version: int
    features_schema_version: int
    corpus_fingerprint: str
    n_records: int
    n_kernels: int
    seed: int
    lam: float  # ridge penalty
    mean: Tuple[float, ...]  # per-column standardization mean
    std: Tuple[float, ...]  # per-column standardization std (>= eps)
    weights: Tuple[float, ...]  # len(input) + 1 (bias last)
    a_inv: Tuple[Tuple[float, ...], ...]  # (X^T X + lam I)^-1, bias incl.
    sigma2: float  # residual variance of log-cycles
    metrics: Dict[str, Any]  # embedded holdout metrics

    def __post_init__(self) -> None:
        n = len(input_names()) + 1  # + bias
        if len(self.weights) != n or len(self.mean) != n - 1:
            raise ModelArtifactError(
                f"artifact input layout mismatch: {len(self.weights) - 1} "
                f"weights for {n - 1} inputs",
                stage="model",
            )

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------
    def _design_row(self, features: Sequence[float], tlp: int,
                    grid_blocks: int) -> np.ndarray:
        raw = np.asarray(
            list(features) + derived_inputs(tlp, grid_blocks), dtype=np.float64
        )
        std = np.asarray(self.std, dtype=np.float64)
        z = (raw - np.asarray(self.mean, dtype=np.float64)) / std
        return np.concatenate([z, [1.0]])  # bias column

    def predict(
        self, features: Sequence[float], tlp: int, grid_blocks: int
    ) -> Tuple[float, float]:
        """Predicted ``log(cycles)`` and its predictive standard
        deviation for one design point."""
        row = self._design_row(features, tlp, grid_blocks)
        w = np.asarray(self.weights, dtype=np.float64)
        a_inv = np.asarray(self.a_inv, dtype=np.float64)
        mean = float(row @ w)
        var = self.sigma2 * (1.0 + float(row @ a_inv @ row))
        return mean, math.sqrt(max(var, 0.0))

    def predict_sweep(
        self, features: Sequence[float], tlps: Sequence[int], grid_blocks: int
    ) -> List[Tuple[int, float, float]]:
        """Rank a staircase: ``[(tlp, log_cycles, std), ...]`` sorted
        ascending by predicted cycles (ties broken toward higher TLP,
        matching the analytical tier's preference)."""
        out = [
            (tlp, *self.predict(features, tlp, grid_blocks)) for tlp in tlps
        ]
        return sorted(out, key=lambda item: (item[1], -item[0]))

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "features_schema_version": self.features_schema_version,
            "input_names": input_names(),
            "corpus_fingerprint": self.corpus_fingerprint,
            "n_records": self.n_records,
            "n_kernels": self.n_kernels,
            "seed": self.seed,
            "lam": self.lam,
            "mean": list(self.mean),
            "std": list(self.std),
            "weights": list(self.weights),
            "a_inv": [list(row) for row in self.a_inv],
            "sigma2": self.sigma2,
            "metrics": self.metrics,
        }


def _checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_artifact(artifact: ModelArtifact, path: str) -> str:
    """Write the artifact; returns its checksum."""
    payload = artifact.payload()
    checksum = _checksum(payload)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            {"payload": payload, "checksum": checksum},
            handle,
            sort_keys=True,
            indent=1,
        )
        handle.write("\n")
    return checksum


def load_artifact(path: str) -> ModelArtifact:
    """Load an artifact, refusing anything that cannot be trusted."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as err:
        raise ModelArtifactError(
            f"cannot read model artifact: {err}", app=path, stage="model"
        )
    except json.JSONDecodeError as err:
        raise ModelArtifactError(
            f"model artifact is not valid JSON: {err}", app=path, stage="model"
        )
    if not isinstance(data, dict) or "payload" not in data:
        raise ModelArtifactError(
            "model artifact has no payload envelope (legacy format?)",
            app=path,
            stage="model",
        )
    payload = data["payload"]
    recorded = data.get("checksum")
    actual = _checksum(payload)
    if recorded != actual:
        raise ModelArtifactError(
            f"model artifact checksum mismatch: recorded {recorded!r}, "
            f"computed {actual!r} (corrupted or hand-edited)",
            app=path,
            stage="model",
        )
    version = payload.get("schema_version")
    if version != MODEL_SCHEMA_VERSION:
        raise ModelArtifactError(
            f"model schema version mismatch: artifact is v{version}, this "
            f"build expects v{MODEL_SCHEMA_VERSION} — retrain the model",
            app=path,
            stage="model",
        )
    fversion = payload.get("features_schema_version")
    if fversion != FEATURES_SCHEMA_VERSION:
        raise ModelArtifactError(
            f"feature schema version mismatch: artifact trained against "
            f"v{fversion}, this build extracts v{FEATURES_SCHEMA_VERSION} — "
            f"retrain the model",
            app=path,
            stage="model",
        )
    if payload.get("input_names") != input_names():
        raise ModelArtifactError(
            "model artifact input layout does not match this build",
            app=path,
            stage="model",
        )
    try:
        return ModelArtifact(
            schema_version=int(version),
            features_schema_version=int(fversion),
            corpus_fingerprint=str(payload["corpus_fingerprint"]),
            n_records=int(payload["n_records"]),
            n_kernels=int(payload["n_kernels"]),
            seed=int(payload["seed"]),
            lam=float(payload["lam"]),
            mean=tuple(float(v) for v in payload["mean"]),
            std=tuple(float(v) for v in payload["std"]),
            weights=tuple(float(v) for v in payload["weights"]),
            a_inv=tuple(
                tuple(float(v) for v in row) for row in payload["a_inv"]
            ),
            sigma2=float(payload["sigma2"]),
            metrics=dict(payload["metrics"]),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise ModelArtifactError(
            f"model artifact payload is malformed: {err}",
            app=path,
            stage="model",
        )
