"""The training-corpus contract: versioned NDJSON of (features -> cycles).

One :class:`CorpusRecord` is one simulated design point: the kernel's
versioned static feature vector (:mod:`repro.analysis.features`), the
point's coordinates (TLP, grid, scheduler), the evaluation context
(config digest, ``--passes`` pipeline signature) and the realized
cycle count.  Records accumulate from two sources:

* **engine telemetry** — a long-lived engine (``repro serve`` with
  ``--telemetry-dir``, or any run under ``REPRO_TELEMETRY_DIR``)
  appends one record per *fresh* simulation to ``telemetry.ndjsonl``;
* **live sweeps** — ``repro corpus export --apps ...`` drives the
  exhaustive TLP staircase of each app through the shared engine
  (cache hits when the engine is warm) and records every point.

Dedup is by **content signature**: the digest of everything that
identifies a design point (kernel fingerprint, config, pipeline, grid,
TLP, scheduler, feature schema).  The simulator is deterministic, so
two records with the same signature are the same observation — the
corpus keeps one.

Schema discipline mirrors ``FASTPATH_SCHEMA_VERSION``: the loader
**refuses** records from another :data:`CORPUS_SCHEMA_VERSION` or
another feature schema with a typed :class:`CorpusSchemaError` instead
of silently consuming shifted columns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.features import FEATURE_NAMES, FEATURES_SCHEMA_VERSION
from ..errors import ParseError

#: Bump on any change to the record fields or their meaning.
CORPUS_SCHEMA_VERSION = 1

#: File name of the engine's append-only telemetry journal.
TELEMETRY_FILE = "telemetry.ndjsonl"


class CorpusSchemaError(ParseError):
    """A corpus record carries an incompatible schema version.

    A :class:`~repro.errors.ParseError` (exit 2): the input is
    well-formed NDJSON but belongs to a different contract revision —
    re-export the corpus under the current tool instead of retraining
    on shifted columns.
    """


@dataclasses.dataclass(frozen=True)
class CorpusRecord:
    """One (features, design point) -> cycles observation."""

    kernel: str  # kernel name (the per-app holdout group key)
    fingerprint: str  # kernel content digest
    config: str  # short digest of the full config signature
    pipeline: str  # active --passes signature ("" = none)
    grid_blocks: int
    tlp: int
    scheduler: str
    cycles: float
    features: Dict[str, float]
    source: str = "sweep"  # "sweep" | "telemetry"

    @property
    def signature(self) -> str:
        """Content signature: identifies the design point, not the
        measurement (the simulator is deterministic, so the same point
        always yields the same cycles)."""
        payload = "\x1f".join(
            (
                f"c{CORPUS_SCHEMA_VERSION}",
                f"f{FEATURES_SCHEMA_VERSION}",
                self.fingerprint,
                self.config,
                self.pipeline,
                str(self.grid_blocks),
                str(self.tlp),
                self.scheduler,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CORPUS_SCHEMA_VERSION,
            "features_schema_version": FEATURES_SCHEMA_VERSION,
            "kernel": self.kernel,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "pipeline": self.pipeline,
            "grid_blocks": self.grid_blocks,
            "tlp": self.tlp,
            "scheduler": self.scheduler,
            "cycles": self.cycles,
            "features": {n: self.features[n] for n in FEATURE_NAMES},
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusRecord":
        version = data.get("schema_version")
        if version != CORPUS_SCHEMA_VERSION:
            raise CorpusSchemaError(
                f"corpus schema version mismatch: record is v{version}, "
                f"this build expects v{CORPUS_SCHEMA_VERSION}",
                stage="corpus",
            )
        fversion = data.get("features_schema_version")
        if fversion != FEATURES_SCHEMA_VERSION:
            raise CorpusSchemaError(
                f"feature schema version mismatch: record is v{fversion}, "
                f"this build expects v{FEATURES_SCHEMA_VERSION}",
                stage="corpus",
            )
        features = {
            str(k): float(v) for k, v in dict(data["features"]).items()
        }
        missing = [n for n in FEATURE_NAMES if n not in features]
        if missing:
            raise CorpusSchemaError(
                f"corpus record is missing feature(s): {missing!r}",
                stage="corpus",
            )
        return cls(
            kernel=str(data["kernel"]),
            fingerprint=str(data["fingerprint"]),
            config=str(data["config"]),
            pipeline=str(data.get("pipeline", "")),
            grid_blocks=int(data["grid_blocks"]),
            tlp=int(data["tlp"]),
            scheduler=str(data.get("scheduler", "gto")),
            cycles=float(data["cycles"]),
            features=features,
            source=str(data.get("source", "sweep")),
        )


def dedup_records(records: Iterable[CorpusRecord]) -> List[CorpusRecord]:
    """Keep the first record per content signature, in input order."""
    seen: Dict[str, None] = {}
    out: List[CorpusRecord] = []
    for record in records:
        sig = record.signature
        if sig in seen:
            continue
        seen[sig] = None
        out.append(record)
    return out


def write_corpus(records: Iterable[CorpusRecord], path: str) -> int:
    """Write a deduplicated NDJSON corpus; returns the record count."""
    deduped = dedup_records(records)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        for record in deduped:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return len(deduped)


def load_corpus(path: str) -> List[CorpusRecord]:
    """Load (and dedup) an NDJSON corpus; refuses foreign schemas.

    Malformed JSON lines raise :class:`~repro.errors.ParseError`;
    version mismatches raise the sharper :class:`CorpusSchemaError`
    (both exit 2 at the CLI).
    """
    records: List[CorpusRecord] = []
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as err:
                    raise ParseError(
                        f"corpus line {lineno} is not valid JSON: {err}",
                        app=path,
                        stage="corpus",
                    )
                records.append(CorpusRecord.from_dict(data))
    except OSError as err:
        raise ParseError(
            f"cannot read corpus: {err}", app=path, stage="corpus"
        )
    return dedup_records(records)


def corpus_fingerprint(records: Iterable[CorpusRecord]) -> str:
    """Order-independent digest of a corpus's content signatures.

    Embedded in every trained artifact so the drift detector can tell a
    model trained on *this* corpus from a model trained on any other.
    """
    digest = hashlib.sha256()
    for sig in sorted(r.signature for r in records):
        digest.update(sig.encode("utf-8"))
    return digest.hexdigest()[:32]


def corpus_stats(records: List[CorpusRecord]) -> Dict[str, Any]:
    """JSON-ready summary (``repro corpus stats``)."""
    kernels = sorted({r.kernel for r in records})
    configs = sorted({r.config for r in records})
    pipelines = sorted({r.pipeline for r in records})
    by_source: Dict[str, int] = {}
    for r in records:
        by_source[r.source] = by_source.get(r.source, 0) + 1
    return {
        "schema_version": CORPUS_SCHEMA_VERSION,
        "features_schema_version": FEATURES_SCHEMA_VERSION,
        "records": len(records),
        "kernels": kernels,
        "n_kernels": len(kernels),
        "n_configs": len(configs),
        "pipelines": pipelines,
        "by_source": by_source,
        "fingerprint": corpus_fingerprint(records),
        "cycles_min": min((r.cycles for r in records), default=0.0),
        "cycles_max": max((r.cycles for r in records), default=0.0),
    }


# ----------------------------------------------------------------------
# Harvesting.
# ----------------------------------------------------------------------
def harvest_telemetry(directories: Iterable[str]) -> List[CorpusRecord]:
    """Read every telemetry journal under the given directories.

    Each directory may hold the journal directly
    (``<dir>/telemetry.ndjsonl``) or in per-shard subdirectories (the
    fleet's state root) — both are scanned.  Records tagged
    ``source="telemetry"``; unreadable directories are skipped (a
    telemetry journal is best-effort by construction), but *readable*
    files with foreign schemas still refuse loudly.
    """
    records: List[CorpusRecord] = []
    for directory in directories:
        paths: List[str] = []
        direct = os.path.join(directory, TELEMETRY_FILE)
        if os.path.exists(direct):
            paths.append(direct)
        if os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                nested = os.path.join(directory, name, TELEMETRY_FILE)
                if os.path.exists(nested):
                    paths.append(nested)
        for path in paths:
            for record in load_corpus(path):
                records.append(dataclasses.replace(record, source="telemetry"))
    return dedup_records(records)


def sweep_records(
    abbrs: Iterable[str],
    config_name: str = "fermi",
    engine: Optional[object] = None,
    schedulers: Tuple[str, ...] = ("gto",),
) -> List[CorpusRecord]:
    """Drive each app's exhaustive TLP staircase and record every point.

    The sweep runs through the shared engine with the fast path
    disabled (the corpus must label *every* stair, including the ones a
    screen would prune), so a warm cache (``REPRO_CACHE_DIR`` or a live
    ``repro serve``) makes this a pure harvest.  Features are extracted
    once per kernel from the same default allocation the sweep
    simulates.
    """
    from ..analysis.features import extract_features
    from ..arch import get_config
    from ..core.params import collect_resource_usage
    from ..core.throttling import default_allocation
    from ..engine import get_engine
    from ..engine.cache import config_signature, key_digest
    from ..engine.fastpath import FastPathPolicy
    from ..workloads import load_workload

    config = get_config(config_name)
    config_digest = key_digest((config_signature(config),))
    eng = engine if engine is not None else get_engine()
    exact = FastPathPolicy(top_k=None)
    records: List[CorpusRecord] = []
    for abbr in abbrs:
        workload = load_workload(abbr.upper())
        usage = collect_resource_usage(
            workload.kernel, config, default_reg=workload.default_reg
        )
        allocation = default_allocation(workload.kernel, usage)
        kernel = allocation.kernel
        features = extract_features(kernel, config=config)
        fingerprint = kernel.fingerprint()
        for scheduler in schedulers:
            profile = eng.profile_tlp(
                kernel,
                config,
                usage.max_tlp,
                grid_blocks=workload.grid_blocks,
                param_sizes=workload.param_sizes,
                scheduler=scheduler,
                policy=exact,
            )
            for tlp, sim in sorted(profile.items()):
                if getattr(sim, "estimated", False):
                    continue  # degraded estimates never label the corpus
                records.append(
                    CorpusRecord(
                        kernel=kernel.name,
                        fingerprint=fingerprint,
                        config=config_digest,
                        pipeline=getattr(eng, "pipeline", ""),
                        grid_blocks=workload.grid_blocks,
                        tlp=tlp,
                        scheduler=scheduler,
                        cycles=sim.cycles,
                        features=dict(features.values),
                        source="sweep",
                    )
                )
    return dedup_records(records)
