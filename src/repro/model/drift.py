"""Online drift detection for the tier-0 screen.

The learned screen is only allowed to shrink the simulation budget
while its predictions demonstrably track the simulator.  The detector
watches exactly that: after every completed profile sweep the engine
reports the model's predicted ranking against the realized cycles, and
the detector maintains a rolling rank-agreement window.  When the
window fills and the mean agreement falls below the floor, the verdict
flips to *demote* — sticky, by design: a drifting model stays demoted
until a new artifact is loaded, because a model that has been wrong
recently has forfeited the benefit of the doubt.

Static checks run before any observation: a feature-schema mismatch, a
training set smaller than the minimum, or a corpus fingerprint that no
longer matches the live corpus ("stale corpus") each demote
immediately.  Demotion always degrades to the analytical tier-1 screen
— never to wrong answers — so every verdict here is a performance
decision, not a correctness one.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional, Tuple

#: Rolling window length (completed sweeps).
DEFAULT_WINDOW = 8
#: Mean rank-agreement floor below which the model demotes.
DEFAULT_FLOOR = 0.75
#: Observations required before the rolling mean is trusted.
DEFAULT_MIN_OBS = 3
#: Minimum training-set size for the model to activate at all.
DEFAULT_MIN_RECORDS = 40


@dataclasses.dataclass(frozen=True)
class DriftVerdict:
    """One detector decision, with the evidence that produced it."""

    healthy: bool
    reason: str  # "" when healthy
    rolling_agreement: float
    observations: int

    def describe(self) -> str:
        if self.healthy:
            return (
                f"healthy (rolling agreement "
                f"{self.rolling_agreement:.3f} over "
                f"{self.observations} sweeps)"
            )
        return self.reason


class DriftDetector:
    """Rolling rank-agreement watchdog with sticky demotion."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        floor: float = DEFAULT_FLOOR,
        min_obs: int = DEFAULT_MIN_OBS,
        warm_agreement: Optional[float] = None,
    ):
        self.window = max(1, int(window))
        self.floor = float(floor)
        self.min_obs = max(1, int(min_obs))
        self._observations: Deque[float] = deque(maxlen=self.window)
        self._total_observed = 0
        self._demoted_reason: Optional[str] = None
        # The artifact's embedded holdout agreement seeds the window so
        # the detector has an informed prior before live evidence, but
        # seeded values never count toward min_obs — a model below the
        # floor on its own holdout demotes on the first verdict.
        self._warm_agreement = warm_agreement

    @property
    def demoted(self) -> bool:
        return self._demoted_reason is not None

    @property
    def demoted_reason(self) -> Optional[str]:
        return self._demoted_reason

    def rolling_agreement(self) -> float:
        values: List[float] = list(self._observations)
        if not values:
            return (
                self._warm_agreement
                if self._warm_agreement is not None
                else 1.0
            )
        return sum(values) / len(values)

    def demote(self, reason: str) -> DriftVerdict:
        """Force demotion (static checks, operator action)."""
        if self._demoted_reason is None:
            self._demoted_reason = reason
        return self.verdict()

    def observe(self, agreement: float) -> DriftVerdict:
        """Record one completed sweep's rank agreement and re-judge."""
        if self._demoted_reason is not None:
            return self.verdict()  # sticky: no recovery without reload
        self._observations.append(max(0.0, min(1.0, float(agreement))))
        self._total_observed += 1
        if (
            self._total_observed >= self.min_obs
            and self.rolling_agreement() < self.floor
        ):
            self._demoted_reason = (
                f"rolling rank agreement {self.rolling_agreement():.3f} "
                f"fell below floor {self.floor:.2f} after "
                f"{self._total_observed} sweeps"
            )
        return self.verdict()

    def verdict(self) -> DriftVerdict:
        return DriftVerdict(
            healthy=self._demoted_reason is None,
            reason=self._demoted_reason or "",
            rolling_agreement=self.rolling_agreement(),
            observations=self._total_observed,
        )


def static_checks(
    artifact: "object",
    features_schema_version: int,
    min_records: int = DEFAULT_MIN_RECORDS,
    live_corpus_fingerprint: Optional[str] = None,
) -> Tuple[bool, str]:
    """Pre-activation gate: ``(ok, reason)``.

    ``live_corpus_fingerprint`` is optional — when the caller knows the
    fingerprint of the corpus currently on disk (``repro bench
    --costmodel`` does), a mismatch means the artifact was trained on a
    stale corpus and the model never activates.
    """
    if getattr(artifact, "features_schema_version", None) != (
        features_schema_version
    ):
        return (
            False,
            f"feature schema mismatch: artifact v"
            f"{getattr(artifact, 'features_schema_version', '?')}, live "
            f"v{features_schema_version}",
        )
    n_records = int(getattr(artifact, "n_records", 0))
    if n_records < min_records:
        return (
            False,
            f"training set too small: {n_records} records "
            f"< minimum {min_records}",
        )
    if live_corpus_fingerprint is not None:
        trained = getattr(artifact, "corpus_fingerprint", "")
        if trained != live_corpus_fingerprint:
            return (
                False,
                f"stale corpus: artifact trained on {trained[:12]}…, live "
                f"corpus is {live_corpus_fingerprint[:12]}…",
            )
    return True, ""
