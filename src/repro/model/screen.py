"""The tier-0 screen: learned survivor selection ahead of the fast path.

:class:`Tier0Screen` sits between the analytical tier-1 screen and
simulation inside
:meth:`repro.engine.engine.EvaluationEngine.profile_tlp`.  The
analytical tier has already ranked the sweep and picked its top-K
survivors; a *healthy* learned screen re-picks them — the model ranks
the whole staircase from the kernel's static features alone and keeps
only its own top ``k_eff``, where ``k_eff`` shrinks below the
analytical K as the model's **measured** rolling rank agreement rises.
Anchors (the calibration ceiling, the MaxTLP baseline) always survive.

The safety gate is structural, not aspirational:

* the screen can only *choose which points simulate first* — the
  bracket-refinement walk still runs afterwards, so the reported
  optimum is always a simulated local minimum regardless of what the
  model predicted;
* every sweep's prediction is scored against realized cycles and fed
  to the :class:`~repro.model.drift.DriftDetector`; demotion is sticky
  and falls back to the analytical selection — the tier-1 path,
  bit-identical to running without a model;
* a per-sweep **uncertainty gate** skips the screen entirely when the
  model's predictive spread says it cannot distinguish the candidates
  (predictions closer together than their own error bars).

``state`` is the three-state machine the docs describe: ``INACTIVE``
(no artifact, or static checks failed at load), ``ACTIVE`` (screening),
``DEMOTED`` (was active, drifted, now permanently analytical until a
new artifact loads).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.features import FEATURES_SCHEMA_VERSION, extract_features
from .artifact import ModelArtifact, load_artifact
from .drift import (
    DEFAULT_MIN_RECORDS,
    DriftDetector,
    DriftVerdict,
    static_checks,
)


class ScreenState(enum.Enum):
    INACTIVE = "inactive"
    ACTIVE = "active"
    DEMOTED = "demoted"


#: Skip the screen for a sweep when the mean predictive std exceeds
#: this fraction of the prediction spread — the model cannot tell the
#: candidates apart at that point.
UNCERTAINTY_SPREAD_RATIO = 1.0

#: Rolling-agreement thresholds for shrinking the survivor budget.
SHRINK_FULL = 0.90  # >= this: k_eff = 1
SHRINK_HALF = 0.80  # >= this: k_eff = ceil(K / 2)


class Tier0Screen:
    """Stateful learned screen + drift gate for one engine."""

    def __init__(
        self,
        artifact: Optional[ModelArtifact] = None,
        detector: Optional[DriftDetector] = None,
        min_records: int = DEFAULT_MIN_RECORDS,
        live_corpus_fingerprint: Optional[str] = None,
    ):
        self.artifact = artifact
        self.state = ScreenState.INACTIVE
        self.state_reason = "no model artifact loaded"
        self._features_cache: Dict[str, List[float]] = {}
        self._pending: Dict[str, Dict[int, float]] = {}
        self.sweeps_screened = 0
        self.sweeps_skipped_uncertain = 0
        if artifact is None:
            self.detector = detector or DriftDetector()
            return
        ok, reason = static_checks(
            artifact,
            FEATURES_SCHEMA_VERSION,
            min_records=min_records,
            live_corpus_fingerprint=live_corpus_fingerprint,
        )
        warm = None
        if isinstance(artifact.metrics, dict):
            warm = artifact.metrics.get("holdout_rank_agreement")
        self.detector = detector or DriftDetector(
            warm_agreement=float(warm) if warm is not None else None
        )
        if not ok:
            self.state = ScreenState.DEMOTED
            self.state_reason = reason
            self.detector.demote(reason)
        else:
            self.state = ScreenState.ACTIVE
            self.state_reason = ""

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.state is ScreenState.ACTIVE

    def k_eff(self, analytical_k: int) -> int:
        """Survivor budget: shrinks as measured agreement rises."""
        agreement = self.detector.rolling_agreement()
        if agreement >= SHRINK_FULL:
            return 1
        if agreement >= SHRINK_HALF:
            return max(1, math.ceil(analytical_k / 2))
        return analytical_k

    # ------------------------------------------------------------------
    def screen_sweep(
        self,
        kernel: "object",
        config: "object",
        tlps: Sequence[int],
        grid_blocks: int,
        anchors: Sequence[int],
        analytical_k: int,
    ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...], int]]:
        """Pick the learned survivors for one staircase.

        Returns ``(survivors, skipped, k_eff)`` — or ``None`` when the
        screen declines (inactive, demoted, or this sweep's predictions
        are too uncertain to rank), in which case the caller keeps the
        analytical selection untouched (bit-identical fallback).
        """
        if not self.active or self.artifact is None:
            return None
        fingerprint = kernel.fingerprint()
        features = self._features_cache.get(fingerprint)
        if features is None:
            features = extract_features(kernel, config=config).vector()
            self._features_cache[fingerprint] = features
        ranked = self.artifact.predict_sweep(features, tlps, grid_blocks)
        # Uncertainty gate: if the candidates' predicted log-cycles are
        # closer together than the model's own error bars, ranking them
        # is noise — decline and let tier 1 decide.
        if len(ranked) >= 2:
            spread = ranked[-1][1] - ranked[0][1]
            mean_std = sum(r[2] for r in ranked) / len(ranked)
            if spread <= 0.0 or mean_std > spread * UNCERTAINTY_SPREAD_RATIO:
                self.sweeps_skipped_uncertain += 1
                return None
        k = max(1, min(self.k_eff(analytical_k), len(ranked)))
        keep = set(anchors)
        survivors: List[int] = []
        skipped: List[int] = []
        for i, (tlp, _, _) in enumerate(ranked):
            if i < k or tlp in keep:
                survivors.append(tlp)
            else:
                skipped.append(tlp)
        # Remember the predicted ordering so the realized cycles can
        # score it once the sweep completes.
        self._pending[kernel.name] = {tlp: lc for tlp, lc, _ in ranked}
        self.sweeps_screened += 1
        return tuple(sorted(survivors)), tuple(sorted(skipped)), k

    def observe_profile(
        self, kernel_name: str, cycles: Dict[int, float]
    ) -> Optional[DriftVerdict]:
        """Score the last prediction for this kernel against realized
        cycles; returns the verdict when it *changes* the screen state
        (i.e. this observation demoted the model), else ``None``."""
        predicted = self._pending.pop(kernel_name, None)
        if predicted is None or not self.active:
            return None
        common = sorted(set(predicted) & set(cycles))
        agreement = _pairwise(
            [predicted[t] for t in common], [cycles[t] for t in common]
        )
        verdict = self.detector.observe(agreement)
        if not verdict.healthy:
            self.state = ScreenState.DEMOTED
            self.state_reason = verdict.reason
            return verdict
        return None

    def demote(self, reason: str) -> DriftVerdict:
        """Operator/static demotion (schema bump, stale corpus...)."""
        verdict = self.detector.demote(reason)
        if self.state is ScreenState.ACTIVE:
            self.state = ScreenState.DEMOTED
            self.state_reason = reason
        return verdict

    def summary(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "reason": self.state_reason,
            "rolling_agreement": round(
                self.detector.rolling_agreement(), 4
            ),
            "sweeps_screened": self.sweeps_screened,
            "sweeps_skipped_uncertain": self.sweeps_skipped_uncertain,
            "n_records": getattr(self.artifact, "n_records", 0),
            "corpus_fingerprint": getattr(
                self.artifact, "corpus_fingerprint", ""
            ),
        }


def _pairwise(predicted: Sequence[float], actual: Sequence[float]) -> float:
    n = len(predicted)
    if n < 2:
        return 1.0
    agree = 0
    total = 0
    for i in range(n):
        for j in range(i + 1, n):
            total += 1
            sp = (predicted[j] > predicted[i]) - (predicted[j] < predicted[i])
            sa = (actual[j] > actual[i]) - (actual[j] < actual[i])
            if sp == 0 or sa == 0 or sp == sa:
                agree += 1
    return agree / total


def load_screen(
    path: str,
    min_records: int = DEFAULT_MIN_RECORDS,
    live_corpus_fingerprint: Optional[str] = None,
) -> Tier0Screen:
    """Load an artifact into a fresh screen.

    Artifact integrity failures (corruption, legacy format, schema
    mismatch) raise :class:`~repro.model.artifact.ModelArtifactError` —
    an operator explicitly pointing at a broken file should hear about
    it.  *Semantic* staleness (too few records, stale corpus) loads but
    starts DEMOTED: the engine runs, analytically, with a typed reason.
    """
    artifact = load_artifact(path)
    return Tier0Screen(
        artifact=artifact,
        min_records=min_records,
        live_corpus_fingerprint=live_corpus_fingerprint,
    )
