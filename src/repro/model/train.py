"""Deterministic ridge training with per-app holdout metrics.

The trainer is closed-form: standardize the inputs, append a bias
column and solve ``(X^T X + lam*I) w = X^T y`` for ``y = log(cycles)``.
No stochastic optimizer, no iteration order sensitivity — the same
corpus and seed always produce bit-identical weights, which is what
lets the deterministic-retrain test and the service's single-flight
signatures treat the artifact as content-addressed.

Metrics are **leave-one-app-out**: for every kernel in the corpus the
model is refit without that kernel's records and judged on how well it
ranks the held-out staircase — per-app rank agreement (the same
pairwise concordance the fast path reports), winner-match rate and
log-space RMSE.  Those holdout numbers are embedded in the artifact so
the drift detector can warm-start its expectation of the model's
accuracy before the first live observation arrives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.features import FEATURES_SCHEMA_VERSION
from ..errors import ParseError
from .artifact import (
    MODEL_SCHEMA_VERSION,
    ModelArtifact,
    derived_inputs,
    input_names,
)
from .corpus import CorpusRecord, corpus_fingerprint

#: Standard deviation floor: constant columns standardize to zero
#: instead of exploding.
_STD_EPS = 1e-9


def _design_matrix(
    records: Sequence[CorpusRecord],
) -> Tuple[np.ndarray, np.ndarray]:
    """Raw (unstandardized) inputs and log-cycle targets."""
    rows = [
        [record.features[name] for name in _static_names()]
        + derived_inputs(record.tlp, record.grid_blocks)
        for record in records
    ]
    targets = [np.log(max(record.cycles, 1.0)) for record in records]
    return np.asarray(rows, dtype=np.float64), np.asarray(
        targets, dtype=np.float64
    )


def _static_names() -> List[str]:
    from ..analysis.features import FEATURE_NAMES

    return list(FEATURE_NAMES)


def _fit(
    raw: np.ndarray, y: np.ndarray, lam: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Standardize, append bias, solve ridge; returns
    ``(mean, std, weights, a_inv, sigma2)``."""
    mean = raw.mean(axis=0)
    std = raw.std(axis=0)
    std = np.where(std < _STD_EPS, 1.0, std)
    z = (raw - mean) / std
    x = np.concatenate([z, np.ones((z.shape[0], 1))], axis=1)
    gram = x.T @ x + lam * np.eye(x.shape[1])
    a_inv = np.linalg.inv(gram)
    weights = a_inv @ (x.T @ y)
    residuals = y - x @ weights
    dof = max(x.shape[0] - x.shape[1], 1)
    sigma2 = float(residuals @ residuals) / dof
    return mean, std, weights, a_inv, sigma2


def _predict_raw(
    raw: np.ndarray,
    mean: np.ndarray,
    std: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    z = (raw - mean) / std
    x = np.concatenate([z, np.ones((z.shape[0], 1))], axis=1)
    return x @ weights


def _pairwise_agreement(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Kendall-style concordance in [0, 1]; ties count as agreement.

    Mirrors :func:`repro.engine.fastpath.rank_agreement` so the tier-0
    and tier-1 calibration numbers are directly comparable.
    """
    n = len(predicted)
    if n < 2:
        return 1.0
    agree = 0
    total = 0
    for i in range(n):
        for j in range(i + 1, n):
            total += 1
            dp = predicted[j] - predicted[i]
            da = actual[j] - actual[i]
            sp = (dp > 0) - (dp < 0)
            sa = (da > 0) - (da < 0)
            if sp == 0 or sa == 0 or sp == sa:
                agree += 1
    return agree / total


def _winner(tlps: Sequence[int], cycles: Sequence[float]) -> int:
    """The staircase winner: fewest cycles, ties toward higher TLP
    (the analytical tier's preference)."""
    best = min(zip(cycles, (-t for t in tlps)))
    return -best[1]


def holdout_metrics(
    records: Sequence[CorpusRecord], lam: float
) -> Dict[str, Any]:
    """Leave-one-app-out evaluation over the corpus."""
    kernels = sorted({r.kernel for r in records})
    per_app: Dict[str, Dict[str, float]] = {}
    agreements: List[float] = []
    matches: List[bool] = []
    sq_errors: List[float] = []
    for kernel in kernels:
        train = [r for r in records if r.kernel != kernel]
        held = [r for r in records if r.kernel == kernel]
        if len(train) <= len(input_names()) + 1:
            continue  # not enough rows to refit without this app
        raw_tr, y_tr = _design_matrix(train)
        mean, std, weights, _, _ = _fit(raw_tr, y_tr, lam)
        raw_ho, y_ho = _design_matrix(held)
        pred = _predict_raw(raw_ho, mean, std, weights)
        sq_errors.extend((pred - y_ho) ** 2)
        # Judge per (config, pipeline, grid, scheduler) staircase.
        sweeps: Dict[Tuple[str, str, int, str], List[int]] = {}
        for idx, r in enumerate(held):
            sweeps.setdefault(
                (r.config, r.pipeline, r.grid_blocks, r.scheduler), []
            ).append(idx)
        sweep_agreements: List[float] = []
        sweep_matches: List[bool] = []
        for indices in sweeps.values():
            tlps = [held[i].tlp for i in indices]
            actual = [held[i].cycles for i in indices]
            predicted = [float(pred[i]) for i in indices]
            sweep_agreements.append(_pairwise_agreement(predicted, actual))
            if len(indices) >= 2:
                sweep_matches.append(
                    _winner(tlps, predicted) == _winner(tlps, actual)
                )
        if not sweep_agreements:
            continue
        app_agreement = sum(sweep_agreements) / len(sweep_agreements)
        app_match = all(sweep_matches) if sweep_matches else True
        agreements.append(app_agreement)
        matches.append(app_match)
        per_app[kernel] = {
            "rank_agreement": round(app_agreement, 4),
            "winner_match": app_match,
        }
    rmse = float(np.sqrt(np.mean(sq_errors))) if sq_errors else 0.0
    return {
        "holdout_rank_agreement": round(
            sum(agreements) / len(agreements), 4
        )
        if agreements
        else 0.0,
        "holdout_winner_match_rate": round(
            sum(matches) / len(matches), 4
        )
        if matches
        else 0.0,
        "holdout_rmse_log": round(rmse, 4),
        "per_app": per_app,
    }


def train_model(
    records: Sequence[CorpusRecord],
    lam: float = 1.0,
    seed: int = 0,
) -> ModelArtifact:
    """Fit the surrogate on the full corpus; returns the artifact.

    ``seed`` is recorded for provenance; the closed-form fit does not
    consume randomness, so determinism holds regardless — the argument
    exists so callers can tag retrains distinctly if they want to.
    """
    if len(records) < len(input_names()) + 2:
        raise ParseError(
            f"corpus too small to train: {len(records)} records for "
            f"{len(input_names())} inputs",
            stage="train",
        )
    metrics = holdout_metrics(records, lam)
    raw, y = _design_matrix(records)
    mean, std, weights, a_inv, sigma2 = _fit(raw, y, lam)
    metrics["train_records"] = len(records)
    kernels = sorted({r.kernel for r in records})
    return ModelArtifact(
        schema_version=MODEL_SCHEMA_VERSION,
        features_schema_version=FEATURES_SCHEMA_VERSION,
        corpus_fingerprint=corpus_fingerprint(records),
        n_records=len(records),
        n_kernels=len(kernels),
        seed=seed,
        lam=lam,
        mean=tuple(float(v) for v in mean),
        std=tuple(float(v) for v in std),
        weights=tuple(float(v) for v in weights),
        a_inv=tuple(tuple(float(v) for v in row) for row in a_inv),
        sigma2=sigma2,
        metrics=metrics,
    )
