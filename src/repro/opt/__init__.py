"""Pre-allocation optimization passes: copy propagation and DCE.

``optimize_kernel`` runs the standard cleanup pipeline the production
toolchain applies before register allocation: propagate copies, then
delete the dead definitions that propagation exposes, iterated to a
fixed point.
"""

from __future__ import annotations

import dataclasses

from ..ptx.module import Kernel
from .bypass import BypassResult, apply_static_bypass
from .copy_prop import CopyPropResult, propagate_copies
from .dce import DCEResult, eliminate_dead_code
from .schedule import ScheduleResult, schedule_for_mlp
from .unroll import UnrollResult, unroll_loops


@dataclasses.dataclass
class PipelineResult:
    """Outcome of the cleanup pipeline."""

    kernel: Kernel
    rewritten_uses: int
    removed_instructions: int
    iterations: int


def optimize_kernel(
    kernel: Kernel, max_iterations: int = 8, verify: bool = False
) -> PipelineResult:
    """Copy-propagate and DCE to a fixed point; returns a new kernel.

    With ``verify``, every individual pass application is translation-
    validated (:func:`repro.verify.verify_pass`): a pass that changes
    the kernel's observable effects or breaks its dataflow raises
    :class:`repro.errors.VerificationError` immediately instead of
    producing wrong benchmark numbers downstream.
    """
    if verify:
        from ..verify import verify_pass
    current = kernel
    total_rewritten = 0
    total_removed = 0
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        cp = propagate_copies(current)
        if verify:
            verify_pass(current, cp.kernel, "copy_prop").raise_if_errors()
        dce = eliminate_dead_code(cp.kernel)
        if verify:
            verify_pass(cp.kernel, dce.kernel, "dce").raise_if_errors()
        total_rewritten += cp.rewritten_uses
        total_removed += dce.removed
        current = dce.kernel
        if cp.rewritten_uses == 0 and dce.removed == 0:
            break
    return PipelineResult(
        kernel=current,
        rewritten_uses=total_rewritten,
        removed_instructions=total_removed,
        iterations=iterations,
    )


__all__ = [
    "BypassResult",
    "CopyPropResult",
    "apply_static_bypass",
    "DCEResult",
    "PipelineResult",
    "eliminate_dead_code",
    "optimize_kernel",
    "propagate_copies",
    "ScheduleResult",
    "schedule_for_mlp",
    "UnrollResult",
    "unroll_loops",
]
