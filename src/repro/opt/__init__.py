"""Pre-allocation optimization passes on the pattern-rewrite driver.

Every pass is a :class:`repro.ir.RewritePattern` applied by the
:class:`repro.ir.GreedyRewriteDriver`; the historical function APIs
(``propagate_copies``, ``eliminate_dead_code``, ...) remain as thin
driver wrappers with unchanged result types and bit-identical output
(enforced by the old-vs-new differential gate against
:mod:`repro.opt.legacy`).

``optimize_kernel`` runs the standard cleanup pipeline the production
toolchain applies before register allocation: copy propagation and
dead-code elimination as one interleaved pattern set, driven to the
fixpoint where a full sweep applies no rewrite.
"""

from __future__ import annotations

import dataclasses

from ..ir.driver import GreedyRewriteDriver, RewriteBudgetWarning
from ..ptx.module import Kernel
from .bypass import BypassPattern, BypassResult, apply_static_bypass
from .copy_prop import CopyPropPattern, CopyPropResult, propagate_copies
from .dce import DCEPattern, DCEResult, eliminate_dead_code
from .minreg import MinRegResult, MinRegSchedPattern, schedule_for_minreg
from .schedule import MlpSchedPattern, ScheduleResult, schedule_for_mlp
from .unroll import UnrollPattern, UnrollResult, unroll_loops


@dataclasses.dataclass
class PipelineResult:
    """Outcome of the cleanup pipeline."""

    kernel: Kernel
    rewritten_uses: int
    removed_instructions: int
    iterations: int


def optimize_kernel(
    kernel: Kernel, max_iterations: int = 8, verify: bool = False
) -> PipelineResult:
    """Copy-propagate and DCE to a fixed point; returns a new kernel.

    Convergence is detected by the driver applying **no rewrites** in a
    full sweep (not by comparing kernel snapshots); exhausting
    ``max_iterations`` sweeps before that emits a structured
    :class:`repro.ir.RewriteBudgetWarning` rather than silently
    truncating.

    With ``verify``, every individual rewrite is translation-validated
    (:func:`repro.verify.verify_pass`): a rewrite that changes the
    kernel's observable effects or breaks its dataflow raises
    :class:`repro.errors.VerificationError` at its application site
    instead of producing wrong benchmark numbers downstream.
    """
    driver = GreedyRewriteDriver(
        [CopyPropPattern(), DCEPattern()],
        max_sweeps=max_iterations,
        verify=verify,
    )
    result = driver.run(kernel)
    return PipelineResult(
        kernel=result.kernel,
        rewritten_uses=sum(
            app.metadata.get("rewritten_uses", 0)
            for app in result.applications
        ),
        removed_instructions=result.counters["dce"],
        iterations=result.sweeps,
    )


__all__ = [
    "BypassPattern",
    "BypassResult",
    "CopyPropPattern",
    "CopyPropResult",
    "DCEPattern",
    "DCEResult",
    "MinRegResult",
    "MinRegSchedPattern",
    "MlpSchedPattern",
    "PipelineResult",
    "RewriteBudgetWarning",
    "ScheduleResult",
    "UnrollPattern",
    "UnrollResult",
    "apply_static_bypass",
    "eliminate_dead_code",
    "optimize_kernel",
    "propagate_copies",
    "schedule_for_minreg",
    "schedule_for_mlp",
    "unroll_loops",
]
