"""Static cache bypassing for streaming global loads.

The paper notes CRAT "can be used together with cache bypassing
techniques to further improve the cache performance" (Section 8,
referring to the authors' ICCAD'13/HPCA'15 work).  This pass implements
the static flavour: global loads whose addresses *stream* — the base
pointer is advanced by a loop-carried increment and never wraps — have
no reuse, so caching them only evicts useful lines.  Such loads are
marked ``ld.global.cg`` and the simulator services them from the L2
without touching L1 tags or MSHRs.

Detection is a conservative dataflow pattern match: a load streams when
its address register is (transitively, through copies/adds with
immediates) rooted at a register that is *monotonically advanced* in a
loop — redefined by ``add reg, reg, <imm>`` with no masking — and that
register has no other definition inside the loop.

Expressed as :class:`BypassPattern` on the rewrite driver: the
streaming-roots/loop-membership analysis is memoized on the rewrite
context (it only reads defs, which flipping a load's cache operator
never changes), and each matching load is replaced individually.
Flipped loads carry ``cache_op="cg"`` and no longer match, so the
driver converges after one productive sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.instruction import Imm, Instruction, Reg
from ..ptx.isa import Opcode, Space
from ..ptx.module import Kernel


@dataclasses.dataclass
class BypassResult:
    """Outcome of the static bypass pass."""

    kernel: Kernel
    bypassed_loads: int


def _streaming_analysis(ctx: RewriteContext) -> Tuple[Set[str], Set[int]]:
    """(streaming root names, loop-resident instruction positions)."""
    cfg = ctx.cfg
    loop_blocks: Set[int] = set()
    for loop in ctx.loops:
        loop_blocks.update(loop.body)

    # Registers advanced monotonically inside a loop: exactly one
    # in-loop definition of the form  add r, r, imm  (self-increment).
    defs_in_loop: Dict[str, List[Instruction]] = {}
    pos_in_loop: Set[int] = set()
    for block in cfg.blocks:
        if block.index not in loop_blocks:
            continue
        for pos, inst in block.positions():
            pos_in_loop.add(pos)
            for dreg in inst.defs():
                defs_in_loop.setdefault(dreg.name, []).append(inst)

    streaming_roots: Set[str] = set()
    for name, sites in defs_in_loop.items():
        if len(sites) != 1:
            continue
        inst = sites[0]
        if (
            inst.opcode is Opcode.ADD
            and inst.dst is not None
            and len(inst.srcs) == 2
            and isinstance(inst.srcs[0], Reg)
            and inst.srcs[0].name == name
            and isinstance(inst.srcs[1], Imm)
            and int(inst.srcs[1].value) > 0
        ):
            streaming_roots.add(name)
    return streaming_roots, pos_in_loop


class BypassPattern(RewritePattern):
    """Flip one loop-resident streaming ``ld.global.ca`` to ``.cg``."""

    name = "bypass"
    verify_mode = "exact"  # cache_op is excluded from effect summaries

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        inst = window.instr
        if not (
            inst.opcode is Opcode.LD
            and inst.space is Space.GLOBAL
            and inst.cache_op == "ca"
            and inst.mem is not None
            and isinstance(inst.mem.base, Reg)
        ):
            return None
        roots, pos_in_loop = ctx.cached(self.name, _streaming_analysis)
        if window.pos not in pos_in_loop or inst.mem.base.name not in roots:
            return None
        rewrite = Rewrite(
            window.pos,
            note=f"bypass streaming load via {inst.mem.base.name}",
        )
        rewrite.replace(window.pos, dataclasses.replace(inst, cache_op="cg"))
        rewrite.metadata["bypassed_loads"] = 1
        return rewrite


def apply_static_bypass(kernel: Kernel) -> BypassResult:
    """Mark streaming global loads ``.cg``; returns a new kernel."""
    driver = GreedyRewriteDriver([BypassPattern()])
    result = driver.run(kernel)
    return BypassResult(kernel=result.kernel, bypassed_loads=result.applied)
