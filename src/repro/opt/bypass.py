"""Static cache bypassing for streaming global loads.

The paper notes CRAT "can be used together with cache bypassing
techniques to further improve the cache performance" (Section 8,
referring to the authors' ICCAD'13/HPCA'15 work).  This pass implements
the static flavour: global loads whose addresses *stream* — the base
pointer is advanced by a loop-carried increment and never wraps — have
no reuse, so caching them only evicts useful lines.  Such loads are
marked ``ld.global.cg`` and the simulator services them from the L2
without touching L1 tags or MSHRs.

Detection is a conservative dataflow pattern match: a load streams when
its address register is (transitively, through copies/adds with
immediates) rooted at a register that is *monotonically advanced* in a
loop — redefined by ``add reg, reg, <imm>`` with no masking — and that
register has no other definition inside the loop.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from ..cfg.graph import CFG
from ..cfg.loops import find_loops
from ..ptx.instruction import Imm, Instruction, Label, Reg
from ..ptx.isa import Opcode, Space
from ..ptx.module import Kernel


@dataclasses.dataclass
class BypassResult:
    """Outcome of the static bypass pass."""

    kernel: Kernel
    bypassed_loads: int


def apply_static_bypass(kernel: Kernel) -> BypassResult:
    """Mark streaming global loads ``.cg``; returns a new kernel."""
    out = kernel.copy()
    cfg = CFG(out)
    loops = find_loops(cfg)
    loop_blocks: Set[int] = set()
    for loop in loops:
        loop_blocks.update(loop.body)

    # Registers advanced monotonically inside a loop: exactly one
    # in-loop definition of the form  add r, r, imm  (self-increment).
    defs_in_loop: Dict[str, List[Instruction]] = {}
    for block in cfg.blocks:
        if block.index not in loop_blocks:
            continue
        for inst in block.instructions:
            for dreg in inst.defs():
                defs_in_loop.setdefault(dreg.name, []).append(inst)

    streaming_roots: Set[str] = set()
    for name, sites in defs_in_loop.items():
        if len(sites) != 1:
            continue
        inst = sites[0]
        if (
            inst.opcode is Opcode.ADD
            and inst.dst is not None
            and len(inst.srcs) == 2
            and isinstance(inst.srcs[0], Reg)
            and inst.srcs[0].name == name
            and isinstance(inst.srcs[1], Imm)
            and int(inst.srcs[1].value) > 0
        ):
            streaming_roots.add(name)

    if not streaming_roots:
        return BypassResult(kernel=out, bypassed_loads=0)

    # Mark loop-resident global loads addressed through a streaming root.
    new_body: List = []
    count = 0
    position = 0
    pos_in_loop: Set[int] = set()
    for block in cfg.blocks:
        in_loop = block.index in loop_blocks
        for pos, _ in block.positions():
            if in_loop:
                pos_in_loop.add(pos)
    for item in out.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        inst = item
        if (
            position in pos_in_loop
            and inst.opcode is Opcode.LD
            and inst.space is Space.GLOBAL
            and inst.cache_op == "ca"
            and inst.mem is not None
            and isinstance(inst.mem.base, Reg)
            and inst.mem.base.name in streaming_roots
        ):
            inst = dataclasses.replace(inst, cache_op="cg")
            count += 1
        new_body.append(inst)
        position += 1
    out.body = new_body
    return BypassResult(kernel=out, bypassed_loads=count)
