"""Local copy propagation over the PTX-subset IR.

Rewrites uses of ``%b`` to ``%a`` after ``mov %b, %a`` within a basic
block, as long as neither register is redefined in between and the
types are bit-compatible.  The SSA-style front end produces many such
copies (paper Listing 2's ``mov`` chains); propagating them lets DCE
delete the movs and shortens live ranges before allocation.

Only register-to-register movs are propagated — immediates are left to
the allocator's rematerialization, and special-register reads must stay
(they are the canonical definition points).

Expressed as :class:`CopyPropPattern` on the rewrite driver: the
pattern anchors at any instruction with rewritable uses, reconstructs
the copy map over its (already final) block prefix, and replaces the
one instruction.  A single driver sweep therefore reproduces the
original one-pass walk exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.instruction import Instruction, Reg
from ..ptx.isa import Opcode
from ..ptx.module import Kernel


@dataclasses.dataclass
class CopyPropResult:
    """Outcome of copy propagation."""

    kernel: Kernel
    rewritten_uses: int


class CopyPropPattern(RewritePattern):
    """Rewrite one instruction's uses through the block's copy map."""

    name = "copy-prop"
    verify_mode = "exact"

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        inst = window.instr
        if not inst.uses():
            return None
        copies: Dict[str, Reg] = {}
        for pos, prior in window.block.positions():
            if pos == window.pos:
                break
            _track_copies(copies, prior)
        mapping: Dict[str, Reg] = {}
        for reg in inst.uses():
            source = _resolve(copies, reg)
            if source is not None and source.name != reg.name:
                mapping[reg.name] = Reg(source.name, reg.dtype)
        if not mapping:
            return None
        rewrite = Rewrite(window.pos, note="propagate copies")
        rewrite.replace(
            window.pos, inst.rewrite_regs(lambda r: mapping.get(r.name, r))
        )
        rewrite.metadata["rewritten_uses"] = len(mapping)
        return rewrite


def _track_copies(copies: Dict[str, Reg], inst: Instruction) -> None:
    """Advance the copy map across one (already final) instruction."""
    # Kill copies invalidated by this definition.
    for dreg in inst.defs():
        copies.pop(dreg.name, None)
        stale = [d for d, s in copies.items() if s.name == dreg.name]
        for name in stale:
            del copies[name]
    # Record a new copy.
    if (
        inst.opcode is Opcode.MOV
        and inst.guard is None
        and inst.dst is not None
        and len(inst.srcs) == 1
        and isinstance(inst.srcs[0], Reg)
        and _compatible(inst.dst, inst.srcs[0])
    ):
        copies[inst.dst.name] = inst.srcs[0]


def propagate_copies(kernel: Kernel) -> CopyPropResult:
    """Propagate register copies within basic blocks; returns a new kernel.

    One driver sweep — the historical single-pass semantics; chains
    longer than the resolution bound need another call (in practice
    :func:`repro.opt.optimize_kernel` iterates to the fixpoint).
    """
    driver = GreedyRewriteDriver(
        [CopyPropPattern()], max_sweeps=1, warn_on_budget=False
    )
    result = driver.run(kernel)
    rewritten = sum(
        app.metadata.get("rewritten_uses", 0) for app in result.applications
    )
    return CopyPropResult(kernel=result.kernel, rewritten_uses=rewritten)


def _resolve(copies: Dict[str, Reg], reg: Reg, limit: int = 8):
    """Follow the copy chain from ``reg`` (bounded)."""
    current = reg
    seen = 0
    while current.name in copies and seen < limit:
        current = copies[current.name]
        seen += 1
    return current if seen else None


def _compatible(a: Reg, b: Reg) -> bool:
    if a.dtype.reg_class is not b.dtype.reg_class:
        return False
    return a.dtype.bits == b.dtype.bits
