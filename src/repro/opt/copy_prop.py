"""Local copy propagation over the PTX-subset IR.

Rewrites uses of ``%b`` to ``%a`` after ``mov %b, %a`` within a basic
block, as long as neither register is redefined in between and the
types are bit-compatible.  The SSA-style front end produces many such
copies (paper Listing 2's ``mov`` chains); propagating them lets DCE
delete the movs and shortens live ranges before allocation.

Only register-to-register movs are propagated — immediates are left to
the allocator's rematerialization, and special-register reads must stay
(they are the canonical definition points).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..cfg.graph import CFG
from ..ptx.instruction import Instruction, Label, Reg
from ..ptx.isa import Opcode
from ..ptx.module import Kernel


@dataclasses.dataclass
class CopyPropResult:
    """Outcome of copy propagation."""

    kernel: Kernel
    rewritten_uses: int


def propagate_copies(kernel: Kernel) -> CopyPropResult:
    """Propagate register copies within basic blocks; returns a new kernel."""
    out = kernel.copy()
    cfg = CFG(out)
    rewritten = 0
    new_instructions: Dict[int, Instruction] = {}

    for block in cfg.blocks:
        copies: Dict[str, Reg] = {}  # dst name -> source register
        for pos, inst in block.positions():
            # Rewrite uses through the current copy map (transitively).
            mapping: Dict[str, Reg] = {}
            for reg in inst.uses():
                source = _resolve(copies, reg)
                if source is not None and source.name != reg.name:
                    mapping[reg.name] = Reg(source.name, reg.dtype)
            if mapping:
                inst = inst.rewrite_regs(lambda r: mapping.get(r.name, r))
                new_instructions[pos] = inst
                rewritten += len(mapping)
            # Kill copies invalidated by this definition.
            for dreg in inst.defs():
                copies.pop(dreg.name, None)
                stale = [
                    d for d, s in copies.items() if s.name == dreg.name
                ]
                for name in stale:
                    del copies[name]
            # Record a new copy.
            if (
                inst.opcode is Opcode.MOV
                and inst.guard is None
                and inst.dst is not None
                and len(inst.srcs) == 1
                and isinstance(inst.srcs[0], Reg)
                and _compatible(inst.dst, inst.srcs[0])
            ):
                copies[inst.dst.name] = inst.srcs[0]

    if new_instructions:
        body: List = []
        position = 0
        for item in out.body:
            if isinstance(item, Label):
                body.append(item)
                continue
            body.append(new_instructions.get(position, item))
            position += 1
        out.body = body
    return CopyPropResult(kernel=out, rewritten_uses=rewritten)


def _resolve(copies: Dict[str, Reg], reg: Reg, limit: int = 8):
    """Follow the copy chain from ``reg`` (bounded)."""
    current = reg
    seen = 0
    while current.name in copies and seen < limit:
        current = copies[current.name]
        seen += 1
    return current if seen else None


def _compatible(a: Reg, b: Reg) -> bool:
    if a.dtype.reg_class is not b.dtype.reg_class:
        return False
    return a.dtype.bits == b.dtype.bits
