"""Per-block dependency DAG shared by the instruction schedulers.

Both schedulers (:mod:`repro.opt.schedule` hoisting for MLP,
:mod:`repro.opt.minreg` minimizing MaxLive) legalize against the same
dependence relation:

* register RAW/WAR/WAW edges (guards included),
* conservative memory edges: stores order against all other memory
  operations of any space; loads reorder freely among themselves,
* barriers and terminators are full fences.

The edge-construction walk is the one the original MLP scheduler used;
keeping it in one place means a scheduling bug cannot exist in only one
of the two passes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..ptx.instruction import Instruction
from ..ptx.isa import Opcode


def build_dependency_dag(
    insts: Sequence[Instruction],
) -> Tuple[List[Set[int]], List[int]]:
    """Dependence edges within one basic block.

    Returns ``(succs, preds_count)``: ``succs[i]`` is the set of
    instruction indices that must follow ``i``; ``preds_count[i]`` the
    number of direct predecessors of ``i``.
    """
    n = len(insts)
    succs: List[Set[int]] = [set() for _ in range(n)]
    preds_count = [0] * n
    last_def: Dict[str, int] = {}
    last_uses: Dict[str, List[int]] = {}
    last_store = -1
    last_mems: List[int] = []
    fence = -1

    def add_edge(a: int, b: int) -> None:
        if a != b and b not in succs[a]:
            succs[a].add(b)
            preds_count[b] += 1

    for i, inst in enumerate(insts):
        if fence >= 0:
            add_edge(fence, i)
        for reg in inst.uses():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # RAW
        for reg in inst.defs():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # WAW
            for use_site in last_uses.get(reg.name, ()):
                add_edge(use_site, i)  # WAR
        # Memory ordering: stores are ordered against everything
        # memory; loads only against stores.
        if inst.opcode is Opcode.ST:
            for m in last_mems:
                add_edge(m, i)
            last_mems.append(i)
            last_store = i
        elif inst.opcode is Opcode.LD:
            if last_store >= 0:
                add_edge(last_store, i)
            last_mems.append(i)
        # Barriers/terminators are full fences.
        if inst.opcode in (Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT):
            for j in range(i):
                add_edge(j, i)
            fence = i
        # Bookkeeping.
        for reg in inst.uses():
            last_uses.setdefault(reg.name, []).append(i)
        for reg in inst.defs():
            last_def[reg.name] = i
            last_uses[reg.name] = []

    return succs, preds_count
