"""Dead-code elimination over the PTX-subset IR.

Removes instructions whose results are never observed: a definition is
dead when its register is not live out of the defining instruction and
the instruction has no side effect (stores, barriers and control flow
are always live).  Iterates to a fixed point, since removing one dead
definition can kill the chain that fed it.

The generator and hand-written kernels occasionally carry such chains
(e.g. a loaded value only used by an eliminated update); running DCE
before register allocation lowers the register demand the allocator
sees, exactly as production PTX optimizers do before ``ptxas``.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..cfg.liveness import LivenessInfo
from ..ptx.instruction import Instruction, Label
from ..ptx.isa import Opcode
from ..ptx.module import Kernel

#: Opcodes that must never be removed regardless of liveness.
_SIDE_EFFECTS = frozenset(
    {Opcode.ST, Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT}
)


@dataclasses.dataclass
class DCEResult:
    """Outcome of dead-code elimination."""

    kernel: Kernel
    removed: int
    passes: int


def eliminate_dead_code(kernel: Kernel, max_passes: int = 16) -> DCEResult:
    """Remove dead definitions; returns a new kernel."""
    current = kernel.copy()
    total_removed = 0
    passes = 0
    while passes < max_passes:
        passes += 1
        removed = _one_pass(current)
        total_removed += removed
        if removed == 0:
            break
    return DCEResult(kernel=current, removed=total_removed, passes=passes)


def _one_pass(kernel: Kernel) -> int:
    info = LivenessInfo(kernel)
    dead_positions = set()
    for pos, inst in enumerate(info.instructions):
        if inst.opcode in _SIDE_EFFECTS:
            continue
        if inst.dst is None:
            continue
        if inst.dst.name not in info.live_out[pos]:
            dead_positions.add(pos)
    if not dead_positions:
        return 0
    new_body: List = []
    position = 0
    for item in kernel.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        if position not in dead_positions:
            new_body.append(item)
        position += 1
    kernel.body = new_body
    return len(dead_positions)
