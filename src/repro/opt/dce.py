"""Dead-code elimination over the PTX-subset IR.

Removes instructions whose results are never observed: a definition is
dead when its register is not live out of the defining instruction and
the instruction has no side effect (stores, barriers and control flow
are always live).  Driven to a fixed point, since removing one dead
definition can kill the chain that fed it.

The generator and hand-written kernels occasionally carry such chains
(e.g. a loaded value only used by an eliminated update); running DCE
before register allocation lowers the register demand the allocator
sees, exactly as production PTX optimizers do before ``ptxas``.

Expressed as :class:`DCEPattern` on the rewrite driver: the pattern
erases one dead definition per match against the context's cached
liveness, which the driver refreshes after every erasure — so chains
unravel within a single sweep and the driver's no-rewrites sweep is the
fixpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.isa import Opcode
from ..ptx.module import Kernel

#: Opcodes that must never be removed regardless of liveness.
_SIDE_EFFECTS = frozenset(
    {Opcode.ST, Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT}
)


@dataclasses.dataclass
class DCEResult:
    """Outcome of dead-code elimination."""

    kernel: Kernel
    removed: int
    passes: int


class DCEPattern(RewritePattern):
    """Erase one definition that is not live out of its position."""

    name = "dce"
    verify_mode = "exact"

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        inst = window.instr
        if inst.opcode in _SIDE_EFFECTS or inst.dst is None:
            return None
        if inst.dst.name in ctx.liveness.live_out[window.pos]:
            return None
        rewrite = Rewrite(
            window.pos, note=f"dead definition of {inst.dst.name}"
        )
        rewrite.erase(window.pos)
        return rewrite


def eliminate_dead_code(kernel: Kernel, max_passes: int = 16) -> DCEResult:
    """Remove dead definitions; returns a new kernel.

    ``max_passes`` bounds driver sweeps; hitting it emits a structured
    :class:`repro.ir.driver.RewriteBudgetWarning` instead of silently
    truncating.
    """
    driver = GreedyRewriteDriver([DCEPattern()], max_sweeps=max_passes)
    result = driver.run(kernel)
    return DCEResult(
        kernel=result.kernel, removed=result.applied, passes=result.sweeps
    )
