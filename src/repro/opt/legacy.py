"""Frozen pre-driver implementations of the optimization passes.

These are the hand-rolled pass implementations exactly as they existed
before :mod:`repro.opt` was rebuilt on the pattern-rewrite driver
(:mod:`repro.ir`).  They are kept verbatim as the **golden reference**
for the old-vs-new differential gate (``tools/opt_rewrite_gate.py``,
``tests/test_opt_differential.py``): every driver-based pass must
produce a bit-identical kernel to its legacy counterpart on the example
corpus and the full workload suite.

Do not edit the transform logic here.  If a pass's behaviour must
change, change the pattern in its own module, bump
``repro.ir.pipeline.PIPELINE_SCHEMA_VERSION``, and update the golden
expectations — this file only moves when a deliberate semantic change
retires the old behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..cfg.graph import CFG
from ..cfg.liveness import LivenessInfo
from ..cfg.loops import find_loops
from ..ptx.instruction import Imm, Instruction, Label, Reg
from ..ptx.isa import CmpOp, Opcode, Space
from ..ptx.module import Kernel
from .bypass import BypassResult
from .copy_prop import CopyPropResult
from .dce import DCEResult
from .schedule import ScheduleResult
from .unroll import UnrollResult

# ----------------------------------------------------------------------
# Copy propagation (pre-driver).
# ----------------------------------------------------------------------


def propagate_copies(kernel: Kernel) -> CopyPropResult:
    """Propagate register copies within basic blocks; returns a new kernel."""
    out = kernel.copy()
    cfg = CFG(out)
    rewritten = 0
    new_instructions: Dict[int, Instruction] = {}

    for block in cfg.blocks:
        copies: Dict[str, Reg] = {}  # dst name -> source register
        for pos, inst in block.positions():
            # Rewrite uses through the current copy map (transitively).
            mapping: Dict[str, Reg] = {}
            for reg in inst.uses():
                source = _resolve(copies, reg)
                if source is not None and source.name != reg.name:
                    mapping[reg.name] = Reg(source.name, reg.dtype)
            if mapping:
                inst = inst.rewrite_regs(lambda r: mapping.get(r.name, r))
                new_instructions[pos] = inst
                rewritten += len(mapping)
            # Kill copies invalidated by this definition.
            for dreg in inst.defs():
                copies.pop(dreg.name, None)
                stale = [
                    d for d, s in copies.items() if s.name == dreg.name
                ]
                for name in stale:
                    del copies[name]
            # Record a new copy.
            if (
                inst.opcode is Opcode.MOV
                and inst.guard is None
                and inst.dst is not None
                and len(inst.srcs) == 1
                and isinstance(inst.srcs[0], Reg)
                and _compatible(inst.dst, inst.srcs[0])
            ):
                copies[inst.dst.name] = inst.srcs[0]

    if new_instructions:
        body: List = []
        position = 0
        for item in out.body:
            if isinstance(item, Label):
                body.append(item)
                continue
            body.append(new_instructions.get(position, item))
            position += 1
        out.body = body
    return CopyPropResult(kernel=out, rewritten_uses=rewritten)


def _resolve(copies: Dict[str, Reg], reg: Reg, limit: int = 8):
    """Follow the copy chain from ``reg`` (bounded)."""
    current = reg
    seen = 0
    while current.name in copies and seen < limit:
        current = copies[current.name]
        seen += 1
    return current if seen else None


def _compatible(a: Reg, b: Reg) -> bool:
    if a.dtype.reg_class is not b.dtype.reg_class:
        return False
    return a.dtype.bits == b.dtype.bits


# ----------------------------------------------------------------------
# Dead-code elimination (pre-driver).
# ----------------------------------------------------------------------

_SIDE_EFFECTS = frozenset(
    {Opcode.ST, Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT}
)


def eliminate_dead_code(kernel: Kernel, max_passes: int = 16) -> DCEResult:
    """Remove dead definitions; returns a new kernel."""
    current = kernel.copy()
    total_removed = 0
    passes = 0
    while passes < max_passes:
        passes += 1
        removed = _one_pass(current)
        total_removed += removed
        if removed == 0:
            break
    return DCEResult(kernel=current, removed=total_removed, passes=passes)


def _one_pass(kernel: Kernel) -> int:
    info = LivenessInfo(kernel)
    dead_positions = set()
    for pos, inst in enumerate(info.instructions):
        if inst.opcode in _SIDE_EFFECTS:
            continue
        if inst.dst is None:
            continue
        if inst.dst.name not in info.live_out[pos]:
            dead_positions.add(pos)
    if not dead_positions:
        return 0
    new_body: List = []
    position = 0
    for item in kernel.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        if position not in dead_positions:
            new_body.append(item)
        position += 1
    kernel.body = new_body
    return len(dead_positions)


# ----------------------------------------------------------------------
# Combined cleanup pipeline (pre-driver).
# ----------------------------------------------------------------------


@dataclasses.dataclass
class LegacyPipelineResult:
    """Outcome of the pre-driver cleanup pipeline."""

    kernel: Kernel
    rewritten_uses: int
    removed_instructions: int
    iterations: int


def optimize_kernel(
    kernel: Kernel, max_iterations: int = 8, verify: bool = False
) -> LegacyPipelineResult:
    """Copy-propagate and DCE to a fixed point; returns a new kernel."""
    if verify:
        from ..verify import verify_pass
    current = kernel
    total_rewritten = 0
    total_removed = 0
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        cp = propagate_copies(current)
        if verify:
            verify_pass(current, cp.kernel, "copy_prop").raise_if_errors()
        dce = eliminate_dead_code(cp.kernel)
        if verify:
            verify_pass(cp.kernel, dce.kernel, "dce").raise_if_errors()
        total_rewritten += cp.rewritten_uses
        total_removed += dce.removed
        current = dce.kernel
        if cp.rewritten_uses == 0 and dce.removed == 0:
            break
    return LegacyPipelineResult(
        kernel=current,
        rewritten_uses=total_rewritten,
        removed_instructions=total_removed,
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# Static cache bypass (pre-driver).
# ----------------------------------------------------------------------


def apply_static_bypass(kernel: Kernel) -> BypassResult:
    """Mark streaming global loads ``.cg``; returns a new kernel."""
    out = kernel.copy()
    cfg = CFG(out)
    loops = find_loops(cfg)
    loop_blocks: Set[int] = set()
    for loop in loops:
        loop_blocks.update(loop.body)

    # Registers advanced monotonically inside a loop: exactly one
    # in-loop definition of the form  add r, r, imm  (self-increment).
    defs_in_loop: Dict[str, List[Instruction]] = {}
    for block in cfg.blocks:
        if block.index not in loop_blocks:
            continue
        for inst in block.instructions:
            for dreg in inst.defs():
                defs_in_loop.setdefault(dreg.name, []).append(inst)

    streaming_roots: Set[str] = set()
    for name, sites in defs_in_loop.items():
        if len(sites) != 1:
            continue
        inst = sites[0]
        if (
            inst.opcode is Opcode.ADD
            and inst.dst is not None
            and len(inst.srcs) == 2
            and isinstance(inst.srcs[0], Reg)
            and inst.srcs[0].name == name
            and isinstance(inst.srcs[1], Imm)
            and int(inst.srcs[1].value) > 0
        ):
            streaming_roots.add(name)

    if not streaming_roots:
        return BypassResult(kernel=out, bypassed_loads=0)

    # Mark loop-resident global loads addressed through a streaming root.
    new_body: List = []
    count = 0
    position = 0
    pos_in_loop: Set[int] = set()
    for block in cfg.blocks:
        in_loop = block.index in loop_blocks
        for pos, _ in block.positions():
            if in_loop:
                pos_in_loop.add(pos)
    for item in out.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        inst = item
        if (
            position in pos_in_loop
            and inst.opcode is Opcode.LD
            and inst.space is Space.GLOBAL
            and inst.cache_op == "ca"
            and inst.mem is not None
            and isinstance(inst.mem.base, Reg)
            and inst.mem.base.name in streaming_roots
        ):
            inst = dataclasses.replace(inst, cache_op="cg")
            count += 1
        new_body.append(inst)
        position += 1
    out.body = new_body
    return BypassResult(kernel=out, bypassed_loads=count)


# ----------------------------------------------------------------------
# MLP list scheduling (pre-driver).
# ----------------------------------------------------------------------


def schedule_for_mlp(kernel: Kernel) -> ScheduleResult:
    """Hoist loads (and their address chains) within each basic block."""
    out = kernel.copy()
    cfg = CFG(out)
    new_order: Dict[int, List[Instruction]] = {}
    moved = 0
    for block in cfg.blocks:
        scheduled = _schedule_block(block.instructions)
        if scheduled is not None:
            new_order[block.index] = scheduled
            moved += sum(
                1
                for a, b in zip(block.instructions, scheduled)
                if a is not b
            )
    if not new_order:
        return ScheduleResult(out, 0)

    new_body: List = []
    by_start = {block.start: block for block in cfg.blocks}
    position = 0
    idx = 0
    items = list(out.body)
    while idx < len(items):
        item = items[idx]
        if isinstance(item, Label):
            new_body.append(item)
            idx += 1
            continue
        block = by_start.get(position)
        if block is not None and block.index in new_order:
            new_body.extend(new_order[block.index])
            idx += len(block.instructions)
            position += len(block.instructions)
            continue
        new_body.append(item)
        idx += 1
        position += 1
    out.body = new_body
    return ScheduleResult(out, moved)


def _schedule_block(insts: List[Instruction]):
    """Return the rescheduled instruction list, or None if unchanged."""
    n = len(insts)
    if n < 3:
        return None
    loads = [
        i
        for i, inst in enumerate(insts)
        if inst.opcode is Opcode.LD
    ]
    if not loads:
        return None

    # --- dependency DAG -------------------------------------------------
    succs: List[Set[int]] = [set() for _ in range(n)]
    preds_count = [0] * n
    last_def: Dict[str, int] = {}
    last_uses: Dict[str, List[int]] = {}
    last_store = -1
    last_mems: List[int] = []
    fence = -1

    def add_edge(a: int, b: int) -> None:
        if a != b and b not in succs[a]:
            succs[a].add(b)
            preds_count[b] += 1

    for i, inst in enumerate(insts):
        if fence >= 0:
            add_edge(fence, i)
        for reg in inst.uses():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # RAW
        for reg in inst.defs():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # WAW
            for use_site in last_uses.get(reg.name, ()):
                add_edge(use_site, i)  # WAR
        # Memory ordering: stores are ordered against everything
        # memory; loads only against stores.
        if inst.opcode is Opcode.ST:
            for m in last_mems:
                add_edge(m, i)
            last_mems.append(i)
            last_store = i
        elif inst.opcode is Opcode.LD:
            if last_store >= 0:
                add_edge(last_store, i)
            last_mems.append(i)
        # Barriers/terminators are full fences.
        if inst.opcode in (Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT):
            for j in range(i):
                add_edge(j, i)
            fence = i
        # Bookkeeping.
        for reg in inst.uses():
            last_uses.setdefault(reg.name, []).append(i)
        for reg in inst.defs():
            last_def[reg.name] = i
            last_uses[reg.name] = []

    # --- priority: does this instruction lead to a load? ----------------
    leads_to_load = [False] * n
    for i in range(n - 1, -1, -1):
        if insts[i].opcode is Opcode.LD:
            leads_to_load[i] = True
            continue
        leads_to_load[i] = any(leads_to_load[s] for s in succs[i])

    # --- list schedule ---------------------------------------------------
    import heapq

    ready = [
        ((not leads_to_load[i]), i) for i in range(n) if preds_count[i] == 0
    ]
    heapq.heapify(ready)
    order: List[int] = []
    remaining = list(preds_count)
    while ready:
        _, i = heapq.heappop(ready)
        order.append(i)
        for s in succs[i]:
            remaining[s] -= 1
            if remaining[s] == 0:
                heapq.heappush(ready, ((not leads_to_load[s]), s))
    if len(order) != n:  # pragma: no cover - DAG is acyclic by build
        return None
    if order == list(range(n)):
        return None
    return [insts[i] for i in order]


# ----------------------------------------------------------------------
# Partial loop unrolling (pre-driver).
# ----------------------------------------------------------------------


@dataclasses.dataclass
class _CountedLoop:
    header_index: int
    latch_index: int
    counter: str
    trip: int


def _match_counted_loop(cfg: CFG, header: int, body) -> Optional[_CountedLoop]:
    """Recognize the canonical two-block counted loop."""
    if len(body) != 2:
        return None
    latch = next(b for b in body if b != header)
    head_block = cfg.blocks[header]
    latch_block = cfg.blocks[latch]
    insts = head_block.instructions
    if len(insts) != 2:
        return None
    setp, bra = insts
    if setp.opcode is not Opcode.SETP or setp.cmp is not CmpOp.GE:
        return None
    if not (
        isinstance(setp.srcs[0], Reg)
        and isinstance(setp.srcs[1], Imm)
    ):
        return None
    if bra.opcode is not Opcode.BRA or bra.guard is None:
        return None
    if bra.guard.name != setp.dst.name or bra.guard_negated:
        return None
    counter = setp.srcs[0].name
    trip = int(setp.srcs[1].value)

    # Latch: straight-line, ends with an unconditional branch to the
    # header, contains exactly one `add counter, counter, 1`.
    last = latch_block.instructions[-1]
    if not (last.opcode is Opcode.BRA and last.guard is None):
        return None
    increments = [
        inst
        for inst in latch_block.instructions
        if inst.opcode is Opcode.ADD
        and inst.dst is not None
        and inst.dst.name == counter
    ]
    if len(increments) != 1:
        return None
    inc = increments[0]
    if not (
        len(inc.srcs) == 2
        and isinstance(inc.srcs[0], Reg)
        and inc.srcs[0].name == counter
        and isinstance(inc.srcs[1], Imm)
        and int(inc.srcs[1].value) == 1
    ):
        return None
    return _CountedLoop(
        header_index=header, latch_index=latch, counter=counter, trip=trip
    )


def _local_defs(straight: List[Instruction]) -> List[str]:
    """Registers whose first occurrence in the body is a definition."""
    seen_use = set()
    locals_: List[str] = []
    for inst in straight:
        for reg in inst.uses():
            if reg.name not in locals_:
                seen_use.add(reg.name)
        for reg in inst.defs():
            if reg.name not in seen_use and reg.name not in locals_:
                locals_.append(reg.name)
    return locals_


def _rename_replica(
    straight: List[Instruction], locals_: List[str], suffix: str
) -> List[Instruction]:
    mapping = {name: f"{name}u{suffix}" for name in locals_}

    def remap(reg: Reg) -> Reg:
        new = mapping.get(reg.name)
        return Reg(new, reg.dtype) if new else reg

    return [inst.rewrite_regs(remap) for inst in straight]


def unroll_loops(
    kernel: Kernel, factor: int = 2, rename_locals: bool = True
) -> UnrollResult:
    """Unroll every matching innermost counted loop by ``factor``."""
    if factor < 2:
        raise ValueError("unroll factor must be at least 2")
    out = kernel.copy()
    cfg = CFG(out)
    loops = find_loops(cfg)
    # Innermost loops: those whose body contains no other loop's header.
    headers = {loop.header for loop in loops}
    unrolled = 0
    skipped = 0
    replications: List[Tuple[int, int]] = []  # (latch block, copies)
    for loop in loops:
        inner_headers = (loop.body - {loop.header}) & headers
        if inner_headers:
            continue  # not innermost
        matched = _match_counted_loop(cfg, loop.header, loop.body)
        if matched is None or matched.trip % factor != 0:
            skipped += 1
            continue
        replications.append((matched.latch_index, factor))
        unrolled += 1

    if not replications:
        return UnrollResult(out, 0, skipped, factor)

    latch_spans = {}
    for latch_index, copies in replications:
        block = cfg.blocks[latch_index]
        start = block.start
        end = start + len(block.instructions)
        latch_spans[start] = (end, copies)

    new_body: List = []
    position = 0
    items = list(out.body)
    idx = 0
    while idx < len(items):
        item = items[idx]
        if isinstance(item, Label):
            new_body.append(item)
            idx += 1
            continue
        if position in latch_spans:
            end, copies = latch_spans[position]
            latch_insts: List[Instruction] = []
            while position < end:
                latch_insts.append(items[idx])
                idx += 1
                position += 1
            straight, branch = latch_insts[:-1], latch_insts[-1]
            locals_ = _local_defs(straight) if rename_locals else []
            for copy_index in range(copies):
                if rename_locals and copy_index > 0:
                    new_body.extend(
                        _rename_replica(straight, locals_, str(copy_index))
                    )
                else:
                    new_body.extend(straight)
            new_body.append(branch)
            continue
        new_body.append(item)
        idx += 1
        position += 1
    out.body = new_body
    return UnrollResult(out, unrolled, skipped, factor)
