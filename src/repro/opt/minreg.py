"""Min-register instruction scheduling (MaxLive minimization).

The design-space pruner discards every ``(reg, TLP)`` staircase point
whose register budget the kernel's MaxReg exceeds — so a schedule that
*lowers* MaxReg unlocks coordinates the CRAT search could never reach
(ROADMAP: min-register scheduling, after Chen 2023's optimal/heuristic
min-reg scheduling for GPU programs).  This pass is the deliberate
inverse of the MLP scheduler: instead of hoisting loads away from
their consumers (stretching live ranges to buy latency overlap), it
greedily emits, among dependence-ready instructions, the one with the
lowest net register-pressure delta — values are consumed as soon as
possible and defined as late as possible, shrinking within-block live
ranges and with them the interference the allocator must color.

Per basic block, pre-allocation, on the shared dependency DAG
(:mod:`repro.opt.dag`):

* ``delta(i)`` = slots of values *born* at ``i`` (definitions that stay
  live afterwards) minus slots of values *dying* at ``i`` (names whose
  last in-block access this is, unless live out of the block);
* ready instructions are emitted in ascending ``(delta, program
  order)``, so the pass is deterministic and idempotent, ties preserve
  the original order, and the effect summary is untouched (stores stay
  totally ordered; same-address loads keep their relative order).

First pattern set landed on the rewrite driver rather than ported to
it — selectable as ``minreg-sched`` via ``--passes``.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Sequence

from ..cfg.liveness import BlockPressureTracker
from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.instruction import Instruction
from ..ptx.module import Kernel
from .dag import build_dependency_dag


@dataclasses.dataclass
class MinRegResult:
    """Outcome of min-register scheduling."""

    kernel: Kernel
    moved_instructions: int


class MinRegSchedPattern(RewritePattern):
    """Reschedule one basic block to minimize MaxLive."""

    name = "minreg-sched"
    verify_mode = "exact"

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        if not window.is_block_leader:
            return None
        block = window.block
        if not block.instructions:
            return None
        last_pos = block.start + len(block.instructions) - 1
        live_out = ctx.liveness.live_out[last_pos]
        scheduled = _schedule_block_minreg(block.instructions, live_out)
        if scheduled is None:
            return None
        rewrite = Rewrite(window.pos, note="minimize MaxLive")
        rewrite.splice(block.start, len(block.instructions), scheduled)
        rewrite.metadata["moved"] = sum(
            1 for a, b in zip(block.instructions, scheduled) if a is not b
        )
        return rewrite


def schedule_for_minreg(kernel: Kernel) -> MinRegResult:
    """Minimize within-block register pressure; returns a new kernel."""
    driver = GreedyRewriteDriver([MinRegSchedPattern()])
    result = driver.run(kernel)
    moved = sum(app.metadata.get("moved", 0) for app in result.applications)
    return MinRegResult(result.kernel, moved)


def _schedule_block_minreg(
    insts: Sequence[Instruction], live_out: FrozenSet[str]
):
    """Return the pressure-minimizing order, or None if unchanged."""
    n = len(insts)
    if n < 3:
        return None

    succs, preds_count = build_dependency_dag(insts)
    tracker = BlockPressureTracker(insts, live_out)

    ready = sorted(i for i in range(n) if preds_count[i] == 0)
    order: List[int] = []
    counts = list(preds_count)
    while ready:
        best = min(ready, key=lambda i: (tracker.delta(insts[i]), i))
        ready.remove(best)
        order.append(best)
        tracker.emit(insts[best])
        for s in succs[best]:
            counts[s] -= 1
            if counts[s] == 0:
                ready.append(s)
    if len(order) != n:  # pragma: no cover - DAG is acyclic by build
        return None
    if order == list(range(n)):
        return None
    return [insts[i] for i in order]
