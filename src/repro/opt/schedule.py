"""List scheduling for memory-level parallelism (load hoisting).

GPU compilers hoist independent loads above their consumers so a warp
issues many memory requests before stalling — the memory-level
parallelism that hides DRAM latency.  The price is register pressure:
every hoisted load's destination is live until its (now distant)
consumer.  Combined with :mod:`repro.opt.unroll`, this reproduces the
classic ILP-vs-occupancy tension that CRAT's coordinated register/TLP
search resolves.

The scheduler works per basic block on the shared dependency DAG
(:mod:`repro.opt.dag`).  Ready instructions whose subtree leads to a
load are scheduled first (hoisting whole address chains); ties keep
program order, so the pass is deterministic, idempotent, and a no-op
on blocks without loads.

Expressed as :class:`MlpSchedPattern` on the rewrite driver: the
pattern anchors at block leaders and splices the whole rescheduled
block.  Idempotence (rescheduling a scheduled block returns it
unchanged, which the pattern reports as no match) is what makes the
driver's fixpoint identical to the original one-shot per-block pass.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Sequence

from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.instruction import Instruction
from ..ptx.isa import Opcode
from ..ptx.module import Kernel
from .dag import build_dependency_dag


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of the scheduling pass."""

    kernel: Kernel
    moved_instructions: int


class MlpSchedPattern(RewritePattern):
    """Reschedule one basic block to hoist loads."""

    name = "mlp-sched"
    verify_mode = "exact"

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        if not window.is_block_leader:
            return None
        block = window.block
        scheduled = _schedule_block(block.instructions)
        if scheduled is None:
            return None
        rewrite = Rewrite(window.pos, note="hoist loads for MLP")
        rewrite.splice(block.start, len(block.instructions), scheduled)
        rewrite.metadata["moved"] = sum(
            1 for a, b in zip(block.instructions, scheduled) if a is not b
        )
        return rewrite


def schedule_for_mlp(kernel: Kernel) -> ScheduleResult:
    """Hoist loads (and their address chains) within each basic block."""
    driver = GreedyRewriteDriver([MlpSchedPattern()])
    result = driver.run(kernel)
    moved = sum(app.metadata.get("moved", 0) for app in result.applications)
    return ScheduleResult(result.kernel, moved)


def _schedule_block(insts: Sequence[Instruction]):
    """Return the rescheduled instruction list, or None if unchanged."""
    n = len(insts)
    if n < 3:
        return None
    if not any(inst.opcode is Opcode.LD for inst in insts):
        return None

    succs, preds_count = build_dependency_dag(insts)

    # --- priority: does this instruction lead to a load? ----------------
    leads_to_load = [False] * n
    for i in range(n - 1, -1, -1):
        if insts[i].opcode is Opcode.LD:
            leads_to_load[i] = True
            continue
        leads_to_load[i] = any(leads_to_load[s] for s in succs[i])

    # --- list schedule ---------------------------------------------------
    ready = [
        ((not leads_to_load[i]), i) for i in range(n) if preds_count[i] == 0
    ]
    heapq.heapify(ready)
    order: List[int] = []
    remaining = list(preds_count)
    while ready:
        _, i = heapq.heappop(ready)
        order.append(i)
        for s in succs[i]:
            remaining[s] -= 1
            if remaining[s] == 0:
                heapq.heappush(ready, ((not leads_to_load[s]), s))
    if len(order) != n:  # pragma: no cover - DAG is acyclic by build
        return None
    if order == list(range(n)):
        return None
    return [insts[i] for i in order]
