"""List scheduling for memory-level parallelism (load hoisting).

GPU compilers hoist independent loads above their consumers so a warp
issues many memory requests before stalling — the memory-level
parallelism that hides DRAM latency.  The price is register pressure:
every hoisted load's destination is live until its (now distant)
consumer.  Combined with :mod:`repro.opt.unroll`, this reproduces the
classic ILP-vs-occupancy tension that CRAT's coordinated register/TLP
search resolves.

The scheduler works per basic block on a dependency DAG:

* register RAW/WAR/WAW edges (guards included),
* conservative memory edges: stores order against all other memory
  operations of any space; loads reorder freely among themselves,
* barriers and terminators are fences.

Ready instructions whose subtree leads to a load are scheduled first
(hoisting whole address chains); ties keep program order, so the pass
is deterministic and a no-op on blocks without loads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from ..cfg.graph import CFG
from ..ptx.instruction import Instruction, Label
from ..ptx.isa import Opcode, Space
from ..ptx.module import Kernel


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of the scheduling pass."""

    kernel: Kernel
    moved_instructions: int


def schedule_for_mlp(kernel: Kernel) -> ScheduleResult:
    """Hoist loads (and their address chains) within each basic block."""
    out = kernel.copy()
    cfg = CFG(out)
    new_order: Dict[int, List[Instruction]] = {}
    moved = 0
    for block in cfg.blocks:
        scheduled = _schedule_block(block.instructions)
        if scheduled is not None:
            new_order[block.index] = scheduled
            moved += sum(
                1
                for a, b in zip(block.instructions, scheduled)
                if a is not b
            )
    if not new_order:
        return ScheduleResult(out, 0)

    new_body: List = []
    by_start = {block.start: block for block in cfg.blocks}
    position = 0
    idx = 0
    items = list(out.body)
    while idx < len(items):
        item = items[idx]
        if isinstance(item, Label):
            new_body.append(item)
            idx += 1
            continue
        block = by_start.get(position)
        if block is not None and block.index in new_order:
            new_body.extend(new_order[block.index])
            idx += len(block.instructions)
            position += len(block.instructions)
            continue
        new_body.append(item)
        idx += 1
        position += 1
    out.body = new_body
    return ScheduleResult(out, moved)


def _schedule_block(insts: List[Instruction]):
    """Return the rescheduled instruction list, or None if unchanged."""
    n = len(insts)
    if n < 3:
        return None
    loads = [
        i
        for i, inst in enumerate(insts)
        if inst.opcode is Opcode.LD
    ]
    if not loads:
        return None

    # --- dependency DAG -------------------------------------------------
    succs: List[Set[int]] = [set() for _ in range(n)]
    preds_count = [0] * n
    last_def: Dict[str, int] = {}
    last_uses: Dict[str, List[int]] = {}
    last_store = -1
    last_mems: List[int] = []
    fence = -1

    def add_edge(a: int, b: int) -> None:
        if a != b and b not in succs[a]:
            succs[a].add(b)
            preds_count[b] += 1

    for i, inst in enumerate(insts):
        if fence >= 0:
            add_edge(fence, i)
        for reg in inst.uses():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # RAW
        for reg in inst.defs():
            if reg.name in last_def:
                add_edge(last_def[reg.name], i)  # WAW
            for use_site in last_uses.get(reg.name, ()):
                add_edge(use_site, i)  # WAR
        # Memory ordering: stores are ordered against everything
        # memory; loads only against stores.
        if inst.opcode is Opcode.ST:
            for m in last_mems:
                add_edge(m, i)
            last_mems.append(i)
            last_store = i
        elif inst.opcode is Opcode.LD:
            if last_store >= 0:
                add_edge(last_store, i)
            last_mems.append(i)
        # Barriers/terminators are full fences.
        if inst.opcode in (Opcode.BAR, Opcode.BRA, Opcode.RET, Opcode.EXIT):
            for j in range(i):
                add_edge(j, i)
            fence = i
        # Bookkeeping.
        for reg in inst.uses():
            last_uses.setdefault(reg.name, []).append(i)
        for reg in inst.defs():
            last_def[reg.name] = i
            last_uses[reg.name] = []

    # --- priority: does this instruction lead to a load? ----------------
    leads_to_load = [False] * n
    for i in range(n - 1, -1, -1):
        if insts[i].opcode is Opcode.LD:
            leads_to_load[i] = True
            continue
        leads_to_load[i] = any(leads_to_load[s] for s in succs[i])

    # --- list schedule ---------------------------------------------------
    import heapq

    ready = [
        ((not leads_to_load[i]), i) for i in range(n) if preds_count[i] == 0
    ]
    heapq.heapify(ready)
    order: List[int] = []
    remaining = list(preds_count)
    while ready:
        _, i = heapq.heappop(ready)
        order.append(i)
        for s in succs[i]:
            remaining[s] -= 1
            if remaining[s] == 0:
                heapq.heappush(ready, ((not leads_to_load[s]), s))
    if len(order) != n:  # pragma: no cover - DAG is acyclic by build
        return None
    if order == list(range(n)):
        return None
    return [insts[i] for i in order]
