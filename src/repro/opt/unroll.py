"""Partial unrolling of counted innermost loops.

Unrolling is the classic ILP knob that *raises register pressure* — the
exact tension CRAT coordinates (more live values per iteration against
the TLP the registers permit; the paper's related work points to loop
optimization [27] as a complementary lever).  This pass unrolls loops
of the canonical counted shape

.. code-block:: text

    $head:
        setp.ge.s32 %p, %i, <trip>;    // immediate trip count
        @%p bra $exit;
        <straight-line body ... add %i, %i, 1;>
        bra $head;
    $exit:

by replicating the body ``factor`` times per back edge (the counter
increment replicates with it, so iteration-dependent addresses stay
correct).  Only branch-free bodies are transformed, and only when the
factor divides the trip count — otherwise the loop is left alone and
reported as skipped.

Expressed as :class:`UnrollPattern` on the rewrite driver: the pattern
anchors at a loop header's leader and splices the replicated latch.
The unrolled latch carries ``factor`` counter increments, so the
canonical-shape match rejects it on the next offer — the rewrite
retires its own match, which is the driver's termination argument.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..cfg.graph import CFG
from ..cfg.loops import find_loops
from ..ir.driver import GreedyRewriteDriver
from ..ir.rewrite import Rewrite, RewritePattern
from ..ir.view import InstrWindow, RewriteContext
from ..ptx.instruction import Imm, Instruction, Reg
from ..ptx.isa import CmpOp, Opcode
from ..ptx.module import Kernel


@dataclasses.dataclass
class UnrollResult:
    """Outcome of the unrolling pass."""

    kernel: Kernel
    unrolled_loops: int
    skipped_loops: int
    factor: int


@dataclasses.dataclass
class _CountedLoop:
    header_index: int
    latch_index: int
    counter: str
    trip: int


def _match_counted_loop(cfg: CFG, header: int, body) -> Optional[_CountedLoop]:
    """Recognize the canonical two-block counted loop."""
    if len(body) != 2:
        return None
    latch = next(b for b in body if b != header)
    head_block = cfg.blocks[header]
    latch_block = cfg.blocks[latch]
    insts = head_block.instructions
    if len(insts) != 2:
        return None
    setp, bra = insts
    if setp.opcode is not Opcode.SETP or setp.cmp is not CmpOp.GE:
        return None
    if not (
        isinstance(setp.srcs[0], Reg)
        and isinstance(setp.srcs[1], Imm)
    ):
        return None
    if bra.opcode is not Opcode.BRA or bra.guard is None:
        return None
    if bra.guard.name != setp.dst.name or bra.guard_negated:
        return None
    counter = setp.srcs[0].name
    trip = int(setp.srcs[1].value)

    # Latch: straight-line, ends with an unconditional branch to the
    # header, contains exactly one `add counter, counter, 1`.
    last = latch_block.instructions[-1]
    if not (last.opcode is Opcode.BRA and last.guard is None):
        return None
    increments = [
        inst
        for inst in latch_block.instructions
        if inst.opcode is Opcode.ADD
        and inst.dst is not None
        and inst.dst.name == counter
    ]
    if len(increments) != 1:
        return None
    inc = increments[0]
    if not (
        len(inc.srcs) == 2
        and isinstance(inc.srcs[0], Reg)
        and inc.srcs[0].name == counter
        and isinstance(inc.srcs[1], Imm)
        and int(inc.srcs[1].value) == 1
    ):
        return None
    return _CountedLoop(
        header_index=header, latch_index=latch, counter=counter, trip=trip
    )


def _local_defs(straight: List[Instruction]) -> List[str]:
    """Registers whose first occurrence in the body is a definition.

    These are the iteration-local temporaries (loaded values, address
    computations); loop-carried values appear as a *use* first and must
    keep their names across replicas.
    """
    seen_use = set()
    locals_: List[str] = []
    for inst in straight:
        for reg in inst.uses():
            if reg.name not in locals_:
                seen_use.add(reg.name)
        for reg in inst.defs():
            if reg.name not in seen_use and reg.name not in locals_:
                locals_.append(reg.name)
    return locals_


def _rename_replica(
    straight: List[Instruction], locals_: List[str], suffix: str
) -> List[Instruction]:
    mapping = {name: f"{name}u{suffix}" for name in locals_}

    def remap(reg: Reg) -> Reg:
        new = mapping.get(reg.name)
        return Reg(new, reg.dtype) if new else reg

    return [inst.rewrite_regs(remap) for inst in straight]


class UnrollPattern(RewritePattern):
    """Replicate one matching innermost counted loop's latch body.

    Unrolling legitimately multiplies the static store sequence, so the
    pattern validates in ``structure`` mode (CFG health + dataflow
    regressions); its semantic weight is carried by dedicated
    functional tests.
    """

    name = "unroll"
    verify_mode = "structure"

    def __init__(self, factor: int = 2, rename_locals: bool = True):
        if factor < 2:
            raise ValueError("unroll factor must be at least 2")
        self.factor = factor
        self.rename_locals = rename_locals

    def match(
        self, window: InstrWindow, ctx: RewriteContext
    ) -> Optional[Rewrite]:
        if not window.is_block_leader:
            return None
        header = window.block.index
        loop = next((l for l in ctx.loops if l.header == header), None)
        if loop is None:
            return None
        headers = {l.header for l in ctx.loops}
        if (loop.body - {loop.header}) & headers:
            return None  # not innermost
        matched = _match_counted_loop(ctx.cfg, loop.header, loop.body)
        if matched is None or matched.trip % self.factor != 0:
            return None
        latch_block = ctx.cfg.blocks[matched.latch_index]
        latch_insts = latch_block.instructions
        straight, branch = latch_insts[:-1], latch_insts[-1]
        locals_ = _local_defs(straight) if self.rename_locals else []
        replacement: List[Instruction] = []
        for copy_index in range(self.factor):
            if self.rename_locals and copy_index > 0:
                replacement.extend(
                    _rename_replica(straight, locals_, str(copy_index))
                )
            else:
                replacement.extend(straight)
        replacement.append(branch)
        rewrite = Rewrite(
            window.pos,
            note=f"unroll x{self.factor} counter {matched.counter}",
        )
        rewrite.splice(latch_block.start, len(latch_insts), replacement)
        rewrite.metadata["unrolled_loops"] = 1
        return rewrite


def _count_skipped(kernel: Kernel, factor: int) -> int:
    """Innermost loops that do not match the canonical counted shape
    (or whose trip count the factor does not divide), on the original
    kernel — a pattern can only report matches, not near-misses."""
    cfg = CFG(kernel)
    loops = find_loops(cfg)
    headers = {loop.header for loop in loops}
    skipped = 0
    for loop in loops:
        if (loop.body - {loop.header}) & headers:
            continue  # not innermost
        matched = _match_counted_loop(cfg, loop.header, loop.body)
        if matched is None or matched.trip % factor != 0:
            skipped += 1
    return skipped


def unroll_loops(
    kernel: Kernel, factor: int = 2, rename_locals: bool = True
) -> UnrollResult:
    """Unroll every matching innermost counted loop by ``factor``.

    With ``rename_locals`` (default), each replica's iteration-local
    temporaries get fresh names, so independent replicas can overlap in
    the pipeline — the memory-level-parallelism gain unrolling is for,
    at the cost of proportionally higher register pressure (the
    coordination problem CRAT resolves).
    """
    driver = GreedyRewriteDriver([UnrollPattern(factor, rename_locals)])
    result = driver.run(kernel)
    return UnrollResult(
        kernel=result.kernel,
        unrolled_loops=result.applied,
        skipped_loops=_count_skipped(kernel, factor),
        factor=factor,
    )
