"""Partial unrolling of counted innermost loops.

Unrolling is the classic ILP knob that *raises register pressure* — the
exact tension CRAT coordinates (more live values per iteration against
the TLP the registers permit; the paper's related work points to loop
optimization [27] as a complementary lever).  This pass unrolls loops
of the canonical counted shape

.. code-block:: text

    $head:
        setp.ge.s32 %p, %i, <trip>;    // immediate trip count
        @%p bra $exit;
        <straight-line body ... add %i, %i, 1;>
        bra $head;
    $exit:

by replicating the body ``factor`` times per back edge (the counter
increment replicates with it, so iteration-dependent addresses stay
correct).  Only branch-free bodies are transformed, and only when the
factor divides the trip count — otherwise the loop is left alone and
reported as skipped.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..cfg.graph import CFG
from ..cfg.loops import find_loops
from ..ptx.instruction import Imm, Instruction, Label, Reg
from ..ptx.isa import CmpOp, Opcode
from ..ptx.module import Kernel


@dataclasses.dataclass
class UnrollResult:
    """Outcome of the unrolling pass."""

    kernel: Kernel
    unrolled_loops: int
    skipped_loops: int
    factor: int


@dataclasses.dataclass
class _CountedLoop:
    header_index: int
    latch_index: int
    counter: str
    trip: int


def _match_counted_loop(cfg: CFG, header: int, body) -> Optional[_CountedLoop]:
    """Recognize the canonical two-block counted loop."""
    if len(body) != 2:
        return None
    latch = next(b for b in body if b != header)
    head_block = cfg.blocks[header]
    latch_block = cfg.blocks[latch]
    insts = head_block.instructions
    if len(insts) != 2:
        return None
    setp, bra = insts
    if setp.opcode is not Opcode.SETP or setp.cmp is not CmpOp.GE:
        return None
    if not (
        isinstance(setp.srcs[0], Reg)
        and isinstance(setp.srcs[1], Imm)
    ):
        return None
    if bra.opcode is not Opcode.BRA or bra.guard is None:
        return None
    if bra.guard.name != setp.dst.name or bra.guard_negated:
        return None
    counter = setp.srcs[0].name
    trip = int(setp.srcs[1].value)

    # Latch: straight-line, ends with an unconditional branch to the
    # header, contains exactly one `add counter, counter, 1`.
    last = latch_block.instructions[-1]
    if not (last.opcode is Opcode.BRA and last.guard is None):
        return None
    increments = [
        inst
        for inst in latch_block.instructions
        if inst.opcode is Opcode.ADD
        and inst.dst is not None
        and inst.dst.name == counter
    ]
    if len(increments) != 1:
        return None
    inc = increments[0]
    if not (
        len(inc.srcs) == 2
        and isinstance(inc.srcs[0], Reg)
        and inc.srcs[0].name == counter
        and isinstance(inc.srcs[1], Imm)
        and int(inc.srcs[1].value) == 1
    ):
        return None
    return _CountedLoop(
        header_index=header, latch_index=latch, counter=counter, trip=trip
    )


def _local_defs(straight: List[Instruction]) -> List[str]:
    """Registers whose first occurrence in the body is a definition.

    These are the iteration-local temporaries (loaded values, address
    computations); loop-carried values appear as a *use* first and must
    keep their names across replicas.
    """
    seen_use = set()
    locals_: List[str] = []
    for inst in straight:
        for reg in inst.uses():
            if reg.name not in locals_:
                seen_use.add(reg.name)
        for reg in inst.defs():
            if reg.name not in seen_use and reg.name not in locals_:
                locals_.append(reg.name)
    return locals_


def _rename_replica(
    straight: List[Instruction], locals_: List[str], suffix: str
) -> List[Instruction]:
    mapping = {name: f"{name}u{suffix}" for name in locals_}

    def remap(reg: Reg) -> Reg:
        new = mapping.get(reg.name)
        return Reg(new, reg.dtype) if new else reg

    return [inst.rewrite_regs(remap) for inst in straight]


def unroll_loops(
    kernel: Kernel, factor: int = 2, rename_locals: bool = True
) -> UnrollResult:
    """Unroll every matching innermost counted loop by ``factor``.

    With ``rename_locals`` (default), each replica's iteration-local
    temporaries get fresh names, so independent replicas can overlap in
    the pipeline — the memory-level-parallelism gain unrolling is for,
    at the cost of proportionally higher register pressure (the
    coordination problem CRAT resolves).
    """
    if factor < 2:
        raise ValueError("unroll factor must be at least 2")
    out = kernel.copy()
    cfg = CFG(out)
    loops = find_loops(cfg)
    # Innermost loops: those whose body contains no other loop's header.
    headers = {loop.header for loop in loops}
    unrolled = 0
    skipped = 0
    replications: List[Tuple[int, int]] = []  # (latch block, copies)
    for loop in loops:
        inner_headers = (loop.body - {loop.header}) & headers
        if inner_headers:
            continue  # not innermost
        matched = _match_counted_loop(cfg, loop.header, loop.body)
        if matched is None or matched.trip % factor != 0:
            skipped += 1
            continue
        replications.append((matched.latch_index, factor))
        unrolled += 1

    if not replications:
        return UnrollResult(out, 0, skipped, factor)

    # Rebuild the body, replicating the chosen latch blocks' straight
    # line instructions (everything but the trailing branch) factor
    # times; the final increment of each replica advances the counter.
    latch_spans = {}
    for latch_index, copies in replications:
        block = cfg.blocks[latch_index]
        start = block.start
        end = start + len(block.instructions)
        latch_spans[start] = (end, copies)

    new_body: List = []
    position = 0
    body_iter = iter(out.body)
    # Map positions back to body items (labels carry no position).
    items = list(out.body)
    idx = 0
    while idx < len(items):
        item = items[idx]
        if isinstance(item, Label):
            new_body.append(item)
            idx += 1
            continue
        if position in latch_spans:
            end, copies = latch_spans[position]
            # Collect the latch instructions (and any interleaved labels
            # would violate the straight-line guarantee — none exist).
            latch_insts: List[Instruction] = []
            while position < end:
                latch_insts.append(items[idx])
                idx += 1
                position += 1
            straight, branch = latch_insts[:-1], latch_insts[-1]
            locals_ = _local_defs(straight) if rename_locals else []
            for copy_index in range(copies):
                if rename_locals and copy_index > 0:
                    new_body.extend(
                        _rename_replica(straight, locals_, str(copy_index))
                    )
                else:
                    new_body.extend(straight)
            new_body.append(branch)
            continue
        new_body.append(item)
        idx += 1
        position += 1
    out.body = new_body
    return UnrollResult(out, unrolled, skipped, factor)
