"""PTX-subset intermediate representation.

The typed IR that CRAT transforms: instruction/operand classes, kernel
containers, a fluent builder, a textual parser/printer pair that
round-trips, and a structural verifier.
"""

from .builder import KernelBuilder
from .instruction import (
    BodyItem,
    Imm,
    Instruction,
    Label,
    MemRef,
    Operand,
    Reg,
    Sreg,
    Sym,
    iter_instructions,
)
from .isa import (
    CmpOp,
    DType,
    LatencyClass,
    Opcode,
    RegClass,
    Space,
    SPECIAL_REGISTERS,
    latency_class,
)
from .module import ArrayDecl, Kernel, Module, Param, fresh_register_namer
from .parser import PTXParseError, parse_kernel, parse_module
from .printer import print_kernel, print_module
from .verifier import VerificationError, verify_kernel

__all__ = [
    "ArrayDecl",
    "BodyItem",
    "CmpOp",
    "DType",
    "Imm",
    "Instruction",
    "Kernel",
    "KernelBuilder",
    "Label",
    "LatencyClass",
    "MemRef",
    "Module",
    "Opcode",
    "Operand",
    "PTXParseError",
    "Param",
    "Reg",
    "RegClass",
    "SPECIAL_REGISTERS",
    "Space",
    "Sreg",
    "Sym",
    "VerificationError",
    "fresh_register_namer",
    "iter_instructions",
    "latency_class",
    "parse_kernel",
    "parse_module",
    "print_kernel",
    "print_module",
    "verify_kernel",
]
