"""Fluent builder for constructing PTX-subset kernels programmatically.

The synthetic workload generator (``repro.workloads.generator``) and the
test suite construct kernels through this builder rather than writing
textual PTX by hand.  The builder hands out fresh SSA-style virtual
registers — PTX before register allocation "assumes an infinite register
set, each time a new variable is generated, it is assigned to a new
register" (paper Section 5.1).
"""

from __future__ import annotations

from typing import Optional, Union

from .instruction import Imm, Instruction, Label, MemRef, Operand, Reg, Sreg, Sym
from .isa import CmpOp, DType, Opcode, Space
from .module import ArrayDecl, Kernel, Param

_CLASS_PREFIX = {
    "r32": "%r",
    "r64": "%rd",
    "f32": "%f",
    "f64": "%fd",
    "pred": "%p",
}


class KernelBuilder:
    """Builds a :class:`Kernel` one instruction at a time.

    Example::

        b = KernelBuilder("kernel", block_size=256)
        out = b.param("output", DType.U64)
        tid = b.special("%tid.x")
        ctaid = b.special("%ctaid.x")
        ntid = b.special("%ntid.x")
        base = b.mad(ctaid, ntid, tid)
        ...
        kernel = b.build()
    """

    def __init__(self, name: str, block_size: int = 256):
        self._kernel = Kernel(name=name, block_size=block_size)
        self._counters = {key: 0 for key in _CLASS_PREFIX}
        self._label_counter = 0
        self._built = False

    # ------------------------------------------------------------------
    # Declarations.
    # ------------------------------------------------------------------
    def param(self, name: str, dtype: DType = DType.U64) -> Sym:
        """Declare a kernel parameter and return a symbol referencing it."""
        self._kernel.params.append(Param(name, dtype))
        return Sym(name)

    def local_array(self, name: str, size_bytes: int, align: int = 4) -> Sym:
        self._kernel.arrays.append(ArrayDecl(name, Space.LOCAL, size_bytes, align))
        return Sym(name)

    def shared_array(self, name: str, size_bytes: int, align: int = 4) -> Sym:
        self._kernel.arrays.append(ArrayDecl(name, Space.SHARED, size_bytes, align))
        return Sym(name)

    # ------------------------------------------------------------------
    # Fresh registers and labels.
    # ------------------------------------------------------------------
    def fresh(self, dtype: DType) -> Reg:
        """A fresh virtual register of the given type."""
        key = (
            "pred"
            if dtype is DType.PRED
            else dtype.reg_class.value.replace("rd", "r64").replace("fd", "f64")
        )
        if key == "r":
            key = "r32"
        elif key == "f":
            key = "f32"
        prefix = _CLASS_PREFIX[key]
        reg = Reg(f"{prefix}{self._counters[key]}", dtype)
        self._counters[key] += 1
        return reg

    def label(self, hint: str = "L") -> Label:
        """A fresh label (not yet placed; call :meth:`place`)."""
        lbl = Label(f"${hint}{self._label_counter}")
        self._label_counter += 1
        return lbl

    def place(self, label: Label) -> None:
        """Place a label at the current point in the body."""
        self._kernel.body.append(label)

    # ------------------------------------------------------------------
    # Generic emission.
    # ------------------------------------------------------------------
    def emit(self, inst: Instruction) -> Optional[Reg]:
        self._kernel.body.append(inst)
        return inst.dst

    def _binary(
        self,
        opcode: Opcode,
        a: Operand,
        b: Operand,
        dtype: Optional[DType] = None,
        guard: Optional[Reg] = None,
        guard_negated: bool = False,
        dst: Optional[Reg] = None,
    ) -> Reg:
        dtype = dtype or _infer_dtype(a, b)
        if dst is None:
            dst = self.fresh(dtype)
        self.emit(
            Instruction(
                opcode,
                dtype=dtype,
                dst=dst,
                srcs=(a, b),
                guard=guard,
                guard_negated=guard_negated,
            )
        )
        return dst

    def _unary(
        self,
        opcode: Opcode,
        a: Operand,
        dtype: Optional[DType] = None,
        dst: Optional[Reg] = None,
    ) -> Reg:
        dtype = dtype or _infer_dtype(a)
        if dst is None:
            dst = self.fresh(dtype)
        self.emit(Instruction(opcode, dtype=dtype, dst=dst, srcs=(a,)))
        return dst

    # ------------------------------------------------------------------
    # Arithmetic / logic.
    # ------------------------------------------------------------------
    def mov(self, src: Operand, dtype: Optional[DType] = None) -> Reg:
        dtype = dtype or _infer_dtype(src)
        dst = self.fresh(dtype)
        self.emit(Instruction(Opcode.MOV, dtype=dtype, dst=dst, srcs=(src,)))
        return dst

    def mov_to(self, dst: Reg, src: Operand) -> Reg:
        """Move into an *existing* register (non-SSA write, e.g. loop update)."""
        self.emit(Instruction(Opcode.MOV, dtype=dst.dtype, dst=dst, srcs=(src,)))
        return dst

    def special(self, name: str, dtype: DType = DType.U32) -> Reg:
        """Read a special register into a fresh register (paper Listing 2)."""
        return self.mov(Sreg(name), dtype)

    def addr_of(self, sym: Sym) -> Reg:
        """Materialize the 64-bit base address of a declared array/param."""
        return self.mov(sym, DType.U64)

    def add(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.ADD, a, b, dtype, **kw)

    def sub(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.SUB, a, b, dtype, **kw)

    def mul(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.MUL, a, b, dtype, **kw)

    def div(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.DIV, a, b, dtype, **kw)

    def rem(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.REM, a, b, dtype, **kw)

    def and_(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.AND, a, b, dtype, **kw)

    def or_(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.OR, a, b, dtype, **kw)

    def xor(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.XOR, a, b, dtype, **kw)

    def shl(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.SHL, a, b, dtype, **kw)

    def shr(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.SHR, a, b, dtype, **kw)

    def min(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.MIN, a, b, dtype, **kw)

    def max(self, a, b, dtype=None, **kw) -> Reg:
        return self._binary(Opcode.MAX, a, b, dtype, **kw)

    def neg(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.NEG, a, dtype, dst)

    def abs(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.ABS, a, dtype, dst)

    def lg2(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.LG2, a, dtype, dst)

    def ex2(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.EX2, a, dtype, dst)

    def sqrt(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.SQRT, a, dtype, dst)

    def rsqrt(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.RSQRT, a, dtype, dst)

    def rcp(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.RCP, a, dtype, dst)

    def sin(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.SIN, a, dtype, dst)

    def cos(self, a, dtype=None, dst=None) -> Reg:
        return self._unary(Opcode.COS, a, dtype, dst)

    def mad(self, a, b, c, dtype=None, dst: Optional[Reg] = None) -> Reg:
        """``dst = a * b + c`` (paper Listing 2 computes tid this way)."""
        dtype = dtype or _infer_dtype(a, b, c)
        if dst is None:
            dst = self.fresh(dtype)
        opcode = Opcode.FMA if dtype.is_float else Opcode.MAD
        self.emit(Instruction(opcode, dtype=dtype, dst=dst, srcs=(a, b, c)))
        return dst

    def cvt(self, src: Operand, to_dtype: DType) -> Reg:
        dst = self.fresh(to_dtype)
        self.emit(Instruction(Opcode.CVT, dtype=to_dtype, dst=dst, srcs=(src,)))
        return dst

    def imm(self, value: Union[int, float], dtype: DType = DType.S32) -> Imm:
        return Imm(value, dtype)

    # ------------------------------------------------------------------
    # Predicates and control flow.
    # ------------------------------------------------------------------
    def setp(self, cmp: CmpOp, a: Operand, b: Operand, dtype=None) -> Reg:
        dtype = dtype or _infer_dtype(a, b)
        dst = self.fresh(DType.PRED)
        self.emit(
            Instruction(Opcode.SETP, dtype=dtype, dst=dst, srcs=(a, b), cmp=cmp)
        )
        return dst

    def selp(self, a: Operand, b: Operand, pred: Reg, dtype=None) -> Reg:
        dtype = dtype or _infer_dtype(a, b)
        dst = self.fresh(dtype)
        self.emit(Instruction(Opcode.SELP, dtype=dtype, dst=dst, srcs=(a, b, pred)))
        return dst

    def bra(self, label: Label, guard: Optional[Reg] = None, negated: bool = False):
        self.emit(
            Instruction(
                Opcode.BRA, target=label.name, guard=guard, guard_negated=negated
            )
        )

    def bar(self) -> None:
        self.emit(Instruction(Opcode.BAR))

    def ret(self) -> None:
        self.emit(Instruction(Opcode.RET))

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def ld(
        self,
        space: Space,
        base: Union[Reg, Sym],
        offset: int = 0,
        dtype: DType = DType.F32,
        guard: Optional[Reg] = None,
    ) -> Reg:
        dst = self.fresh(dtype)
        self.emit(
            Instruction(
                Opcode.LD,
                dtype=dtype,
                dst=dst,
                mem=MemRef(base, offset),
                space=space,
                guard=guard,
            )
        )
        return dst

    def st(
        self,
        space: Space,
        base: Union[Reg, Sym],
        value: Operand,
        offset: int = 0,
        dtype: Optional[DType] = None,
        guard: Optional[Reg] = None,
    ) -> None:
        dtype = dtype or _infer_dtype(value)
        self.emit(
            Instruction(
                Opcode.ST,
                dtype=dtype,
                srcs=(value,),
                mem=MemRef(base, offset),
                space=space,
                guard=guard,
            )
        )

    # ------------------------------------------------------------------
    # Finalization.
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Finalize and return the kernel (appends ``exit`` if missing)."""
        if self._built:
            raise RuntimeError("build() called twice")
        body = self._kernel.body
        if not body or not (
            isinstance(body[-1], Instruction) and body[-1].is_terminator
        ):
            self.emit(Instruction(Opcode.EXIT))
        self._kernel.validate_targets()
        self._built = True
        return self._kernel


def _infer_dtype(*operands: Operand) -> DType:
    """Infer an instruction dtype from the first typed operand."""
    for op in operands:
        if isinstance(op, (Reg, Imm)):
            return op.dtype
    raise ValueError("cannot infer dtype: no typed operand; pass dtype explicitly")
