"""Instruction and operand classes for the PTX-subset IR.

An :class:`Instruction` is one typed PTX statement, e.g.::

    @%p1 mad.lo.s32 %r4, %r2, %r3, %r1;
    ld.global.f32 %f2, [%rd3+16];
    setp.lt.s32 %p1, %r4, %r5;

Operands are :class:`Reg` (virtual or allocated register), :class:`Imm`
(immediate), :class:`Sreg` (special register such as ``%tid.x``),
:class:`Sym` (address of a declared array, e.g. the spill stack of paper
Listing 4), and :class:`MemRef` (``[base+offset]`` addressing, used only
by ``ld``/``st``).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple, Union

from .isa import CmpOp, DType, NO_DST_OPS, Opcode, Space, latency_class


@dataclasses.dataclass(frozen=True)
class Reg:
    """A (virtual or physical) register operand.

    Names follow the PTX convention of a class prefix plus an index
    (``%r12``, ``%rd3``, ``%f7``, ``%p1``), but any identifier is
    accepted; the register class is carried by ``dtype``.
    """

    name: str
    dtype: DType

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: Union[int, float]
    dtype: DType

    def __str__(self) -> str:
        if self.dtype.is_float:
            return repr(float(self.value))
        return str(int(self.value))


@dataclasses.dataclass(frozen=True)
class Sreg:
    """A read-only special register (``%tid.x``, ``%ctaid.x``, ...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Sym:
    """The address of a declared array or kernel parameter.

    ``mov.u64 %rd0, SpillStack;`` materializes the base address of a
    local/shared array into an addressing register (paper Listing 4).
    """

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Sreg, Sym]


@dataclasses.dataclass(frozen=True)
class MemRef:
    """A ``[base+offset]`` memory reference for ``ld``/``st``."""

    base: Union[Reg, Sym]
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"[{self.base}+{self.offset}]"
        return f"[{self.base}]"


@dataclasses.dataclass(frozen=True)
class Label:
    """A branch target pseudo-item in a kernel body."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclasses.dataclass
class Instruction:
    """One PTX-subset instruction.

    Attributes:
        opcode: The operation.
        dtype: The instruction type suffix (``add.s32`` -> ``S32``).
            ``None`` only for untyped control flow (``bra``/``bar``/...).
        dst: Destination register, or ``None`` for stores and control flow.
        srcs: Source operands in PTX order.
        mem: Memory reference for ``ld`` (source) / ``st`` (destination).
        space: State space for ``ld``/``st``.
        cmp: Comparison operator, only for ``setp``.
        guard: Predicate register guarding execution (``@%p``), or ``None``.
        guard_negated: Whether the guard is negated (``@!%p``).
        target: Branch target label name, only for ``bra``.
    """

    opcode: Opcode
    dtype: Optional[DType] = None
    dst: Optional[Reg] = None
    srcs: Tuple[Operand, ...] = ()
    mem: Optional[MemRef] = None
    space: Optional[Space] = None
    cmp: Optional[CmpOp] = None
    guard: Optional[Reg] = None
    guard_negated: bool = False
    target: Optional[str] = None
    #: Cache operator for global loads: "ca" (cache at all levels,
    #: default) or "cg" (bypass the L1, cache at L2) — PTX's ld.global.cg,
    #: the hook static cache-bypassing frameworks use.
    cache_op: str = "ca"

    def __post_init__(self) -> None:
        if self.dst is not None and self.opcode in NO_DST_OPS:
            raise ValueError(f"{self.opcode.value} takes no destination")
        if self.opcode is Opcode.SETP and self.cmp is None:
            raise ValueError("setp requires a comparison operator")
        if self.opcode in (Opcode.LD, Opcode.ST):
            if self.mem is None or self.space is None:
                raise ValueError(f"{self.opcode.value} requires mem and space")
        if self.opcode is Opcode.BRA and self.target is None:
            raise ValueError("bra requires a target label")

    # ------------------------------------------------------------------
    # Def/use views used by liveness analysis and the allocator.
    # ------------------------------------------------------------------
    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction."""
        if self.dst is not None:
            return (self.dst,)
        return ()

    def uses(self) -> Tuple[Reg, ...]:
        """Registers read by this instruction (guard included)."""
        used = []
        for src in self.srcs:
            if isinstance(src, Reg):
                used.append(src)
        if self.mem is not None and isinstance(self.mem.base, Reg):
            used.append(self.mem.base)
        if self.guard is not None:
            used.append(self.guard)
        return tuple(used)

    def regs(self) -> Tuple[Reg, ...]:
        """All registers referenced (defs then uses)."""
        return self.defs() + self.uses()

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.ST)

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BRA, Opcode.RET, Opcode.EXIT)

    @property
    def latency_class(self):
        return latency_class(self.opcode)

    # ------------------------------------------------------------------
    # Rewriting helpers (used by the allocator's renaming pass).
    # ------------------------------------------------------------------
    def rewrite_regs(self, mapping) -> "Instruction":
        """Return a copy with every register replaced via ``mapping``.

        ``mapping`` is a callable ``Reg -> Reg``; registers it returns
        unchanged are kept as-is.
        """
        new_srcs = tuple(
            mapping(src) if isinstance(src, Reg) else src for src in self.srcs
        )
        new_dst = mapping(self.dst) if self.dst is not None else None
        new_mem = self.mem
        if self.mem is not None and isinstance(self.mem.base, Reg):
            new_mem = MemRef(mapping(self.mem.base), self.mem.offset)
        new_guard = mapping(self.guard) if self.guard is not None else None
        return dataclasses.replace(
            self, dst=new_dst, srcs=new_srcs, mem=new_mem, guard=new_guard
        )

    # ------------------------------------------------------------------
    # Printing.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            bang = "!" if self.guard_negated else ""
            parts.append(f"@{bang}{self.guard}")
        mnemonic = self.opcode.value
        if self.opcode is Opcode.SETP:
            mnemonic += f".{self.cmp.value}"
        if self.opcode in (Opcode.LD, Opcode.ST):
            mnemonic += f".{self.space.value}"
            if self.cache_op != "ca":
                mnemonic += f".{self.cache_op}"
        if self.opcode in (Opcode.MUL, Opcode.MAD) and not (
            self.dtype and self.dtype.is_float
        ):
            mnemonic += ".lo"
        if self.dtype is not None:
            mnemonic += f".{self.dtype.value}"
        parts.append(mnemonic)

        operands = []
        if self.opcode is Opcode.ST:
            operands.append(str(self.mem))
            operands.extend(str(s) for s in self.srcs)
        elif self.opcode is Opcode.LD:
            operands.append(str(self.dst))
            operands.append(str(self.mem))
        elif self.opcode is Opcode.BRA:
            operands.append(self.target)
        elif self.opcode is Opcode.BAR:
            operands.append("0")
        else:
            if self.dst is not None:
                operands.append(str(self.dst))
            operands.extend(str(s) for s in self.srcs)
        if operands:
            return f"{' '.join(parts)} {', '.join(operands)};"
        return f"{' '.join(parts)};"


BodyItem = Union[Instruction, Label]


def iter_instructions(body: Iterable[BodyItem]):
    """Yield only the :class:`Instruction` items of a kernel body."""
    for item in body:
        if isinstance(item, Instruction):
            yield item
