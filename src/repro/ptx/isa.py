"""Instruction-set definitions for the PTX-subset IR.

The paper's CRAT framework operates on NVIDIA PTX, the virtual ISA that
CUDA compiles to.  This module defines the typed subset of PTX that the
rest of the repository manipulates: scalar data types, state spaces
(register / global / local / shared / param), opcodes, comparison
operators, and the latency class each opcode belongs to.

Only the features the paper exercises are modeled: integer and floating
point arithmetic, type conversion, predication, loads/stores to every
state space, uniform branches, and barriers.  This is the IR surface
needed for liveness analysis, graph-coloring register allocation, spill
code insertion (paper Listing 4) and shared-memory spill rewriting
(paper Algorithm 1).
"""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """PTX scalar data types (paper Section 5.2: PTX is type-sensitive)."""

    U8 = "u8"
    U16 = "u16"
    U32 = "u32"
    U64 = "u64"
    S8 = "s8"
    S16 = "s16"
    S32 = "s32"
    S64 = "s64"
    F32 = "f32"
    F64 = "f64"
    B8 = "b8"
    B16 = "b16"
    B32 = "b32"
    B64 = "b64"
    PRED = "pred"

    @property
    def bits(self) -> int:
        """Width of the type in bits (predicates are 1 bit)."""
        if self is DType.PRED:
            return 1
        return int(self.value[1:])

    @property
    def bytes(self) -> int:
        """Width of the type in bytes (predicates occupy one byte when spilled)."""
        return max(1, self.bits // 8)

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_signed(self) -> bool:
        return self.value[0] == "s"

    @property
    def reg_class(self) -> "RegClass":
        """The register class a value of this type occupies."""
        if self is DType.PRED:
            return RegClass.PRED
        if self is DType.F32:
            return RegClass.F32
        if self is DType.F64:
            return RegClass.F64
        if self.bits == 64:
            return RegClass.R64
        return RegClass.R32


class RegClass(enum.Enum):
    """Register classes used by the allocator.

    PTX registers are typed; per paper Section 5.2 a register freed by a
    dead variable can only be reassigned to a variable of a compatible
    type, which is one source of register waste.  We model five classes.
    A 64-bit register costs two 32-bit register slots against the
    per-thread register budget; predicates live in a separate predicate
    file and do not count against it (as on real hardware).
    """

    R32 = "r"
    R64 = "rd"
    F32 = "f"
    F64 = "fd"
    PRED = "p"

    @property
    def slots(self) -> int:
        """Number of 32-bit register-file slots one register of this class uses."""
        if self in (RegClass.R64, RegClass.F64):
            return 2
        if self is RegClass.PRED:
            return 0
        return 1


class Space(enum.Enum):
    """PTX state spaces relevant to spilling and simulation."""

    REG = "reg"
    PARAM = "param"
    GLOBAL = "global"
    LOCAL = "local"
    SHARED = "shared"
    CONST = "const"

    @property
    def is_memory(self) -> bool:
        return self is not Space.REG


class Opcode(enum.Enum):
    """The PTX-subset opcodes."""

    # Data movement.
    MOV = "mov"
    CVT = "cvt"
    LD = "ld"
    ST = "st"
    # Integer / float arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    NEG = "neg"
    ABS = "abs"
    FMA = "fma"
    # Bitwise / shifts.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Special function unit.
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    LG2 = "lg2"
    EX2 = "ex2"
    RCP = "rcp"
    # Predicates / select.
    SETP = "setp"
    SELP = "selp"
    # Control flow.
    BRA = "bra"
    BAR = "bar"
    RET = "ret"
    EXIT = "exit"


class CmpOp(enum.Enum):
    """Comparison operators for ``setp``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class LatencyClass(enum.Enum):
    """Functional-unit latency classes used by the timing model.

    Memory opcode classes are resolved per state space at issue time;
    MEM here is the placeholder class for ld/st before space resolution.
    """

    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    CTRL = "ctrl"
    BARRIER = "barrier"


_SFU_OPS = frozenset(
    {
        Opcode.SQRT,
        Opcode.RSQRT,
        Opcode.SIN,
        Opcode.COS,
        Opcode.LG2,
        Opcode.EX2,
        Opcode.RCP,
        Opcode.DIV,
        Opcode.REM,
    }
)

_CTRL_OPS = frozenset({Opcode.BRA, Opcode.RET, Opcode.EXIT})


def latency_class(opcode: Opcode) -> LatencyClass:
    """Map an opcode to its functional-unit latency class."""
    if opcode in (Opcode.LD, Opcode.ST):
        return LatencyClass.MEM
    if opcode is Opcode.BAR:
        return LatencyClass.BARRIER
    if opcode in _CTRL_OPS:
        return LatencyClass.CTRL
    if opcode in _SFU_OPS:
        return LatencyClass.SFU
    return LatencyClass.ALU


#: Special registers readable via ``mov`` (paper Listing 2).
SPECIAL_REGISTERS = (
    "%tid.x",
    "%tid.y",
    "%ctaid.x",
    "%ctaid.y",
    "%ntid.x",
    "%ntid.y",
    "%nctaid.x",
    "%nctaid.y",
    "%laneid",
    "%warpid",
)

#: Opcodes whose first operand is *not* a destination register.
NO_DST_OPS = frozenset({Opcode.ST, Opcode.BRA, Opcode.BAR, Opcode.RET, Opcode.EXIT})

#: Arity of source operands per opcode (destination excluded); ``None``
#: means variable / special-cased in the instruction constructor.
SRC_ARITY = {
    Opcode.MOV: 1,
    Opcode.CVT: 1,
    Opcode.LD: 1,
    Opcode.ST: 2,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.MAD: 3,
    Opcode.FMA: 3,
    Opcode.DIV: 2,
    Opcode.REM: 2,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.NEG: 1,
    Opcode.ABS: 1,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.NOT: 1,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.SQRT: 1,
    Opcode.RSQRT: 1,
    Opcode.SIN: 1,
    Opcode.COS: 1,
    Opcode.LG2: 1,
    Opcode.EX2: 1,
    Opcode.RCP: 1,
    Opcode.SETP: 2,
    Opcode.SELP: 3,
    Opcode.BRA: 0,
    Opcode.BAR: 0,
    Opcode.RET: 0,
    Opcode.EXIT: 0,
}
