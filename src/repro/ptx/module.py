"""Kernel and module containers for the PTX-subset IR.

A :class:`Kernel` corresponds to one ``.entry`` in a PTX module: its
parameters, its local/shared array declarations (including spill stacks,
paper Listing 4), and its body of labels and instructions.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Set

from .instruction import BodyItem, Instruction, Label, Reg, iter_instructions
from .isa import DType, RegClass, Space


@dataclasses.dataclass(frozen=True)
class Param:
    """A kernel parameter (always passed in ``.param`` space)."""

    name: str
    dtype: DType


@dataclasses.dataclass(frozen=True)
class ArrayDecl:
    """A declared array in local or shared memory.

    ``.local .align 4 .b8 SpillStack[40];`` declares a 40-byte spill
    stack in local memory (paper Listing 4).  Shared arrays model both
    application shared-memory use and Algorithm 1's shared sub-stacks.
    """

    name: str
    space: Space
    size_bytes: int
    align: int = 4

    def __post_init__(self) -> None:
        if self.space not in (Space.LOCAL, Space.SHARED):
            raise ValueError(f"arrays may only live in local/shared, got {self.space}")
        if self.size_bytes <= 0:
            raise ValueError("array size must be positive")


@dataclasses.dataclass
class Kernel:
    """One GPU kernel in the PTX-subset IR."""

    name: str
    params: List[Param] = dataclasses.field(default_factory=list)
    arrays: List[ArrayDecl] = dataclasses.field(default_factory=list)
    body: List[BodyItem] = dataclasses.field(default_factory=list)
    block_size: int = 256

    # ------------------------------------------------------------------
    # Structural queries.
    # ------------------------------------------------------------------
    def instructions(self) -> List[Instruction]:
        """All instructions in body order (labels skipped)."""
        return list(iter_instructions(self.body))

    def labels(self) -> List[str]:
        return [item.name for item in self.body if isinstance(item, Label)]

    def registers(self) -> Set[Reg]:
        """The set of distinct registers referenced anywhere in the body."""
        regs: Set[Reg] = set()
        for inst in iter_instructions(self.body):
            regs.update(inst.regs())
        return regs

    def register_count(self, reg_class: Optional[RegClass] = None) -> int:
        """Number of distinct registers, optionally filtered by class."""
        regs = self.registers()
        if reg_class is None:
            return len(regs)
        return sum(1 for r in regs if r.dtype.reg_class is reg_class)

    def register_slots(self) -> int:
        """32-bit register-file slots needed to hold every distinct register.

        64-bit registers cost two slots; predicates cost none (they live
        in a dedicated predicate file, as on hardware).  This is the raw
        SSA-style demand — the quantity the paper calls the register
        requirement *before* allocation.
        """
        return sum(r.dtype.reg_class.slots for r in self.registers())

    def shared_bytes(self) -> int:
        """Total declared shared-memory bytes per thread block (ShmSize)."""
        return sum(a.size_bytes for a in self.arrays if a.space is Space.SHARED)

    def local_bytes(self) -> int:
        """Total declared local-memory bytes per thread."""
        return sum(a.size_bytes for a in self.arrays if a.space is Space.LOCAL)

    def find_array(self, name: str) -> Optional[ArrayDecl]:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        return None

    def label_index(self) -> Dict[str, int]:
        """Map label name -> index of the following instruction slot."""
        index: Dict[str, int] = {}
        for i, item in enumerate(self.body):
            if isinstance(item, Label):
                index[item.name] = i
        return index

    def validate_targets(self) -> None:
        """Raise if any branch targets a label that does not exist."""
        labels = set(self.labels())
        for inst in iter_instructions(self.body):
            if inst.is_branch and inst.target not in labels:
                raise ValueError(
                    f"kernel {self.name}: branch to undefined label {inst.target!r}"
                )

    def fingerprint(self) -> str:
        """Stable content digest of the kernel (hex SHA-256).

        Hashes the canonical printed form (:func:`repro.ptx.printer.
        print_kernel`), which covers the name, parameters, block size,
        array declarations and every instruction — so two kernels that
        print identically (e.g. a parse→print round trip) share a
        fingerprint, and any semantic edit changes it.  This is the
        kernel component of the evaluation engine's cache keys.
        """
        from .printer import print_kernel

        return hashlib.sha256(print_kernel(self).encode("utf-8")).hexdigest()

    def copy(self) -> "Kernel":
        """A shallow-body copy safe for rewriting passes.

        Instructions are immutable in practice (rewrites replace them),
        so copying the body list is sufficient isolation.
        """
        return Kernel(
            name=self.name,
            params=list(self.params),
            arrays=list(self.arrays),
            body=list(self.body),
            block_size=self.block_size,
        )

    def __str__(self) -> str:
        from .printer import print_kernel

        return print_kernel(self)


@dataclasses.dataclass
class Module:
    """A PTX module: an ordered collection of kernels."""

    kernels: List[Kernel] = dataclasses.field(default_factory=list)

    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel named {name!r}")

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)


def fresh_register_namer(kernel: Kernel, reg_class: RegClass, dtype: DType):
    """Return a factory for fresh registers not colliding with the kernel.

    Used by spill-code insertion, which needs new addressing registers
    (paper Listing 4 introduces ``%d0`` for the spill-stack base).
    """
    existing = {r.name for r in kernel.registers()}
    prefix = f"%{reg_class.value}"
    counter = 0

    def fresh() -> Reg:
        nonlocal counter
        while f"{prefix}{counter}" in existing:
            counter += 1
        name = f"{prefix}{counter}"
        existing.add(name)
        return Reg(name, dtype)

    return fresh
