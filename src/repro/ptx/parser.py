"""Parser for the textual PTX subset.

Parses the output of :mod:`repro.ptx.printer` (and hand-written kernels
in the same dialect, e.g. the paper's Listings 2-4).  The grammar is
line-oriented:

* ``.entry NAME (.param .u64 p0, ...)`` opens a kernel,
* ``.maxntid N, 1, 1`` records the block size,
* ``.local/.shared .align A .b8 NAME[SIZE];`` declares an array,
* ``LABEL:`` places a label,
* everything else is one instruction terminated by ``;``.

The parser raises :class:`PTXParseError` with a line number on malformed
input.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instruction import (
    Imm,
    Instruction,
    Label,
    MemRef,
    Operand,
    Reg,
    Sreg,
    Sym,
)
from .isa import CmpOp, DType, NO_DST_OPS, Opcode, SPECIAL_REGISTERS, Space
from .module import ArrayDecl, Kernel, Module, Param


class PTXParseError(ValueError):
    """Malformed PTX-subset text."""

    def __init__(self, message: str, lineno: Optional[int] = None):
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


_ENTRY_RE = re.compile(r"^\.entry\s+(\w+)\s*\((.*)\)$")
_PARAM_RE = re.compile(r"^\.param\s+\.(\w+)\s+(\w+)$")
_MAXNTID_RE = re.compile(r"^\.maxntid\s+(\d+)\s*(?:,\s*\d+\s*)*$")
_ARRAY_RE = re.compile(
    r"^\.(local|shared)\s+\.align\s+(\d+)\s+\.b8\s+(\w+)\[(\d+)\];$"
)
_LABEL_RE = re.compile(r"^(\$?\w+):$")
_MEMREF_RE = re.compile(r"^\[([%$\w.]+)(?:\+(\d+))?\]$")

_SPACE_NAMES = {s.value for s in Space}
_CMP_NAMES = {c.value for c in CmpOp}
_DTYPE_NAMES = {d.value for d in DType}
_IGNORED_MODIFIERS = {"lo", "wide", "rn", "rz", "approx", "ftz", "sync", "uni"}
_CACHE_OPS = {"ca", "cg"}


def parse_module(text: str) -> Module:
    """Parse PTX-subset text into a :class:`Module`."""
    module = Module()
    kernel: Optional[Kernel] = None
    in_body = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(".entry"):
            if kernel is not None:
                raise PTXParseError("nested .entry", lineno)
            kernel = _parse_entry(line, lineno)
            in_body = False
            continue
        if kernel is None:
            raise PTXParseError(f"statement outside kernel: {line!r}", lineno)
        if line == "{":
            in_body = True
            continue
        if line == "}":
            kernel.validate_targets()
            module.kernels.append(kernel)
            kernel = None
            continue
        match = _MAXNTID_RE.match(line)
        if match:
            kernel.block_size = int(match.group(1))
            continue
        match = _ARRAY_RE.match(line)
        if match:
            space, align, name, size = match.groups()
            kernel.arrays.append(
                ArrayDecl(name, Space(space), int(size), int(align))
            )
            continue
        match = _LABEL_RE.match(line)
        if match:
            kernel.body.append(Label(match.group(1)))
            continue
        if not in_body:
            raise PTXParseError(f"unexpected statement in header: {line!r}", lineno)
        kernel.body.append(_parse_instruction(line, lineno))
    if kernel is not None:
        raise PTXParseError("unterminated kernel (missing '}')")
    return module


def parse_kernel(text: str) -> Kernel:
    """Parse text containing exactly one kernel."""
    module = parse_module(text)
    if len(module.kernels) != 1:
        raise PTXParseError(f"expected exactly 1 kernel, found {len(module.kernels)}")
    return module.kernels[0]


# ----------------------------------------------------------------------
# Internals.
# ----------------------------------------------------------------------
def _parse_entry(line: str, lineno: int) -> Kernel:
    match = _ENTRY_RE.match(line)
    if not match:
        raise PTXParseError(f"malformed .entry: {line!r}", lineno)
    name, params_text = match.groups()
    kernel = Kernel(name=name)
    params_text = params_text.strip()
    if params_text:
        for chunk in params_text.split(","):
            pmatch = _PARAM_RE.match(chunk.strip())
            if not pmatch:
                raise PTXParseError(f"malformed param: {chunk.strip()!r}", lineno)
            dtype_name, pname = pmatch.groups()
            kernel.params.append(Param(pname, DType(dtype_name)))
    return kernel


def _split_mnemonic(
    mnemonic: str, lineno: int
) -> Tuple[Opcode, Optional[DType], Optional[Space], Optional[CmpOp], str]:
    parts = mnemonic.split(".")
    try:
        opcode = Opcode(parts[0])
    except ValueError:
        raise PTXParseError(f"unknown opcode {parts[0]!r}", lineno) from None
    dtype: Optional[DType] = None
    space: Optional[Space] = None
    cmp: Optional[CmpOp] = None
    cache_op = "ca"
    for part in parts[1:]:
        if part in _DTYPE_NAMES:
            dtype = DType(part)
        elif part in _SPACE_NAMES:
            space = Space(part)
        elif part in _CMP_NAMES:
            cmp = CmpOp(part)
        elif part in _CACHE_OPS:
            cache_op = part
        elif part in _IGNORED_MODIFIERS:
            continue
        else:
            raise PTXParseError(f"unknown modifier {part!r} in {mnemonic!r}", lineno)
    return opcode, dtype, space, cmp, cache_op


def _parse_operand(text: str, dtype: Optional[DType], lineno: int) -> Operand:
    text = text.strip()
    if text in SPECIAL_REGISTERS:
        return Sreg(text)
    if text.startswith("%"):
        return Reg(text, _reg_dtype(text, dtype))
    if re.match(r"^-?\d+$", text):
        return Imm(int(text), dtype or DType.S32)
    if re.match(r"^-?\d*\.\d+(e-?\d+)?$", text) or re.match(
        r"^-?\d+\.\d*(e-?\d+)?$", text
    ):
        return Imm(float(text), dtype or DType.F32)
    if re.match(r"^\w+$", text):
        return Sym(text)
    raise PTXParseError(f"cannot parse operand {text!r}", lineno)


def _reg_dtype(name: str, inst_dtype: Optional[DType]) -> DType:
    """Infer a register's type from its name prefix and instruction type.

    The printer does not annotate register declarations, so the parser
    recovers types from the PTX naming convention: ``%p*`` predicates,
    ``%rd*`` 64-bit, ``%fd*`` f64, ``%f*`` f32, ``%r*`` 32-bit int.  The
    instruction dtype refines signedness/width for int registers.
    """
    base = name[1:]
    if base.startswith("p"):
        return DType.PRED
    if base.startswith("fd"):
        return DType.F64
    if base.startswith("rd"):
        if inst_dtype is not None and inst_dtype.bits == 64:
            return inst_dtype
        return DType.U64
    if base.startswith("f"):
        return DType.F32
    if inst_dtype is not None and not inst_dtype.is_float and inst_dtype.bits == 32:
        return inst_dtype
    return DType.U32


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas not inside brackets."""
    out, depth, cur = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _parse_memref(text: str, lineno: int) -> MemRef:
    match = _MEMREF_RE.match(text.strip())
    if not match:
        raise PTXParseError(f"malformed memory reference {text!r}", lineno)
    base_text, offset_text = match.groups()
    offset = int(offset_text) if offset_text else 0
    if base_text.startswith("%"):
        return MemRef(Reg(base_text, _reg_dtype(base_text, DType.U64)), offset)
    return MemRef(Sym(base_text), offset)


def _parse_instruction(line: str, lineno: int) -> Instruction:
    if not line.endswith(";"):
        raise PTXParseError(f"missing ';' on {line!r}", lineno)
    line = line[:-1].strip()

    guard: Optional[Reg] = None
    guard_negated = False
    if line.startswith("@"):
        guard_text, line = line.split(None, 1)
        guard_text = guard_text[1:]
        if guard_text.startswith("!"):
            guard_negated = True
            guard_text = guard_text[1:]
        guard = Reg(guard_text, DType.PRED)

    if " " in line:
        mnemonic, operand_text = line.split(None, 1)
    else:
        mnemonic, operand_text = line, ""
    opcode, dtype, space, cmp, cache_op = _split_mnemonic(mnemonic, lineno)
    operands = _split_operands(operand_text) if operand_text else []

    if opcode is Opcode.BRA:
        if len(operands) != 1:
            raise PTXParseError("bra takes exactly one label", lineno)
        return Instruction(
            Opcode.BRA, target=operands[0], guard=guard, guard_negated=guard_negated
        )
    if opcode in (Opcode.BAR, Opcode.RET, Opcode.EXIT):
        return Instruction(opcode, guard=guard, guard_negated=guard_negated)
    if opcode is Opcode.LD:
        if len(operands) != 2 or space is None:
            raise PTXParseError(f"malformed ld: {line!r}", lineno)
        dst = _parse_operand(operands[0], dtype, lineno)
        if not isinstance(dst, Reg):
            raise PTXParseError("ld destination must be a register", lineno)
        return Instruction(
            Opcode.LD,
            dtype=dtype,
            dst=dst,
            mem=_parse_memref(operands[1], lineno),
            space=space,
            guard=guard,
            guard_negated=guard_negated,
            cache_op=cache_op,
        )
    if opcode is Opcode.ST:
        if len(operands) != 2 or space is None:
            raise PTXParseError(f"malformed st: {line!r}", lineno)
        value = _parse_operand(operands[1], dtype, lineno)
        return Instruction(
            Opcode.ST,
            dtype=dtype,
            srcs=(value,),
            mem=_parse_memref(operands[0], lineno),
            space=space,
            guard=guard,
            guard_negated=guard_negated,
        )

    if opcode in NO_DST_OPS:  # pragma: no cover - handled above
        raise PTXParseError(f"unhandled no-dst opcode {opcode}", lineno)
    if not operands:
        raise PTXParseError(f"{opcode.value} requires operands", lineno)
    dst = _parse_operand(operands[0], dtype, lineno)
    if not isinstance(dst, Reg):
        raise PTXParseError(
            f"{opcode.value} destination must be a register, got {operands[0]!r}",
            lineno,
        )
    if opcode is Opcode.SETP:
        dst = Reg(dst.name, DType.PRED)
    if opcode is Opcode.CVT and dtype is not None:
        dst = Reg(dst.name, _reg_dtype(dst.name, dtype))
    srcs = tuple(_parse_operand(op, dtype, lineno) for op in operands[1:])
    if opcode is Opcode.SELP and srcs and isinstance(srcs[-1], Reg):
        srcs = srcs[:-1] + (Reg(srcs[-1].name, DType.PRED),)
    return Instruction(
        opcode,
        dtype=dtype,
        dst=dst,
        srcs=srcs,
        cmp=cmp,
        guard=guard,
        guard_negated=guard_negated,
    )
