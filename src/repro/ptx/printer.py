"""Textual emitter for the PTX-subset IR.

Output follows the PTX conventions of the paper's listings (List 2-4):
``.entry`` header, ``.param`` declarations, ``.local``/``.shared`` array
declarations, one instruction per line with a trailing semicolon, and
labels flush-left.  :func:`repro.ptx.parser.parse_module` round-trips
this output.
"""

from __future__ import annotations

from typing import List

from .instruction import Instruction, Label
from .module import ArrayDecl, Kernel, Module


def print_array_decl(decl: ArrayDecl) -> str:
    return (
        f".{decl.space.value} .align {decl.align} .b8 "
        f"{decl.name}[{decl.size_bytes}];"
    )


def print_kernel(kernel: Kernel) -> str:
    """Render one kernel as PTX-subset text."""
    lines: List[str] = []
    params = ", ".join(f".param .{p.dtype.value} {p.name}" for p in kernel.params)
    lines.append(f".entry {kernel.name} ({params})")
    lines.append(f".maxntid {kernel.block_size}, 1, 1")
    lines.append("{")
    for decl in kernel.arrays:
        lines.append(f"    {print_array_decl(decl)}")
    for item in kernel.body:
        if isinstance(item, Label):
            lines.append(str(item))
        elif isinstance(item, Instruction):
            lines.append(f"    {item}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected body item {item!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module (kernels separated by blank lines)."""
    return "\n\n".join(print_kernel(k) for k in module.kernels) + "\n"
