"""Structural and type verification for PTX-subset kernels.

The verifier enforces the invariants the rest of the pipeline relies on:

* every branch targets an existing label,
* every register use is preceded by some definition on a path from
  entry (checked conservatively: a def exists somewhere, plus a
  program-order check within the entry block — a use before the first
  label/branch whose only defs come later can never be initialized),
* instruction dtypes are compatible with their register operands
  (PTX is type-sensitive, paper Section 5.2),
* array declarations referenced via :class:`Sym` exist,
* shared/local declarations have positive sizes.

Verification failures raise :class:`VerificationError` listing every
problem found, so tests can assert on specific messages.
"""

from __future__ import annotations

from typing import List, Set

from .instruction import Instruction, Label, MemRef, Reg, Sym
from .isa import DType, Opcode
from .module import Kernel


class VerificationError(ValueError):
    """One or more kernel invariants are violated."""

    def __init__(self, kernel_name: str, problems: List[str]):
        self.problems = problems
        joined = "\n  - ".join(problems)
        super().__init__(f"kernel {kernel_name!r} failed verification:\n  - {joined}")


def _compatible(reg: Reg, inst_dtype: DType) -> bool:
    """Whether a register may appear in an instruction of this dtype.

    Exact match is not required (PTX allows bit-compatible uses, e.g. a
    ``u32`` register in an ``s32`` add) but width and float/int class
    must agree.  Predicate registers only appear where predicates are
    expected, which callers special-case.
    """
    if reg.dtype is DType.PRED:
        return False
    if reg.dtype.is_float != inst_dtype.is_float:
        return False
    return reg.dtype.bits == inst_dtype.bits


def verify_kernel(kernel: Kernel) -> None:
    """Raise :class:`VerificationError` if the kernel is malformed."""
    problems: List[str] = []

    labels = set(kernel.labels())
    label_list = kernel.labels()
    if len(labels) != len(label_list):
        problems.append("duplicate labels present")

    declared_syms: Set[str] = {a.name for a in kernel.arrays}
    declared_syms.update(p.name for p in kernel.params)

    defined: Set[str] = set()
    for inst in kernel.instructions():
        defined.update(r.name for r in inst.defs())

    problems.extend(_check_entry_block_order(kernel, defined))

    for idx, item in enumerate(kernel.body):
        if isinstance(item, Label):
            continue
        inst = item
        where = f"inst {idx} ({inst})"
        if inst.is_branch and inst.target not in labels:
            problems.append(f"{where}: branch to undefined label {inst.target!r}")
        for reg in inst.uses():
            if reg.name not in defined:
                problems.append(f"{where}: use of never-defined register {reg.name}")
        for operand in inst.srcs:
            if isinstance(operand, Sym) and operand.name not in declared_syms:
                problems.append(f"{where}: reference to undeclared symbol {operand.name}")
        if inst.mem is not None and isinstance(inst.mem.base, Sym):
            if inst.mem.base.name not in declared_syms:
                problems.append(
                    f"{where}: memory reference to undeclared symbol {inst.mem.base.name}"
                )
        problems.extend(_check_types(inst, where))

    insts = kernel.instructions()
    if not insts or not insts[-1].is_terminator:
        problems.append("kernel does not end with a terminator (exit/ret/bra)")

    if problems:
        raise VerificationError(kernel.name, problems)


def _check_entry_block_order(kernel: Kernel, defined: Set[str]) -> List[str]:
    """Uses in the entry block that precede *every* def of the register.

    The entry block — the body prefix up to the first label or branch —
    is executed first and straight-line, so a register used there before
    its first definition anywhere is uninitialized on every path.  This
    is a cheap strict subset of the dominance-aware ``DF001`` check in
    :mod:`repro.verify.dataflow`, kept here so the legacy entry point
    stays honest for callers that have not migrated.
    """
    problems: List[str] = []
    seen: Set[str] = set()
    flagged: Set[str] = set()
    for idx, item in enumerate(kernel.body):
        if isinstance(item, Label):
            break
        inst = item
        for reg in inst.uses():
            if (
                reg.name in defined
                and reg.name not in seen
                and reg.name not in flagged
            ):
                flagged.add(reg.name)
                problems.append(
                    f"inst {idx} ({inst}): use of register {reg.name} "
                    f"before its first definition (entry block is "
                    f"straight-line; no path defines it earlier)"
                )
        seen.update(r.name for r in inst.defs())
        if inst.is_terminator:
            break
    return problems


def _check_types(inst: Instruction, where: str) -> List[str]:
    problems: List[str] = []
    dtype = inst.dtype
    if inst.guard is not None and inst.guard.dtype is not DType.PRED:
        problems.append(f"{where}: guard {inst.guard.name} is not a predicate")
    if dtype is None:
        return problems

    # Destination typing.
    if inst.dst is not None:
        if inst.opcode is Opcode.SETP:
            if inst.dst.dtype is not DType.PRED:
                problems.append(f"{where}: setp destination must be a predicate")
        elif inst.opcode in (Opcode.CVT, Opcode.MOV, Opcode.LD):
            # cvt/mov/ld destination carries the instruction dtype.
            if inst.dst.dtype is DType.PRED:
                problems.append(f"{where}: predicate used as data destination")
            elif not _compatible(inst.dst, dtype):
                problems.append(
                    f"{where}: destination {inst.dst.name}:{inst.dst.dtype.value} "
                    f"incompatible with .{dtype.value}"
                )
        else:
            if not _compatible(inst.dst, dtype):
                problems.append(
                    f"{where}: destination {inst.dst.name}:{inst.dst.dtype.value} "
                    f"incompatible with .{dtype.value}"
                )

    # Source typing: mov/cvt may widen/convert; selp's last src is a pred.
    if inst.opcode in (Opcode.MOV, Opcode.CVT):
        return problems
    srcs = inst.srcs
    if inst.opcode is Opcode.SELP and srcs:
        pred = srcs[-1]
        if not (isinstance(pred, Reg) and pred.dtype is DType.PRED):
            problems.append(f"{where}: selp selector must be a predicate register")
        srcs = srcs[:-1]
    if inst.opcode in (Opcode.SHL, Opcode.SHR) and len(srcs) == 2:
        srcs = srcs[:1]  # shift amounts are u32 regardless of value type
    for src in srcs:
        if isinstance(src, Reg):
            if src.dtype is DType.PRED:
                problems.append(f"{where}: predicate {src.name} used as data operand")
            elif not _compatible(src, dtype):
                problems.append(
                    f"{where}: source {src.name}:{src.dtype.value} "
                    f"incompatible with .{dtype.value}"
                )
    return problems
