"""Register allocation: Chaitin-Briggs coloring, linear-scan reference
allocator, spill-code insertion, and the shared-memory spilling
optimization (paper Algorithm 1)."""

from .allocator import (
    AllocationResult,
    DATA_CLASSES,
    InsufficientRegistersError,
    allocate,
    register_demand,
)
from .chaitin_briggs import ColoringResult, chromatic_demand, color_graph
from .interference import InterferenceGraph, build_interference, verify_coloring
from .linear_scan import allocate_linear_scan
from .remat import RematResult, remat_candidates, rematerialize
from .shm_spill import (
    ShmSpillPlan,
    SubStack,
    build_substacks,
    knapsack,
    plan_shared_spilling,
    split_by_type,
    split_per_variable,
    split_single,
)
from .spill import (
    SHARED_SPILL_NAME,
    SPILL_STACK_NAME,
    SpillCodeResult,
    SpillSlot,
    SpillStackLayout,
    insert_spill_code,
    layout_stack,
)

__all__ = [
    "AllocationResult",
    "ColoringResult",
    "DATA_CLASSES",
    "InsufficientRegistersError",
    "InterferenceGraph",
    "SHARED_SPILL_NAME",
    "SPILL_STACK_NAME",
    "ShmSpillPlan",
    "SpillCodeResult",
    "SpillSlot",
    "SpillStackLayout",
    "SubStack",
    "allocate",
    "allocate_linear_scan",
    "build_interference",
    "build_substacks",
    "chromatic_demand",
    "color_graph",
    "insert_spill_code",
    "knapsack",
    "layout_stack",
    "plan_shared_spilling",
    "remat_candidates",
    "rematerialize",
    "RematResult",
    "register_demand",
    "split_by_type",
    "split_per_variable",
    "split_single",
    "verify_coloring",
]
