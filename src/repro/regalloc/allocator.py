"""Public register-allocation facade: ``allocate(kernel, reg_limit)``.

Runs the full paper pipeline (Figure 9, "Register Allocation" box):

1. live-range analysis,
2. interference-graph construction (one graph per register class),
3. partition of the per-thread register budget across classes,
4. Chaitin-Briggs coloring per class,
5. spill-code insertion for uncolorable variables (iterated to a fixed
   point, since spill temporaries add short live ranges),
6. optionally, the shared-memory spilling optimization (Algorithm 1),
7. renaming of virtual registers to physical names.

The budget is expressed in 32-bit register slots per thread — the unit
hardware occupancy calculators use.  64-bit values cost two slots;
predicates live in a separate file and cost none.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..cfg.liveness import LivenessInfo
from ..ptx.instruction import Reg
from ..ptx.isa import DType, RegClass, Space
from ..ptx.module import Kernel
from .chaitin_briggs import ColoringResult, chromatic_demand, color_graph
from .interference import InterferenceGraph, build_interference
from .shm_spill import ShmSpillPlan, SplitKey, plan_shared_spilling, split_by_type
from .spill import (
    SHARED_SPILL_NAME,
    SpillCodeResult,
    SpillRegionInfo,
    insert_spill_code,
)

#: Register classes that consume register-file slots.
DATA_CLASSES = (RegClass.R32, RegClass.R64, RegClass.F32, RegClass.F64)

_MAX_ITERATIONS = 24

#: Loop-weight above which a variable counts as "hot" for budget floors.
_HOT_WEIGHT = 50.0


class InsufficientRegistersError(ValueError):
    """The register limit is too small even with everything spilled."""


@dataclasses.dataclass
class AllocationResult:
    """Outcome of allocating one kernel under a register limit."""

    kernel: Kernel
    reg_per_thread: int
    reg_limit: int
    colors: Dict[RegClass, int]
    spilled: Dict[str, DType]
    shm_plan: Optional[ShmSpillPlan]
    num_local_loads: int
    num_local_stores: int
    num_shared_loads: int
    num_shared_stores: int
    num_address_insts: int
    num_remat_insts: int
    weighted_local_accesses: float
    weighted_shared_accesses: float
    iterations: int
    local_stack_bytes: int
    shm_spill_block_bytes: int
    rematerialized: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Validator-facing provenance: the kernel before physical renaming
    #: (same instructions as ``kernel``, virtual names), the virtual →
    #: physical name map applied, and one record per spill stack — what
    #: :func:`repro.verify.verify_allocation` rechecks independently.
    pre_rename_kernel: Optional[Kernel] = None
    name_map: Dict[str, str] = dataclasses.field(default_factory=dict)
    spill_regions: List[SpillRegionInfo] = dataclasses.field(
        default_factory=list
    )

    @property
    def num_local_insts(self) -> int:
        """Paper's ``Num_local``: inserted local-memory spill instructions."""
        return self.num_local_loads + self.num_local_stores

    @property
    def num_shared_insts(self) -> int:
        """Paper's ``Num_shm``: inserted shared-memory spill instructions."""
        return self.num_shared_loads + self.num_shared_stores

    @property
    def has_spills(self) -> bool:
        return bool(self.spilled)

    @property
    def static_spill_bytes(self) -> int:
        """Total bytes of spill loads+stores, counted statically (Fig 12)."""
        total = 0
        for inst in self.kernel.instructions():
            if inst.is_memory and inst.space in (Space.LOCAL, Space.SHARED):
                if inst.dtype is not None:
                    total += inst.dtype.bytes
        return total


def register_demand(kernel: Kernel) -> int:
    """The paper's ``MaxReg``: slots to hold every variable with no spills.

    Computed as the sum over data classes of the chromatic demand of
    each class's interference graph ("obtained through data flow
    analysis", Section 4.1).
    """
    liveness = LivenessInfo(kernel)
    graphs = build_interference(liveness)
    return sum(
        chromatic_demand(graphs[rc]) * _slots(rc) for rc in DATA_CLASSES
    )


def _slots(rc: RegClass) -> int:
    return 2 if rc in (RegClass.R64, RegClass.F64) else 1


def _partition_budget(
    graphs: Dict[RegClass, InterferenceGraph],
    limit: int,
    unspillable: Set[str],
) -> Dict[RegClass, int]:
    """Split the slot budget across register classes.

    Start every class at its chromatic demand; while the total exceeds
    the limit, take a register away from the class whose next-cheapest
    spill candidate costs the least per freed slot (Chaitin's metric).
    """
    demands = {rc: chromatic_demand(graphs[rc]) for rc in DATA_CLASSES}
    budgets = dict(demands)

    def subgraph_demand(rc: RegClass, names) -> int:
        graph = graphs[rc]
        names = set(names)
        if not names:
            return 0
        sub = InterferenceGraph(rc)
        for name in names:
            sub.add_node(name)
            for other in graph.nodes[name].neighbors & names:
                sub.add_edge(name, other)
        return chromatic_demand(sub)

    # Hard floors: a class must keep enough colors for its unspillable
    # nodes plus one working register when spillable nodes exist.
    floors: Dict[RegClass, int] = {}
    for rc in DATA_CLASSES:
        graph = graphs[rc]
        pinned = [n for n in graph.nodes if n in unspillable]
        spillable = [n for n in graph.nodes if n not in unspillable]
        floor = subgraph_demand(rc, pinned)
        if spillable:
            floor = max(floor + 1, 1) if pinned else max(floor, 1)
        floors[rc] = min(floor, demands[rc]) if demands[rc] else 0

    def total(b: Dict[RegClass, int]) -> int:
        return sum(b[rc] * _slots(rc) for rc in DATA_CLASSES)

    # Soft floors: try to keep every frequently-accessed node (loop
    # weight >= _HOT_WEIGHT) resident — spilling an inner-loop value or
    # a carried address pointer costs far more than the cross-class
    # greedy's static estimate admits.  Only applied when the limit can
    # actually accommodate them.
    soft_floors: Dict[RegClass, int] = {}
    for rc in DATA_CLASSES:
        hot = [
            n
            for n, node in graphs[rc].nodes.items()
            if node.weight >= _HOT_WEIGHT or n in unspillable
        ]
        soft = subgraph_demand(rc, hot)
        if soft < demands[rc]:
            soft += 1  # one working register for the cold traffic
        soft_floors[rc] = max(floors[rc], min(soft, demands[rc]))
    if total(soft_floors) <= limit:
        floors = soft_floors

    # Cheapest-next-spill estimate per class: sorted *dynamic access
    # weights* of spillable nodes; decrementing the budget by one forces
    # roughly one more spill, starting with the cheapest.  Chaitin's
    # weight/degree metric stays the within-class spill choice, but the
    # cross-class comparison must not divide by degree — a class with
    # many mutually-interfering cheap nodes would otherwise look
    # arbitrarily cheap to cut and starve (e.g. all hot f32 accumulators
    # spilled to protect one address register).
    metrics: Dict[RegClass, List[float]] = {}
    cut_count: Dict[RegClass, int] = {rc: 0 for rc in DATA_CLASSES}
    for rc in DATA_CLASSES:
        vals = sorted(
            node.weight
            for name, node in graphs[rc].nodes.items()
            if name not in unspillable
        )
        metrics[rc] = vals

    while total(budgets) > limit:
        candidates = [rc for rc in DATA_CLASSES if budgets[rc] > floors[rc]]
        if not candidates:
            raise InsufficientRegistersError(
                f"register limit {limit} cannot accommodate the kernel "
                f"(floors require {total({rc: floors[rc] for rc in DATA_CLASSES})} slots)"
            )

        def next_cost(rc: RegClass) -> float:
            vals = metrics[rc]
            idx = min(cut_count[rc], len(vals) - 1) if vals else 0
            base = vals[idx] if vals else float("inf")
            return base / _slots(rc)

        victim = min(candidates, key=lambda rc: (next_cost(rc), rc.value))
        budgets[victim] -= 1
        cut_count[victim] += 1
    return budgets


def allocate(
    kernel: Kernel,
    reg_limit: int,
    spare_shm_bytes: int = 0,
    enable_shm_spill: bool = True,
    optimistic: bool = True,
    coalesce: bool = True,
    remat: bool = True,
    split: SplitKey = split_by_type,
    rename: bool = True,
) -> AllocationResult:
    """Allocate registers for ``kernel`` under ``reg_limit`` slots/thread.

    ``spare_shm_bytes`` is the per-block shared-memory budget Algorithm 1
    may use for spill sub-stacks (0 disables it, as does
    ``enable_shm_spill=False`` — the paper's *CRAT-local* variant).

    Returns an :class:`AllocationResult` whose ``kernel`` is rewritten
    (spill code inserted, registers renamed to physical names) and whose
    counters feed the TPSC model.
    """
    if reg_limit <= 0:
        raise ValueError("reg_limit must be positive")

    from .remat import RematResult, remat_candidates, rematerialize

    original = kernel
    # Remat-eligible variables (single mov-immediate def) are nearly
    # free to "spill": bias the spill heuristics toward them.
    remat_eligible = (
        remat_candidates(original, {r.name for r in original.registers()})
        if remat
        else {}
    )
    spilled: Dict[str, DType] = {}
    remat_values: Dict[str, object] = {}
    remat_result: Optional[RematResult] = None
    shm_vars: Set[str] = set()
    shm_plan: Optional[ShmSpillPlan] = None
    base_liveness = LivenessInfo(original)

    current = original.copy()
    local_result: Optional[SpillCodeResult] = None
    shared_result: Optional[SpillCodeResult] = None
    unspillable: Set[str] = set()
    pinned_bases: Set[str] = set()
    colorings: Dict[RegClass, ColoringResult] = {}
    liveness = base_liveness

    iteration = 0
    while True:
        iteration += 1
        if iteration > _MAX_ITERATIONS:
            raise InsufficientRegistersError(
                f"allocation did not converge in {_MAX_ITERATIONS} iterations "
                f"at reg_limit={reg_limit}"
            )
        if iteration > 1:
            liveness = LivenessInfo(current)
        # Only the stack-base registers are *pinned* (they interfere with
        # their whole class: the base must stay resident across the
        # kernel).  Spill temporaries are merely unspillable — their
        # natural live ranges are a couple of instructions.
        graphs = build_interference(liveness, pinned=pinned_bases)
        for graph in graphs.values():
            for name, node in graph.nodes.items():
                if name in remat_eligible:
                    node.weight *= 0.125
        budgets = _partition_budget(graphs, reg_limit, unspillable)
        colorings = {}
        new_spills: Dict[str, DType] = {}
        for rc in DATA_CLASSES:
            result = color_graph(
                graphs[rc],
                budgets[rc],
                unspillable=unspillable,
                optimistic=optimistic,
                coalesce=coalesce,
            )
            colorings[rc] = result
            for name in result.spilled:
                if name in unspillable:
                    raise InsufficientRegistersError(
                        f"spill temporary {name} could not be colored at "
                        f"reg_limit={reg_limit}"
                    )
                new_spills[name] = liveness.dtype_of[name]
        # Predicates: color with unlimited budget (separate file).
        pred_graph = graphs[RegClass.PRED]
        colorings[RegClass.PRED] = color_graph(
            pred_graph, k=max(len(pred_graph), 1), coalesce=coalesce
        )

        # Constant-defined candidates rematerialize instead of spilling
        # (Briggs); the rest go to memory.
        if remat:
            eligible = remat_candidates(original, new_spills)
            for name in eligible:
                new_spills.pop(name)
            remat_values.update(eligible)
        else:
            eligible = {}

        if not new_spills and not eligible:
            break

        spilled.update(new_spills)
        # Re-plan the local/shared partition of the cumulative spill set.
        if enable_shm_spill and spare_shm_bytes > 0:
            shm_plan = plan_shared_spilling(
                spilled,
                base_liveness,
                spare_shm_bytes,
                original.block_size,
                split=split,
            )
            shm_vars = set(shm_plan.shared_variables)
        else:
            shm_plan = None
            shm_vars = set()

        base = original
        remat_temp_names: Set[str] = set()
        if remat_values:
            remat_result = rematerialize(original, remat_values)
            base = remat_result.kernel
            remat_temp_names = remat_result.temp_names
        else:
            remat_result = None

        local_spill = {n: t for n, t in spilled.items() if n not in shm_vars}
        shared_spill = {n: t for n, t in spilled.items() if n in shm_vars}
        local_result = insert_spill_code(base, local_spill, Space.LOCAL)
        current = local_result.kernel
        unspillable = set(local_result.temp_names) | remat_temp_names
        pinned_bases = set()
        if local_result.base_reg is not None:
            pinned_bases.add(local_result.base_reg.name)
        if shared_spill:
            shared_result = insert_spill_code(
                current,
                shared_spill,
                Space.SHARED,
                stack_name=SHARED_SPILL_NAME,
                per_thread_indexing=True,
            )
            current = shared_result.kernel
            unspillable |= shared_result.temp_names
            if shared_result.base_reg is not None:
                pinned_bases.add(shared_result.base_reg.name)
        else:
            shared_result = None

    weighted_local, weighted_shared = _weighted_spill_accesses(
        current,
        local_base=local_result.base_reg.name
        if local_result and local_result.base_reg
        else None,
        shared_base=shared_result.base_reg.name
        if shared_result and shared_result.base_reg
        else None,
    )

    final = current
    name_map = _build_name_map(colorings)
    if rename:
        final = _rename(final, name_map)

    spill_regions: List[SpillRegionInfo] = []
    for spill_result in (local_result, shared_result):
        if spill_result is not None:
            region = spill_result.region()
            if region is not None:
                spill_regions.append(region)

    colors = {rc: colorings[rc].colors_used for rc in DATA_CLASSES}
    reg_per_thread = sum(colors[rc] * _slots(rc) for rc in DATA_CLASSES)

    return AllocationResult(
        kernel=final,
        reg_per_thread=reg_per_thread,
        reg_limit=reg_limit,
        colors=colors,
        spilled=dict(spilled),
        shm_plan=shm_plan,
        num_local_loads=local_result.num_loads if local_result else 0,
        num_local_stores=local_result.num_stores if local_result else 0,
        num_shared_loads=shared_result.num_loads if shared_result else 0,
        num_shared_stores=shared_result.num_stores if shared_result else 0,
        num_address_insts=(
            (local_result.num_address_insts if local_result else 0)
            + (shared_result.num_address_insts if shared_result else 0)
        ),
        num_remat_insts=(
            remat_result.num_remat_insts if remat_result is not None else 0
        ),
        weighted_local_accesses=weighted_local,
        weighted_shared_accesses=weighted_shared,
        iterations=iteration,
        local_stack_bytes=(
            local_result.layout.total_bytes if local_result else 0
        ),
        shm_spill_block_bytes=(shm_plan.shared_block_bytes if shm_plan else 0),
        rematerialized=dict(remat_values),
        pre_rename_kernel=current,
        name_map=name_map,
        spill_regions=spill_regions,
    )


def _build_name_map(
    colorings: Dict[RegClass, ColoringResult]
) -> Dict[str, str]:
    """Virtual → physical name map implied by the per-class colorings."""
    name_map: Dict[str, str] = {}
    for rc, result in colorings.items():
        prefix = f"%{rc.value}"
        for vname, color in result.coloring.items():
            name_map[vname] = f"{prefix}{color}"
    return name_map


def _rename(kernel: Kernel, name_map: Dict[str, str]) -> Kernel:
    """Rewrite virtual register names to physical ``%r<color>`` names."""

    def remap(reg: Reg) -> Reg:
        new_name = name_map.get(reg.name)
        if new_name is None:
            return reg
        return Reg(new_name, reg.dtype)

    out = kernel.copy()
    out.body = [
        item if not hasattr(item, "rewrite_regs") else item.rewrite_regs(remap)
        for item in out.body
    ]
    return out


def _weighted_spill_accesses(
    kernel: Kernel,
    local_base: Optional[str],
    shared_base: Optional[str],
) -> tuple:
    """Loop-depth-weighted counts of local/shared *spill* instructions.

    Spill accesses are identified by their base register: spill code
    addresses exclusively through the stack-base registers created by
    :func:`insert_spill_code`, so application memory traffic (including
    the app's own shared-memory tiles) is excluded.
    """
    from ..cfg.graph import CFG
    from ..cfg.loops import loop_depths

    cfg = CFG(kernel)
    depths = loop_depths(cfg)
    weighted_local = 0.0
    weighted_shared = 0.0
    for block in cfg.blocks:
        scale = 10.0 ** depths.get(block.index, 0)
        for inst in block.instructions:
            if not inst.is_memory or inst.mem is None:
                continue
            base = inst.mem.base
            base_name = base.name if isinstance(base, Reg) else None
            if inst.space is Space.LOCAL and base_name == local_base:
                weighted_local += scale
            elif inst.space is Space.SHARED and base_name == shared_base:
                weighted_shared += scale
    return weighted_local, weighted_shared
