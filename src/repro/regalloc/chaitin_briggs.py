"""Chaitin-Briggs graph-coloring register allocation (paper Section 5.1).

The paper implements "a Chaitin-Briggs' register allocator [10]": build
the interference graph, color it, and spill what cannot be colored.
This module colors *one register class* with ``k`` colors:

* **simplify** — repeatedly remove any node with degree < k (it is
  trivially colorable) and push it on the select stack;
* **spill candidate** — when no low-degree node exists, pick the node
  with the smallest Chaitin metric ``weight / degree`` and push it
  *optimistically* (Briggs: it may still get a color if its neighbors
  happen to share colors);
* **select** — pop nodes, assigning the lowest color unused by already
  colored neighbors; optimistic nodes with no free color become actual
  spills.

Conservative move coalescing (George's test) is applied first when
enabled; it removes copies the SSA-style PTX front end produces and is
ablated in ``benchmarks/test_ablation_allocator.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from .interference import InterferenceGraph


@dataclasses.dataclass
class ColoringResult:
    """Outcome of coloring one class graph with ``k`` colors."""

    coloring: Dict[str, int]
    spilled: List[str]
    colors_used: int
    coalesced: Dict[str, str]  # merged name -> representative it joined

    @property
    def success(self) -> bool:
        return not self.spilled


def color_graph(
    graph: InterferenceGraph,
    k: int,
    unspillable: Optional[Set[str]] = None,
    optimistic: bool = True,
    coalesce: bool = True,
) -> ColoringResult:
    """Color ``graph`` with at most ``k`` colors, spilling when forced.

    ``unspillable`` names (spill temps, pinned base registers) are never
    chosen as spill candidates; if the graph cannot be colored without
    spilling one of them, ``ValueError`` is raised — callers guarantee
    spill temps have tiny live ranges precisely so this cannot happen
    for sensible ``k``.

    ``optimistic=False`` degrades Briggs to classic pessimistic Chaitin
    (a spill candidate is spilled immediately); exposed for the
    allocator ablation benchmark.
    """
    unspillable = unspillable or set()
    if k < 0:
        raise ValueError("k must be non-negative")

    # --- coalescing (conservative, George's test) ---------------------
    alias: Dict[str, str] = {}
    adjacency: Dict[str, Set[str]] = {
        name: set(node.neighbors) for name, node in graph.nodes.items()
    }
    weight: Dict[str, float] = {
        name: node.weight for name, node in graph.nodes.items()
    }

    def find(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    if coalesce and k > 0:
        for pair in sorted(graph.move_pairs, key=lambda p: sorted(p)):
            a, b = sorted(pair)
            a, b = find(a), find(b)
            if a == b or b in adjacency.get(a, ()):  # merged or now interfering
                continue
            if a not in adjacency or b not in adjacency:
                continue
            # George: safe to merge b into a if every high-degree
            # neighbor of b already interferes with a.
            safe = all(
                (len(adjacency[t]) < k) or (t in adjacency[a])
                for t in adjacency[b]
            )
            if not safe:
                continue
            # Don't coalesce into/out of unspillable pinned names other
            # than keeping the pinned name as representative.
            rep, gone = (a, b)
            if gone in unspillable and rep not in unspillable:
                rep, gone = gone, rep
            if gone in unspillable:
                continue
            for t in adjacency[gone]:
                adjacency[t].discard(gone)
                if t != rep:
                    adjacency[t].add(rep)
                    adjacency[rep].add(t)
            weight[rep] = weight.get(rep, 0.0) + weight.get(gone, 0.0)
            del adjacency[gone]
            alias[gone] = rep

    # --- simplify / optimistic spill -----------------------------------
    degrees = {name: len(neigh) for name, neigh in adjacency.items()}
    removed: Set[str] = set()
    stack: List[str] = []
    optimistic_nodes: Set[str] = set()
    remaining = set(adjacency)

    def current_degree(name: str) -> int:
        return degrees[name]

    while remaining:
        simplifiable = None
        for name in sorted(remaining, key=lambda n: (degrees[n], n)):
            if degrees[name] < k:
                simplifiable = name
                break
        if simplifiable is None:
            # Choose a spill candidate by Chaitin's metric.
            candidates = [n for n in remaining if n not in unspillable]
            if not candidates:
                raise ValueError(
                    "graph not colorable and all remaining nodes are unspillable"
                )
            simplifiable = min(
                candidates,
                key=lambda n: (weight.get(n, 0.0) / (degrees[n] + 1), n),
            )
            optimistic_nodes.add(simplifiable)
        remaining.discard(simplifiable)
        removed.add(simplifiable)
        stack.append(simplifiable)
        for neigh in adjacency[simplifiable]:
            if neigh not in removed:
                degrees[neigh] -= 1

    # --- select ---------------------------------------------------------
    coloring: Dict[str, int] = {}
    spilled: List[str] = []
    while stack:
        name = stack.pop()
        if not optimistic and name in optimistic_nodes:
            # Pessimistic Chaitin: spill candidates are spilled outright,
            # never given the chance Briggs optimism affords them.
            spilled.append(name)
            continue
        used = {
            coloring[neigh]
            for neigh in adjacency[name]
            if neigh in coloring
        }
        color = next((c for c in range(k) if c not in used), None)
        if color is None:
            spilled.append(name)
            continue
        coloring[name] = color

    # Resolve aliases: coalesced names take their representative's fate.
    for gone in alias:
        rep = find(gone)
        if rep in coloring:
            coloring[gone] = coloring[rep]
        elif rep in spilled:
            spilled.append(gone)

    colors_used = (max(coloring.values()) + 1) if coloring else 0
    rep_alias = {gone: find(gone) for gone in alias}
    return ColoringResult(
        coloring=coloring,
        spilled=sorted(set(spilled)),
        colors_used=colors_used,
        coalesced=rep_alias,
    )


def chromatic_demand(graph: InterferenceGraph) -> int:
    """Colors needed when no limit applies (color with k = |V|).

    This is the per-class register demand used to compute the paper's
    ``MaxReg``: allocating more registers than this "would not increase
    the single-thread performance" (Section 4.1).
    """
    if not graph.nodes:
        return 0
    result = color_graph(graph, k=len(graph.nodes), coalesce=True)
    return result.colors_used
