"""Interference-graph construction (paper Section 5.1, step 1).

Two variables interfere when one is defined at a point where the other
is live; interfering variables cannot share a register.  PTX is
type-sensitive (Section 5.2): "when a variable dies, the corresponding
register could not be assigned to a variable with different type" — we
model this by building one interference graph per register class, so a
freed f32 register is never handed to an s32 variable.

Move-related pairs (``mov %a, %b``) are recorded separately; the
Chaitin-Briggs allocator uses them for conservative coalescing hints.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..cfg.liveness import LivenessInfo, iter_interference_sites
from ..ptx.isa import RegClass


@dataclasses.dataclass
class InterferenceNode:
    """One variable in the interference graph."""

    name: str
    reg_class: RegClass
    neighbors: Set[str] = dataclasses.field(default_factory=set)
    weight: float = 0.0  # loop-weighted access count (spill cost numerator)
    accesses: int = 0

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def spill_metric(self) -> float:
        """Chaitin's heuristic: cheap-to-spill = low weight, high degree."""
        return self.weight / (self.degree + 1)


class InterferenceGraph:
    """Per-class interference graph for one kernel."""

    def __init__(self, reg_class: RegClass):
        self.reg_class = reg_class
        self.nodes: Dict[str, InterferenceNode] = {}
        self.move_pairs: Set[FrozenSet[str]] = set()

    def add_node(self, name: str, weight: float = 0.0, accesses: int = 0) -> None:
        node = self.nodes.get(name)
        if node is None:
            self.nodes[name] = InterferenceNode(
                name, self.reg_class, weight=weight, accesses=accesses
            )
        else:
            node.weight = max(node.weight, weight)
            node.accesses = max(node.accesses, accesses)

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self.nodes[a].neighbors.add(b)
        self.nodes[b].neighbors.add(a)

    def interferes(self, a: str, b: str) -> bool:
        return b in self.nodes.get(a, InterferenceNode(a, self.reg_class)).neighbors

    def add_move_pair(self, a: str, b: str) -> None:
        if a != b:
            self.move_pairs.add(frozenset((a, b)))

    def degree(self, name: str) -> int:
        return self.nodes[name].degree

    def max_clique_lower_bound(self) -> int:
        """A fast lower bound on chromatic number (peak simultaneous degree)."""
        if not self.nodes:
            return 0
        return max(node.degree for node in self.nodes.values()) + 1

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes


def build_interference(
    liveness: LivenessInfo,
    pinned: Optional[Iterable[str]] = None,
) -> Dict[RegClass, InterferenceGraph]:
    """Build the per-class interference graphs for one kernel.

    ``pinned`` registers (e.g. a spill-stack base address that must stay
    resident) are included as ordinary nodes; the allocator marks them
    unspillable.

    The standard construction: at every instruction, each defined
    register interferes with every register live out of that point.  For
    a register-to-register ``mov``, the def does not interfere with the
    moved source (they may share a register), and the pair is recorded
    as move-related for coalescing.
    """
    graphs: Dict[RegClass, InterferenceGraph] = {
        rc: InterferenceGraph(rc) for rc in RegClass
    }
    dtype_of = liveness.dtype_of

    def class_of(name: str) -> RegClass:
        return dtype_of[name].reg_class

    # Seed nodes with spill weights from the live ranges.
    for name, rng in liveness.ranges.items():
        graphs[class_of(name)].add_node(
            name, weight=rng.weight, accesses=rng.accesses
        )

    for site in iter_interference_sites(liveness):
        inst, live_out, move_src = site.inst, site.live_out, site.move_src
        if move_src is not None:
            if inst.dst is not None and class_of(move_src) is class_of(inst.dst.name):
                graphs[class_of(move_src)].add_move_pair(inst.dst.name, move_src)
        for dreg in inst.defs():
            dclass = class_of(dreg.name)
            graph = graphs[dclass]
            for live_name in live_out:
                if live_name == dreg.name:
                    continue
                if class_of(live_name) is not dclass:
                    continue
                if move_src is not None and live_name == move_src:
                    continue  # move pair: may share a register
                graph.add_edge(dreg.name, live_name)
        # Registers simultaneously live out of the same point interfere
        # pairwise only if some def separates them; the def-vs-live-out
        # rule above captures exactly that, because every live range
        # starts at a def.  (Kernel parameters/specials enter via movs.)
    if pinned:
        # A pinned register interferes with everything in its class: it
        # must hold its value across the whole kernel.
        for name in pinned:
            if name not in dtype_of:
                continue
            graph = graphs[class_of(name)]
            graph.add_node(name)
            for other in list(graph.nodes):
                if other != name:
                    graph.add_edge(name, other)
    return graphs


def verify_coloring(
    graph: InterferenceGraph, coloring: Dict[str, int]
) -> List[Tuple[str, str]]:
    """Return interfering pairs that received the same color (should be [])."""
    conflicts = []
    for name, node in graph.nodes.items():
        if name not in coloring:
            continue
        for other in node.neighbors:
            if other in coloring and coloring[other] == coloring[name] and name < other:
                conflicts.append((name, other))
    return conflicts
