"""Linear-scan register allocation (Poletto & Sarkar [13]).

The paper cross-validates its Chaitin-Briggs allocator against the
nvcc PTX assembler's (undisclosed) allocator by comparing spill
load/store bytes across register limits (Figure 12).  nvcc is not
available offline, so this module provides a genuinely *different*
allocation algorithm to play the reference role: live intervals are
sorted by start point and registers assigned greedily; on pressure, the
interval with the furthest end point is spilled.

Like the graph-coloring path it shares the spill-code machinery, so the
two allocators are directly comparable on spill bytes, spill counts,
and (through the simulator) performance.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..cfg.liveness import LivenessInfo
from ..ptx.isa import DType, RegClass, Space
from ..ptx.module import Kernel
from .allocator import (
    DATA_CLASSES,
    AllocationResult,
    InsufficientRegistersError,
    _slots,
)
from .spill import insert_spill_code


@dataclasses.dataclass
class _Interval:
    name: str
    dtype: DType
    start: int
    end: int
    weight: float

    @property
    def reg_class(self) -> RegClass:
        return self.dtype.reg_class


def _scan_class(
    intervals: List[_Interval], k: int, unspillable: Set[str]
) -> tuple:
    """Linear scan over one class: returns (assignment, spilled names)."""
    assignment: Dict[str, int] = {}
    spilled: List[str] = []
    active: List[_Interval] = []  # kept sorted by end point
    free = list(range(k - 1, -1, -1))  # pop() yields the lowest index

    def place(interval: _Interval, reg: int) -> None:
        assignment[interval.name] = reg
        active.append(interval)
        active.sort(key=lambda iv: (iv.end, iv.name))

    def evict(victim: _Interval) -> int:
        reg = assignment.pop(victim.name)
        spilled.append(victim.name)
        active.remove(victim)
        return reg

    for interval in sorted(intervals, key=lambda iv: (iv.start, iv.name)):
        # Expire intervals that ended before this one starts.
        still_active = []
        for iv in active:
            if iv.end < interval.start:
                free.append(assignment[iv.name])
            else:
                still_active.append(iv)
        active[:] = still_active

        if free:
            place(interval, free.pop())
            continue
        # Register pressure: spill the active interval ending last
        # (Poletto-Sarkar) if it outlasts the new one; otherwise spill
        # the new interval itself.  Unspillable intervals always win.
        candidates = [iv for iv in active if iv.name not in unspillable]
        victim: Optional[_Interval] = candidates[-1] if candidates else None
        must_place = interval.name in unspillable
        if victim is not None and (must_place or victim.end > interval.end):
            place(interval, evict(victim))
        elif must_place:
            raise InsufficientRegistersError(
                "linear scan cannot place an unspillable interval"
            )
        else:
            spilled.append(interval.name)
    return assignment, spilled


def allocate_linear_scan(
    kernel: Kernel,
    reg_limit: int,
    rename: bool = True,
) -> AllocationResult:
    """Allocate with linear scan; local-memory spilling only.

    The reference allocator deliberately skips the shared-memory
    optimization — it stands in for a conventional compiler, which is
    exactly what Figure 12 compares against.
    """
    if reg_limit <= 0:
        raise ValueError("reg_limit must be positive")

    original = kernel
    spilled: Dict[str, DType] = {}
    unspillable: Set[str] = set()
    current = original.copy()
    local_result = None
    assignment_by_class: Dict[RegClass, Dict[str, int]] = {}
    iterations = 0

    while True:
        iterations += 1
        if iterations > 24:
            raise InsufficientRegistersError(
                f"linear scan did not converge at reg_limit={reg_limit}"
            )
        liveness = LivenessInfo(current)
        intervals_by_class: Dict[RegClass, List[_Interval]] = {
            rc: [] for rc in RegClass
        }
        for name, rng in liveness.ranges.items():
            intervals_by_class[rng.dtype.reg_class].append(
                _Interval(name, rng.dtype, rng.start, rng.end, rng.weight)
            )

        # Budget partition: greedy, proportional to per-class pressure.
        budgets = _partition(liveness, intervals_by_class, reg_limit, unspillable)

        new_spills: Dict[str, DType] = {}
        assignment_by_class = {}
        for rc in DATA_CLASSES:
            assignment, class_spills = _scan_class(
                intervals_by_class[rc], budgets[rc], unspillable
            )
            assignment_by_class[rc] = assignment
            for name in class_spills:
                new_spills[name] = liveness.dtype_of[name]
        pred_assignment, _ = _scan_class(
            intervals_by_class[RegClass.PRED],
            max(len(intervals_by_class[RegClass.PRED]), 1),
            set(),
        )
        assignment_by_class[RegClass.PRED] = pred_assignment

        if not new_spills:
            break
        spilled.update(new_spills)
        local_result = insert_spill_code(original, spilled, Space.LOCAL)
        current = local_result.kernel
        unspillable = set(local_result.temp_names)

    final = current
    if rename:
        from ..ptx.instruction import Reg

        name_map: Dict[str, str] = {}
        for rc, assignment in assignment_by_class.items():
            prefix = f"%{rc.value}"
            for vname, idx in assignment.items():
                name_map[vname] = f"{prefix}{idx}"

        def remap(reg):
            new = name_map.get(reg.name)
            return Reg(new, reg.dtype) if new else reg

        final = current.copy()
        final.body = [
            item if not hasattr(item, "rewrite_regs") else item.rewrite_regs(remap)
            for item in current.body
        ]

    colors = {
        rc: (max(assignment_by_class[rc].values()) + 1 if assignment_by_class[rc] else 0)
        for rc in DATA_CLASSES
    }
    reg_per_thread = sum(colors[rc] * _slots(rc) for rc in DATA_CLASSES)
    return AllocationResult(
        kernel=final,
        reg_per_thread=reg_per_thread,
        reg_limit=reg_limit,
        colors=colors,
        spilled=dict(spilled),
        shm_plan=None,
        num_local_loads=local_result.num_loads if local_result else 0,
        num_local_stores=local_result.num_stores if local_result else 0,
        num_shared_loads=0,
        num_shared_stores=0,
        num_address_insts=local_result.num_address_insts if local_result else 0,
        num_remat_insts=0,
        weighted_local_accesses=float(
            (local_result.num_loads + local_result.num_stores) if local_result else 0
        ),
        weighted_shared_accesses=0.0,
        iterations=iterations,
        local_stack_bytes=local_result.layout.total_bytes if local_result else 0,
        shm_spill_block_bytes=0,
    )


def _partition(
    liveness: LivenessInfo,
    intervals_by_class: Dict[RegClass, List[_Interval]],
    limit: int,
    unspillable: Set[str],
) -> Dict[RegClass, int]:
    """Split the slot budget across classes by peak pressure.

    Each class keeps at least the peak simultaneous pressure of its
    *unspillable* intervals (spill temporaries and stack bases must
    always be placeable), plus one working register when spillable
    intervals exist.
    """
    # Linear scan works on whole [start, end] intervals, so its true
    # demand is the peak *interval* overlap — higher than instantaneous
    # liveness pressure whenever ranges have lifetime holes.
    demand = {rc: _peak_overlap(intervals_by_class[rc]) for rc in DATA_CLASSES}
    budgets = dict(demand)

    floors: Dict[RegClass, int] = {}
    for rc in DATA_CLASSES:
        intervals = intervals_by_class[rc]
        pinned = [iv for iv in intervals if iv.name in unspillable]
        floor = _peak_overlap(pinned)
        if any(iv.name not in unspillable for iv in intervals):
            floor = max(floor + 1, 1)
        floors[rc] = min(max(floor, 1 if intervals else 0), demand[rc])

    def total(b):
        return sum(b[rc] * _slots(rc) for rc in DATA_CLASSES)

    # Reduce the largest consumer first until we fit.
    while total(budgets) > limit:
        candidates = [rc for rc in DATA_CLASSES if budgets[rc] > floors[rc]]
        if not candidates:
            raise InsufficientRegistersError(
                f"register limit {limit} too small for linear scan "
                f"(floors need {total(floors)} slots)"
            )
        victim = max(candidates, key=lambda rc: (budgets[rc] * _slots(rc), rc.value))
        budgets[victim] -= 1
    return budgets


def _peak_overlap(intervals: List[_Interval]) -> int:
    """Maximum number of simultaneously-live intervals."""
    events = []
    for iv in intervals:
        events.append((iv.start, 1))
        events.append((iv.end + 1, -1))
    peak = count = 0
    for _, delta in sorted(events):
        count += delta
        peak = max(peak, count)
    return peak
