"""Rematerialization of constant-defined spill candidates.

A variable whose only definition is ``mov <reg>, <immediate>`` never
needs a memory home: instead of spilling it, the allocator deletes the
definition and re-creates the constant with a fresh ``mov`` immediately
before each use (Briggs' rematerialization).  This is dramatically
cheaper than a memory spill — one ALU instruction per use instead of a
local-memory round trip — and is what production GPU compilers do with
the coefficient constants that otherwise dominate spill candidates.

The extra ``mov`` instructions are accounted separately
(``num_remat_insts``) and enter the TPSC spill cost through the
``Num_others`` term.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from ..ptx.instruction import Imm, Instruction, Label, Reg
from ..ptx.isa import DType, Opcode
from ..ptx.module import Kernel
from .spill import _TempNamer


@dataclasses.dataclass
class RematResult:
    """Outcome of one rematerialization pass."""

    kernel: Kernel
    temp_names: Set[str]
    num_remat_insts: int
    rematerialized: Dict[str, Imm]


def remat_candidates(kernel: Kernel, names) -> Dict[str, Imm]:
    """The subset of ``names`` eligible for rematerialization.

    Eligible means: exactly one definition in the kernel, and that
    definition is ``mov`` of an immediate.
    """
    defs: Dict[str, List[Instruction]] = {}
    names = set(names)
    for inst in kernel.instructions():
        for reg in inst.defs():
            if reg.name in names:
                defs.setdefault(reg.name, []).append(inst)
    eligible: Dict[str, Imm] = {}
    for name, sites in defs.items():
        if len(sites) != 1:
            continue
        inst = sites[0]
        if (
            inst.opcode is Opcode.MOV
            and inst.guard is None
            and len(inst.srcs) == 1
            and isinstance(inst.srcs[0], Imm)
        ):
            eligible[name] = inst.srcs[0]
    return eligible


def rematerialize(kernel: Kernel, values: Dict[str, Imm]) -> RematResult:
    """Drop the defs of ``values`` and re-create them before each use.

    Returns a new kernel; the input is unmodified.  Temporaries holding
    rematerialized constants live for a single instruction, so they are
    reported as unspillable to subsequent coloring rounds.
    """
    out = kernel.copy()
    if not values:
        return RematResult(out, set(), 0, {})
    namer = _TempNamer(out)
    new_body: List = []
    temp_names: Set[str] = set()
    count = 0
    for item in out.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        inst = item
        # Drop the (single, mov-imm) definition.
        if (
            inst.opcode is Opcode.MOV
            and inst.dst is not None
            and inst.dst.name in values
            and len(inst.srcs) == 1
            and isinstance(inst.srcs[0], Imm)
        ):
            continue
        mapping: Dict[str, Reg] = {}
        for reg in dict.fromkeys(inst.uses()):
            if reg.name in values and reg.name not in mapping:
                imm = values[reg.name]
                tmp = namer.fresh(reg.dtype)
                temp_names.add(tmp.name)
                new_body.append(
                    Instruction(Opcode.MOV, dtype=reg.dtype, dst=tmp, srcs=(imm,))
                )
                mapping[reg.name] = tmp
                count += 1
        if mapping:
            inst = inst.rewrite_regs(lambda r: mapping.get(r.name, r))
        new_body.append(inst)
    out.body = new_body
    return RematResult(out, temp_names, count, dict(values))
