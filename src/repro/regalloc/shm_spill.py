"""Shared-memory spilling optimization (paper Algorithm 1, Section 5.3).

Off-chip local memory is far slower than on-chip shared memory, and
most applications leave shared memory nearly idle (3.8% average
utilization, paper Figure 7).  Algorithm 1 therefore relocates the most
profitable parts of the spill stack to the *spare* shared memory:

1. **split** the spill stack into ``N`` sub-stacks by data type and
   width ("all the integer variables with 32-bit width are spilled to
   the same sub-stack");
2. **gain estimation** — scan the kernel and count, per sub-stack, the
   number of spill instructions that would access it;
3. **0-1 knapsack** — each sub-stack either moves to shared memory or
   stays local; maximize total gain subject to the spare shared-memory
   budget, solved by dynamic programming.

The knapsack weight of a sub-stack is its *per-block* footprint:
``per-thread bytes x block size``, because every thread of the block
needs its own copy of the slot.  The spare budget is what the TLP
target leaves unused:
``SpareShmSize = shm_per_sm / TLP - ShmSize`` — the optimization
"ensures that the TLP is not changed and only utilizes the spare shared
memory" (Section 5.3).

Alternative split granularities (single stack, per-variable) are
implemented for the ablation the paper defers to future work.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from ..cfg.liveness import LivenessInfo
from ..ptx.isa import DType

SplitKey = Callable[[str, DType], str]


def split_by_type(name: str, dtype: DType) -> str:
    """Paper's split: one sub-stack per (type kind, width)."""
    kind = "f" if dtype.is_float else "i"
    return f"{kind}{dtype.bits}"


def split_single(name: str, dtype: DType) -> str:
    """Degenerate split: the whole stack is one sub-stack (ablation)."""
    return "all"


def split_per_variable(name: str, dtype: DType) -> str:
    """Finest split: every variable is its own sub-stack (ablation)."""
    return name


@dataclasses.dataclass
class SubStack:
    """One sub-stack produced by the split step."""

    key: str
    variables: List[str]
    thread_bytes: int  # per-thread footprint of this sub-stack
    gain: int  # number of spill instructions accessing it

    def block_bytes(self, block_size: int) -> int:
        return self.thread_bytes * block_size


@dataclasses.dataclass
class ShmSpillPlan:
    """Output of Algorithm 1: which sub-stacks move to shared memory."""

    substacks: List[SubStack]
    chosen: List[bool]
    spare_shm_bytes: int
    block_size: int

    @property
    def shared_variables(self) -> List[str]:
        out: List[str] = []
        for sub, pick in zip(self.substacks, self.chosen):
            if pick:
                out.extend(sub.variables)
        return out

    @property
    def local_variables(self) -> List[str]:
        out: List[str] = []
        for sub, pick in zip(self.substacks, self.chosen):
            if not pick:
                out.extend(sub.variables)
        return out

    @property
    def total_gain(self) -> int:
        return sum(s.gain for s, pick in zip(self.substacks, self.chosen) if pick)

    @property
    def shared_block_bytes(self) -> int:
        return sum(
            s.block_bytes(self.block_size)
            for s, pick in zip(self.substacks, self.chosen)
            if pick
        )


def build_substacks(
    spilled: Dict[str, DType],
    liveness: LivenessInfo,
    split: SplitKey = split_by_type,
) -> List[SubStack]:
    """Split + gain estimation (Algorithm 1 lines 1-12).

    The gain of a sub-stack is the number of spill instructions that
    would access it: one load per use and one store per definition of
    each member variable (spill code inserts exactly that many).
    """
    groups: Dict[str, SubStack] = {}
    for name in sorted(spilled):
        dtype = spilled[name]
        key = split(name, dtype)
        sub = groups.get(key)
        if sub is None:
            sub = SubStack(key=key, variables=[], thread_bytes=0, gain=0)
            groups[key] = sub
        sub.variables.append(name)
        sub.thread_bytes += dtype.bytes
        rng = liveness.ranges.get(name)
        if rng is not None:
            sub.gain += rng.accesses
    return [groups[k] for k in sorted(groups)]


def knapsack(
    sizes: Sequence[int], gains: Sequence[int], capacity: int
) -> Tuple[int, List[bool]]:
    """0-1 knapsack by dynamic programming (Algorithm 1 lines 14-23).

    Returns ``(best_gain, chosen_mask)``.  Sizes are compressed by their
    GCD so the DP table stays small even for byte-granular capacities.
    """
    n = len(sizes)
    if n != len(gains):
        raise ValueError("sizes and gains must have equal length")
    if capacity <= 0 or n == 0:
        return 0, [False] * n

    import math

    scale = 0
    for s in sizes:
        scale = math.gcd(scale, s)
    scale = math.gcd(scale, capacity) or 1
    sizes_s = [s // scale for s in sizes]
    cap_s = capacity // scale

    neg = float("-inf")
    table = [[0] * (cap_s + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        size, gain = sizes_s[i - 1], gains[i - 1]
        prev = table[i - 1]
        row = table[i]
        for v in range(cap_s + 1):
            best = prev[v]
            if size <= v and prev[v - size] + gain > best:
                best = prev[v - size] + gain
            row[v] = best
    # Backtrack the chosen mask.
    chosen = [False] * n
    v = cap_s
    for i in range(n, 0, -1):
        if table[i][v] != table[i - 1][v]:
            chosen[i - 1] = True
            v -= sizes_s[i - 1]
    assert v >= 0
    return table[n][cap_s], chosen


def plan_shared_spilling(
    spilled: Dict[str, DType],
    liveness: LivenessInfo,
    spare_shm_bytes: int,
    block_size: int,
    split: SplitKey = split_by_type,
) -> ShmSpillPlan:
    """Run Algorithm 1 and return the placement plan.

    ``spare_shm_bytes`` is the per-block budget; a plan never exceeds
    it, so the chosen TLP is preserved by construction.
    """
    substacks = build_substacks(spilled, liveness, split)
    sizes = [s.block_bytes(block_size) for s in substacks]
    gains = [s.gain for s in substacks]
    _, chosen = knapsack(sizes, gains, spare_shm_bytes)
    return ShmSpillPlan(
        substacks=substacks,
        chosen=chosen,
        spare_shm_bytes=spare_shm_bytes,
        block_size=block_size,
    )
