"""Spill-stack layout and spill-code insertion (paper Listing 4).

When coloring fails, spilled variables move to a per-thread ``SpillStack``
array.  By default the stack lives in *local* memory: every use of a
spilled variable is preceded by ``ld.local`` into a fresh short-lived
temporary, and every definition is followed by ``st.local``.  A 64-bit
addressing register holds the stack base, because "PTX ISA does not
support displacement addressing mode" from a symbol directly (paper
Section 5.1) — exactly the ``%d0`` of Listing 4.

The layout object records which slot each variable occupies so that the
shared-memory spilling optimization (:mod:`repro.regalloc.shm_spill`)
can later split the stack into typed sub-stacks and relocate some of
them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ptx.instruction import Imm, Instruction, Label, MemRef, Reg, Sym
from ..ptx.isa import DType, Opcode, Space
from ..ptx.module import ArrayDecl, Kernel

SPILL_STACK_NAME = "SpillStack"
SHARED_SPILL_NAME = "ShmSpill"

#: Test-only mutation switch: skip the widest-slot padding of
#: :attr:`SpillStackLayout.total_bytes`, re-introducing the PR 2
#: record-stride miscompile (odd threads' wide slots shear across
#: record boundaries).  Exists so ``tests/test_verify.py`` can assert
#: the allocation validator catches exactly that bug class (AL004).
#: Never set outside tests.
UNSAFE_UNPADDED_RECORDS = False


@dataclasses.dataclass(frozen=True)
class SpillSlot:
    """One spilled variable's home in the spill stack."""

    name: str
    dtype: DType
    offset: int

    @property
    def bytes(self) -> int:
        return self.dtype.bytes


@dataclasses.dataclass
class SpillStackLayout:
    """Layout of the per-thread spill stack."""

    slots: List[SpillSlot] = dataclasses.field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Record size, padded to the widest slot's natural alignment.

        The padding matters for per-thread-indexed shared stacks: each
        thread's record starts at ``base + tid * total_bytes``, so a
        record holding an 8-byte slot must itself be a multiple of 8 —
        a 28-byte record would leave every odd thread's u64 slot
        misaligned.
        """
        if not self.slots:
            return 0
        last = max(self.slots, key=lambda s: s.offset)
        if UNSAFE_UNPADDED_RECORDS:
            return _align(last.offset + last.bytes, 4)
        widest = max(s.bytes for s in self.slots)
        return _align(last.offset + last.bytes, max(widest, 4))

    def slot_of(self, name: str) -> SpillSlot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(f"no spill slot for {name!r}")

    def __len__(self) -> int:
        return len(self.slots)


@dataclasses.dataclass(frozen=True)
class SpillRegionInfo:
    """Everything the allocation validator needs about one spill stack."""

    stack_name: str
    space: Space
    base_reg: str
    record_bytes: int
    per_thread: bool
    layout: SpillStackLayout


@dataclasses.dataclass
class SpillCodeResult:
    """Outcome of one spill-code insertion pass."""

    kernel: Kernel
    layout: SpillStackLayout
    base_reg: Optional[Reg]
    temp_names: Set[str]
    num_loads: int
    num_stores: int
    num_address_insts: int
    space: Space = Space.LOCAL
    #: Name of the stack array, per-thread indexing, and the record
    #: stride actually used — recorded so the allocation validator can
    #: recheck slot discipline without re-deriving the layout.
    stack_name: str = SPILL_STACK_NAME
    per_thread: bool = False
    record_bytes: int = 0

    def region(self) -> Optional[SpillRegionInfo]:
        """The validator-facing record of this stack (None if empty)."""
        if self.base_reg is None or not self.layout.slots:
            return None
        return SpillRegionInfo(
            stack_name=self.stack_name,
            space=self.space,
            base_reg=self.base_reg.name,
            record_bytes=self.record_bytes,
            per_thread=self.per_thread,
            layout=self.layout,
        )

    @property
    def static_spill_bytes(self) -> int:
        """Static spill traffic: bytes moved if each spill inst runs once."""
        load_bytes = sum(
            s.bytes * self._count_for(s.name, load=True) for s in self.layout.slots
        )
        store_bytes = sum(
            s.bytes * self._count_for(s.name, load=False) for s in self.layout.slots
        )
        return load_bytes + store_bytes

    def _count_for(self, name: str, load: bool) -> int:
        slot = self.layout.slot_of(name)
        opcode = Opcode.LD if load else Opcode.ST
        count = 0
        for inst in self.kernel.instructions():
            if (
                inst.opcode is opcode
                and inst.space is self.space
                and inst.mem is not None
                and self.base_reg is not None
                and isinstance(inst.mem.base, Reg)
                and inst.mem.base.name == self.base_reg.name
                and inst.mem.offset == slot.offset
            ):
                count += 1
        return count


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def layout_stack(spilled: Iterable[Tuple[str, DType]]) -> SpillStackLayout:
    """Assign spill-stack offsets, widest-first to keep natural alignment."""
    layout = SpillStackLayout()
    offset = 0
    ordered = sorted(spilled, key=lambda item: (-item[1].bytes, item[0]))
    for name, dtype in ordered:
        offset = _align(offset, dtype.bytes)
        layout.slots.append(SpillSlot(name, dtype, offset))
        offset += dtype.bytes
    return layout


class _TempNamer:
    """Fresh-register factory shared across register classes."""

    def __init__(self, kernel: Kernel):
        self._existing = {r.name for r in kernel.registers()}
        self._counters: Dict[str, int] = {}

    def fresh(self, dtype: DType) -> Reg:
        prefix = f"%{dtype.reg_class.value}"
        count = self._counters.get(prefix, 0)
        while f"{prefix}s{count}" in self._existing:
            count += 1
        name = f"{prefix}s{count}"
        self._counters[prefix] = count + 1
        self._existing.add(name)
        return Reg(name, dtype)


def insert_spill_code(
    kernel: Kernel,
    spilled: Dict[str, DType],
    space: Space = Space.LOCAL,
    stack_name: str = SPILL_STACK_NAME,
    per_thread_indexing: bool = False,
) -> SpillCodeResult:
    """Rewrite ``kernel`` so the given variables live in the spill stack.

    Returns a *new* kernel; the input is not mutated.  Each use of a
    spilled variable loads into a fresh temporary immediately before the
    using instruction; each definition stores immediately after (with
    the defining instruction's guard, so predicated writes stay
    predicated).

    With ``per_thread_indexing=False`` (local memory), the stack is a
    per-thread array and one ``mov`` materializes its base — local
    memory is already thread-private on GPUs (paper Listing 4).  With
    ``per_thread_indexing=True`` (shared memory), the array is shared by
    the whole block, so it is sized ``record_bytes * block_size`` and
    each thread's base is ``ShmSpill + tid * record_bytes``; the extra
    address arithmetic is counted in ``num_address_insts`` — exactly
    the paper's ``Num_others`` term of the TPSC spill cost.
    """
    if space not in (Space.LOCAL, Space.SHARED):
        raise ValueError("spill stacks live in local or shared memory")
    if per_thread_indexing and space is not Space.SHARED:
        raise ValueError("per-thread indexing only applies to shared spill stacks")
    out = kernel.copy()
    if not spilled:
        return SpillCodeResult(
            kernel=out,
            layout=SpillStackLayout(),
            base_reg=None,
            temp_names=set(),
            num_loads=0,
            num_stores=0,
            num_address_insts=0,
            space=space,
            stack_name=stack_name,
            per_thread=per_thread_indexing,
            record_bytes=0,
        )

    layout = layout_stack(spilled.items())
    namer = _TempNamer(out)
    base_reg = namer.fresh(DType.U64)
    record_bytes = layout.total_bytes
    array_bytes = record_bytes * (out.block_size if per_thread_indexing else 1)
    out.arrays = list(out.arrays) + [
        ArrayDecl(stack_name, space, array_bytes, align=4)
    ]

    prelude: List[Instruction]
    if per_thread_indexing:
        tid = namer.fresh(DType.U32)
        tid64 = namer.fresh(DType.U64)
        raw_base = namer.fresh(DType.U64)
        from ..ptx.instruction import Sreg

        prelude = [
            Instruction(Opcode.MOV, dtype=DType.U32, dst=tid, srcs=(Sreg("%tid.x"),)),
            Instruction(Opcode.CVT, dtype=DType.U64, dst=tid64, srcs=(tid,)),
            Instruction(
                Opcode.MOV, dtype=DType.U64, dst=raw_base, srcs=(Sym(stack_name),)
            ),
            Instruction(
                Opcode.MAD,
                dtype=DType.U64,
                dst=base_reg,
                srcs=(tid64, Imm(record_bytes, DType.U64), raw_base),
            ),
        ]
    else:
        prelude = [
            Instruction(
                Opcode.MOV, dtype=DType.U64, dst=base_reg, srcs=(Sym(stack_name),)
            )
        ]
    new_body: List = list(prelude)
    num_loads = 0
    num_stores = 0
    temp_names: Set[str] = {inst.dst.name for inst in prelude if inst.dst is not None}

    for item in out.body:
        if isinstance(item, Label):
            new_body.append(item)
            continue
        inst = item
        mapping: Dict[str, Reg] = {}
        loads: List[Instruction] = []
        stores: List[Instruction] = []
        for reg in dict.fromkeys(inst.uses()):
            if reg.name in spilled and reg.name not in mapping:
                tmp = namer.fresh(spilled[reg.name])
                mapping[reg.name] = tmp
                temp_names.add(tmp.name)
                slot = layout.slot_of(reg.name)
                loads.append(
                    Instruction(
                        Opcode.LD,
                        dtype=slot.dtype,
                        dst=tmp,
                        mem=MemRef(base_reg, slot.offset),
                        space=space,
                    )
                )
                num_loads += 1
        for reg in inst.defs():
            if reg.name in spilled:
                tmp = mapping.get(reg.name)
                if tmp is None:
                    tmp = namer.fresh(spilled[reg.name])
                    mapping[reg.name] = tmp
                    temp_names.add(tmp.name)
                slot = layout.slot_of(reg.name)
                stores.append(
                    Instruction(
                        Opcode.ST,
                        dtype=slot.dtype,
                        srcs=(tmp,),
                        mem=MemRef(base_reg, slot.offset),
                        space=space,
                        guard=inst.guard,
                        guard_negated=inst.guard_negated,
                    )
                )
                num_stores += 1
        if mapping:
            inst = inst.rewrite_regs(
                lambda r: mapping.get(r.name, r) if r.name in mapping else r
            )
        new_body.extend(loads)
        new_body.append(inst)
        new_body.extend(stores)

    out.body = new_body
    return SpillCodeResult(
        kernel=out,
        layout=layout,
        base_reg=base_reg,
        temp_names=temp_names,
        num_loads=num_loads,
        num_stores=num_stores,
        num_address_insts=len(prelude),
        space=space,
        stack_name=stack_name,
        per_thread=per_thread_indexing,
        record_bytes=record_bytes,
    )
