"""Persistent compilation service: ``repro serve`` / ``repro submit``.

A long-lived daemon hosting one warm
:class:`~repro.engine.engine.EvaluationEngine` behind a
newline-delimited-JSON socket protocol, with single-flight request
deduplication, a bounded priority queue with explicit backpressure, and
graceful checkpointing drain.  See :mod:`repro.service.server` for the
architecture and ``DESIGN.md`` §7 for the rationale.

``repro serve --shards N`` scales the same daemon out: a
:class:`~repro.service.fleet.FleetRouter` front door routes jobs by
consistent hash of their content signature across N supervised shard
subprocesses, self-heals crashed or hung shards with bounded-backoff
restarts, re-routes in-flight work, and replicates each shard's warm
checkpoint journal to its ring successor so restarts reboot warm.  See
:mod:`repro.service.fleet`, :mod:`repro.service.supervisor` and
``DESIGN.md`` §10 for the failure model.
"""

from .client import (
    FleetClient,
    ServiceClient,
    ServiceJobError,
    decorrelated_jitter,
    submit_or_raise,
    unwrap,
)
from .fleet import FleetRouter, FleetStats, HashRing, fleet_main
from .jobs import (
    PreparedJob,
    crat_result_to_dict,
    execute,
    prepare,
    sim_result_to_dict,
)
from .protocol import (
    CONTROL_JOBS,
    EVAL_JOBS,
    JOB_TYPES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_frame,
    encode_frame,
    validate_request,
)
from .queue import InFlightJob, JobQueue, QueueFullError, SingleFlightTable
from .server import (
    QUEUE_CHECKPOINT_NAME,
    SHARD_EPOCH_ENV,
    SHARD_ID_ENV,
    SOCKET_ENV,
    ReproServer,
    ServiceStats,
    default_socket_path,
    serve_main,
)
from .supervisor import (
    SHARD_CRASH_EXIT,
    ShardHandle,
    ShardSpec,
    ShardSupervisor,
    replicate_files,
    restart_backoff,
    restore_missing,
)

__all__ = [
    "CONTROL_JOBS",
    "EVAL_JOBS",
    "FleetClient",
    "FleetRouter",
    "FleetStats",
    "HashRing",
    "InFlightJob",
    "JOB_TYPES",
    "JobQueue",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PreparedJob",
    "ProtocolError",
    "QUEUE_CHECKPOINT_NAME",
    "QueueFullError",
    "ReproServer",
    "Request",
    "SHARD_CRASH_EXIT",
    "SHARD_EPOCH_ENV",
    "SHARD_ID_ENV",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceJobError",
    "ServiceStats",
    "ShardHandle",
    "ShardSpec",
    "ShardSupervisor",
    "SingleFlightTable",
    "crat_result_to_dict",
    "decode_frame",
    "decorrelated_jitter",
    "default_socket_path",
    "encode_frame",
    "execute",
    "fleet_main",
    "prepare",
    "replicate_files",
    "restart_backoff",
    "restore_missing",
    "serve_main",
    "sim_result_to_dict",
    "submit_or_raise",
    "unwrap",
    "validate_request",
]
