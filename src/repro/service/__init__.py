"""Persistent compilation service: ``repro serve`` / ``repro submit``.

A long-lived daemon hosting one warm
:class:`~repro.engine.engine.EvaluationEngine` behind a
newline-delimited-JSON socket protocol, with single-flight request
deduplication, a bounded priority queue with explicit backpressure, and
graceful checkpointing drain.  See :mod:`repro.service.server` for the
architecture and ``DESIGN.md`` §7 for the rationale.
"""

from .client import (
    ServiceClient,
    ServiceJobError,
    submit_or_raise,
    unwrap,
)
from .jobs import (
    PreparedJob,
    crat_result_to_dict,
    execute,
    prepare,
    sim_result_to_dict,
)
from .protocol import (
    CONTROL_JOBS,
    EVAL_JOBS,
    JOB_TYPES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_frame,
    encode_frame,
    validate_request,
)
from .queue import InFlightJob, JobQueue, QueueFullError, SingleFlightTable
from .server import (
    QUEUE_CHECKPOINT_NAME,
    SOCKET_ENV,
    ReproServer,
    ServiceStats,
    default_socket_path,
    serve_main,
)

__all__ = [
    "CONTROL_JOBS",
    "EVAL_JOBS",
    "InFlightJob",
    "JOB_TYPES",
    "JobQueue",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PreparedJob",
    "ProtocolError",
    "QUEUE_CHECKPOINT_NAME",
    "QueueFullError",
    "ReproServer",
    "Request",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceJobError",
    "ServiceStats",
    "SingleFlightTable",
    "crat_result_to_dict",
    "decode_frame",
    "default_socket_path",
    "encode_frame",
    "execute",
    "prepare",
    "serve_main",
    "sim_result_to_dict",
    "submit_or_raise",
    "unwrap",
    "validate_request",
]
