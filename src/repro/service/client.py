"""Client library for the compilation service (+ ``repro submit``).

:class:`ServiceClient` speaks the NDJSON protocol over a unix socket or
TCP, and bakes in the polite-client behavior the server's backpressure
contract expects:

* an ``overloaded`` reply is retried after the server's ``retry_after``
  hint *plus* decorrelated jitter — the hint is a hard floor, the
  jitter on top is what keeps a thundering herd from re-arriving in
  lockstep at exactly ``retry_after`` seconds;
* a connection failure (daemon restarting, socket not yet bound)
  retries on the same jittered schedule;
* everything else — job errors included — is returned to the caller
  exactly once, as the server sent it.

The backoff is AWS-style *decorrelated jitter*: each retry sleeps
``uniform(base, 3 * previous_sleep)`` capped at ``cap``.  Unlike the
old deterministic ladder (``base * growth**attempt``), two clients
rejected at the same instant do not compute the same schedule and
collide again on every subsequent attempt.  The RNG is injectable so
tests can pin the schedule.

:class:`FleetClient` adds shard-aware routing on top: it learns the
fleet topology from the router's ``health`` reply, computes the job's
content signature locally, and dials the owning shard directly —
skipping one router hop — falling back to the router (which also
re-routes around dead shards) whenever the direct path fails.

The library never interprets job results; it returns reply dicts.
:func:`submit_or_raise` is the one-call convenience that converts
non-``ok`` replies into the structured :mod:`repro.errors` taxonomy
(transport problems become :class:`~repro.errors.ServiceError`, job
failures are re-raised as their original kind's exit code).
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Dict, List, Optional, Set

from ..errors import ServiceError
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import default_socket_path

#: Decorrelated-jitter parameters for connect failures / overload
#: rejections: sleep ``uniform(base, 3 * previous_sleep)``, capped.
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 5.0
#: Kept for callers that imported the old ladder's growth factor; the
#: jittered schedule no longer uses it.
DEFAULT_BACKOFF_GROWTH = 2.0


def decorrelated_jitter(
    rng: random.Random,
    previous_sleep: float,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
) -> float:
    """Next sleep in a decorrelated-jitter schedule.

    ``uniform(base, 3 * previous_sleep)`` clamped to ``[base, cap]``;
    pass the returned value back in as ``previous_sleep`` next time.
    Growth is still roughly exponential in expectation, but no two
    clients share a schedule.
    """
    return min(cap, rng.uniform(base, max(base, previous_sleep * 3.0)))


class ServiceClient:
    """One connection to a ``repro serve`` daemon.

    Connects lazily on first use and transparently reconnects after a
    dropped connection.  Not thread-safe: one client per thread (the
    server happily accepts many connections).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        max_retries: int = 5,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ):
        if host is not None and port is None:
            raise ValueError("TCP connections need both host and port")
        self.host = host
        self.port = port
        self.socket_path = (
            None if host is not None else (socket_path or default_socket_path())
        )
        self.timeout = timeout
        self.max_retries = max_retries
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Connection plumbing.
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as err:
            raise ServiceError(
                f"cannot reach compilation service at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {err}"
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _drop_connection(self) -> None:
        self.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request / reply.
    # ------------------------------------------------------------------
    def request_once(
        self,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        req_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One round trip, no retries; transport faults raise
        :class:`ServiceError`."""
        self._connect()
        message: Dict[str, Any] = {
            "id": req_id or f"c{next(self._ids)}",
            "job": job,
            "params": params or {},
        }
        if deadline is not None:
            message["deadline"] = deadline
        if priority:
            message["priority"] = priority
        assert self._sock is not None and self._reader is not None
        try:
            self._sock.sendall(encode_frame(message))
            line = self._reader.readline(MAX_FRAME_BYTES + 2)
        except OSError as err:
            self._drop_connection()
            raise ServiceError(f"connection to service lost: {err}")
        if not line:
            self._drop_connection()
            raise ServiceError("service closed the connection mid-request")
        try:
            # require_newline: a peer killed mid-write leaves a partial
            # frame with no terminator — that must surface as a typed
            # transport error even if the fragment parses as JSON.
            return decode_frame(line, require_newline=True)
        except ProtocolError as err:
            self._drop_connection()
            raise ServiceError(f"undecodable reply from service: {err}")

    def submit(
        self,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Round trip with the retry/backoff policy: decorrelated
        jitter on transport faults, the server's ``retry_after`` hint
        as a hard floor (jitter added *on top*) on ``overloaded``,
        first definitive reply returned.  Exhausting ``max_retries``
        raises :class:`ServiceError` (exit 7)."""
        last_error: Optional[ServiceError] = None
        sleep_s = DEFAULT_BACKOFF_BASE
        for attempt in range(self.max_retries + 1):
            try:
                reply = self.request_once(
                    job, params, deadline=deadline, priority=priority
                )
            except ServiceError as err:
                last_error = err
                if attempt < self.max_retries:
                    sleep_s = decorrelated_jitter(self._rng, sleep_s)
                    self._sleep(sleep_s)
                continue
            if reply.get("status") == "overloaded":
                if attempt < self.max_retries:
                    hint = reply.get("retry_after")
                    floor = (
                        float(hint)
                        if isinstance(hint, (int, float))
                        and not isinstance(hint, bool)
                        else 0.0
                    )
                    sleep_s = decorrelated_jitter(self._rng, sleep_s)
                    # Additive, not max(): with max() every client that
                    # got the same hint wakes at the same instant and
                    # stampedes again; hint + jitter keeps the floor
                    # AND spreads the re-arrivals.
                    self._sleep(floor + sleep_s)
                    continue
                last_error = ServiceError(
                    f"service overloaded after {attempt + 1} attempts",
                    retry_after=reply.get("retry_after"),
                )
                break
            return reply
        assert last_error is not None
        raise last_error

    # Convenience wrappers -------------------------------------------------
    def ping(self) -> bool:
        reply = self.submit("ping")
        return reply.get("status") == "ok"

    def stats(self, include_events: bool = False) -> Dict[str, Any]:
        return unwrap(self.submit(
            "stats", {"include_events": include_events}
        ))

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return unwrap(self.submit("shutdown", {"drain": drain}))


def unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a reply into its result payload or a structured error.

    ``error`` replies re-raise as a :class:`ServiceJobError` carrying
    the job's original exit code, so ``repro submit`` exits exactly as
    the one-shot command would have; every other non-``ok`` status is a
    transport-level :class:`~repro.errors.ServiceError` (exit 7).
    """
    status = reply.get("status")
    if status == "ok":
        result = reply.get("result")
        return result if isinstance(result, dict) else {}
    if status == "error":
        info = reply.get("error") or {}
        raise ServiceJobError(
            kind=str(info.get("kind", "ReproError")),
            message=str(info.get("message", "job failed")),
            job_exit_code=int(info.get("exit_code", 1)),
        )
    if status == "overloaded":
        raise ServiceError(
            "service overloaded", retry_after=reply.get("retry_after")
        )
    if status == "expired":
        raise ServiceError("request deadline expired in the service queue")
    if status == "drained":
        raise ServiceError(
            "service drained before the job ran (checkpointed; resubmit)"
        )
    if status == "invalid":
        info = reply.get("error") or {}
        raise ServiceError(f"request rejected: {info.get('message')}")
    raise ServiceError(f"unrecognized reply status {status!r}")


class ServiceJobError(ServiceError):
    """A job the service ran on our behalf failed.

    The exit code is the *job's* (``ParseError`` 2, ``AllocationError``
    3, ...), not the transport's 7: scripting against ``repro submit``
    sees the same codes as against the one-shot CLI.
    """

    def __init__(self, kind: str, message: str, job_exit_code: int):
        super().__init__(f"{kind}: {message}")
        self.job_kind = kind
        self.exit_code = job_exit_code


def submit_or_raise(
    client: ServiceClient,
    job: str,
    params: Optional[Dict[str, Any]] = None,
    deadline: Optional[float] = None,
    priority: int = 0,
) -> Dict[str, Any]:
    """One call: submit with retries, unwrap, raise taxonomy errors."""
    return unwrap(client.submit(
        job, params, deadline=deadline, priority=priority
    ))


class FleetClient:
    """Shard-aware client for a ``repro serve --shards N`` fleet.

    Keeps a routing table (hash ring + shard socket map) learned from
    the router's ``health`` control job.  ``submit_routed`` computes
    the job's content signature locally — the same
    :func:`repro.service.jobs.prepare` the shards use — and dials the
    owning shard's socket directly, saving the router hop on the hot
    path.  Any failure on the direct path (stale table, dead shard,
    unprepared params, non-definitive reply) invalidates the table and
    falls back to the router, whose own failover re-routes around dead
    shards.  Correctness never depends on the table being fresh.
    """

    def __init__(
        self,
        router_socket: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        max_retries: int = 5,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.router = ServiceClient(
            socket_path=router_socket,
            timeout=timeout,
            max_retries=max_retries,
            sleep=sleep,
            rng=rng,
        )
        self.timeout = timeout
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._ring = None  # HashRing, lazily imported
        self._shard_sockets: Dict[str, str] = {}
        self._live: Set[str] = set()
        #: Diagnostics: how many submits went direct vs via the router.
        self.direct_hits = 0
        self.router_fallbacks = 0

    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def invalidate_routing_table(self) -> None:
        self._ring = None
        self._shard_sockets = {}
        self._live = set()

    def refresh_routing_table(self) -> List[str]:
        """(Re)learn the fleet topology from the router's ``health``
        reply; returns the live shard ids."""
        from .fleet import HashRing  # local import: no cycle at module load

        payload = unwrap(self.router.submit("health"))
        shards = payload.get("shards")
        fleet = payload.get("fleet")
        if not isinstance(shards, dict) or not isinstance(fleet, dict):
            raise ServiceError(
                "health reply has no fleet topology — is the service "
                "running with --shards?"
            )
        sockets: Dict[str, str] = {}
        live: Set[str] = set()
        for sid, status in shards.items():
            if not isinstance(status, dict):
                continue
            sock = status.get("socket")
            if isinstance(sock, str):
                sockets[sid] = sock
            if status.get("live"):
                live.add(sid)
        if not sockets:
            raise ServiceError("fleet health reply lists no shards")
        self._ring = HashRing(sockets.keys())
        self._shard_sockets = sockets
        self._live = live
        return sorted(live)

    def _signature_for(self, job: str, params: Dict[str, Any]) -> str:
        from . import jobs as jobs_mod
        from .protocol import Request

        request = Request(id=None, job=job, params=params)
        return jobs_mod.prepare(request).signature

    def submit_routed(
        self,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit with direct-to-shard routing and router fallback."""
        params = params or {}
        owner_socket: Optional[str] = None
        try:
            if self._ring is None:
                self.refresh_routing_table()
            signature = self._signature_for(job, params)
            assert self._ring is not None
            owner = self._ring.owner(signature, self._live)
            if owner is not None:
                owner_socket = self._shard_sockets.get(owner)
        except Exception:
            owner_socket = None  # fall back; the router always works
        if owner_socket is not None:
            direct = ServiceClient(
                socket_path=owner_socket,
                timeout=self.timeout,
                max_retries=0,
                sleep=self._sleep,
                rng=self._rng,
            )
            try:
                reply = direct.request_once(
                    job, params, deadline=deadline, priority=priority
                )
                if reply.get("status") in ("ok", "error", "expired"):
                    self.direct_hits += 1
                    return reply
            except ServiceError:
                pass
            finally:
                direct.close()
            # Dead/overloaded/draining shard: the table is stale.
            self.invalidate_routing_table()
        self.router_fallbacks += 1
        return self.router.submit(
            job, params, deadline=deadline, priority=priority
        )
