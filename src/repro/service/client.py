"""Client library for the compilation service (+ ``repro submit``).

:class:`ServiceClient` speaks the NDJSON protocol over a unix socket or
TCP, and bakes in the polite-client behavior the server's backpressure
contract expects:

* an ``overloaded`` reply is retried after the server's ``retry_after``
  hint (plus a deterministic multiplicative backoff per consecutive
  rejection — the hint is the floor, not the schedule);
* a connection failure (daemon restarting, socket not yet bound)
  retries on the same backoff ladder;
* everything else — job errors included — is returned to the caller
  exactly once, as the server sent it.

The library never interprets job results; it returns reply dicts.
:func:`submit_or_raise` is the one-call convenience that converts
non-``ok`` replies into the structured :mod:`repro.errors` taxonomy
(transport problems become :class:`~repro.errors.ServiceError`, job
failures are re-raised as their original kind's exit code).
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any, Dict, Optional

from ..errors import ServiceError
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import default_socket_path

#: Backoff ladder for connect failures / overload rejections:
#: ``base * growth**attempt``, capped.
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_GROWTH = 2.0
DEFAULT_BACKOFF_CAP = 5.0


class ServiceClient:
    """One connection to a ``repro serve`` daemon.

    Connects lazily on first use and transparently reconnects after a
    dropped connection.  Not thread-safe: one client per thread (the
    server happily accepts many connections).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        max_retries: int = 5,
        sleep=time.sleep,
    ):
        if host is not None and port is None:
            raise ValueError("TCP connections need both host and port")
        self.host = host
        self.port = port
        self.socket_path = (
            None if host is not None else (socket_path or default_socket_path())
        )
        self.timeout = timeout
        self.max_retries = max_retries
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Connection plumbing.
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as err:
            raise ServiceError(
                f"cannot reach compilation service at "
                f"{self.socket_path or f'{self.host}:{self.port}'}: {err}"
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _drop_connection(self) -> None:
        self.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request / reply.
    # ------------------------------------------------------------------
    def request_once(
        self,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        req_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One round trip, no retries; transport faults raise
        :class:`ServiceError`."""
        self._connect()
        message: Dict[str, Any] = {
            "id": req_id or f"c{next(self._ids)}",
            "job": job,
            "params": params or {},
        }
        if deadline is not None:
            message["deadline"] = deadline
        if priority:
            message["priority"] = priority
        assert self._sock is not None and self._reader is not None
        try:
            self._sock.sendall(encode_frame(message))
            line = self._reader.readline(MAX_FRAME_BYTES + 2)
        except OSError as err:
            self._drop_connection()
            raise ServiceError(f"connection to service lost: {err}")
        if not line:
            self._drop_connection()
            raise ServiceError("service closed the connection mid-request")
        try:
            return decode_frame(line)
        except ProtocolError as err:
            self._drop_connection()
            raise ServiceError(f"undecodable reply from service: {err}")

    def submit(
        self,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Round trip with the retry/backoff policy: honors the
        server's ``retry_after`` hints on ``overloaded``, retries
        transport faults, and returns the first definitive reply."""
        last_error: Optional[ServiceError] = None
        for attempt in range(self.max_retries + 1):
            backoff = min(
                DEFAULT_BACKOFF_CAP,
                DEFAULT_BACKOFF_BASE * DEFAULT_BACKOFF_GROWTH ** attempt,
            )
            try:
                reply = self.request_once(
                    job, params, deadline=deadline, priority=priority
                )
            except ServiceError as err:
                last_error = err
                if attempt < self.max_retries:
                    self._sleep(backoff)
                continue
            if reply.get("status") == "overloaded":
                if attempt < self.max_retries:
                    hint = reply.get("retry_after")
                    wait = max(
                        float(hint) if isinstance(hint, (int, float)) else 0.0,
                        backoff,
                    )
                    self._sleep(wait)
                    continue
                last_error = ServiceError(
                    f"service overloaded after {attempt + 1} attempts",
                    retry_after=reply.get("retry_after"),
                )
                break
            return reply
        assert last_error is not None
        raise last_error

    # Convenience wrappers -------------------------------------------------
    def ping(self) -> bool:
        reply = self.submit("ping")
        return reply.get("status") == "ok"

    def stats(self, include_events: bool = False) -> Dict[str, Any]:
        return unwrap(self.submit(
            "stats", {"include_events": include_events}
        ))

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return unwrap(self.submit("shutdown", {"drain": drain}))


def unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a reply into its result payload or a structured error.

    ``error`` replies re-raise as a :class:`ServiceJobError` carrying
    the job's original exit code, so ``repro submit`` exits exactly as
    the one-shot command would have; every other non-``ok`` status is a
    transport-level :class:`~repro.errors.ServiceError` (exit 7).
    """
    status = reply.get("status")
    if status == "ok":
        result = reply.get("result")
        return result if isinstance(result, dict) else {}
    if status == "error":
        info = reply.get("error") or {}
        raise ServiceJobError(
            kind=str(info.get("kind", "ReproError")),
            message=str(info.get("message", "job failed")),
            job_exit_code=int(info.get("exit_code", 1)),
        )
    if status == "overloaded":
        raise ServiceError(
            "service overloaded", retry_after=reply.get("retry_after")
        )
    if status == "expired":
        raise ServiceError("request deadline expired in the service queue")
    if status == "drained":
        raise ServiceError(
            "service drained before the job ran (checkpointed; resubmit)"
        )
    if status == "invalid":
        info = reply.get("error") or {}
        raise ServiceError(f"request rejected: {info.get('message')}")
    raise ServiceError(f"unrecognized reply status {status!r}")


class ServiceJobError(ServiceError):
    """A job the service ran on our behalf failed.

    The exit code is the *job's* (``ParseError`` 2, ``AllocationError``
    3, ...), not the transport's 7: scripting against ``repro submit``
    sees the same codes as against the one-shot CLI.
    """

    def __init__(self, kind: str, message: str, job_exit_code: int):
        super().__init__(f"{kind}: {message}")
        self.job_kind = kind
        self.exit_code = job_exit_code


def submit_or_raise(
    client: ServiceClient,
    job: str,
    params: Optional[Dict[str, Any]] = None,
    deadline: Optional[float] = None,
    priority: int = 0,
) -> Dict[str, Any]:
    """One call: submit with retries, unwrap, raise taxonomy errors."""
    return unwrap(client.submit(
        job, params, deadline=deadline, priority=priority
    ))
