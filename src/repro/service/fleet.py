"""The sharded service tier: an asyncio front door over N engine shards.

``repro serve --shards N`` boots a :class:`FleetRouter` instead of a
single :class:`~repro.service.server.ReproServer`.  The router owns N
supervised shard subprocesses (each a plain PR 5 server loop on its own
unix socket, see :mod:`repro.service.supervisor`) and speaks the same
NDJSON protocol to clients, so every existing client — ``repro
submit``, the smoke drivers, a shell one-liner — works unchanged
against a fleet.

The coordination discipline mirrors the paper's one level up: CRAT
coordinates register allocation and TLP inside one SM under fixed
resources; the fleet coordinates job placement and recovery across N
shards under the same zero-drift contract the ``service-smoke`` and
``fault-smoke`` CI gates already enforce.  Concretely:

* **Placement** is a consistent hash (:class:`HashRing`) of the PR 5
  content signature.  Identical jobs always land on the same live
  shard, so single-flight dedup stays shard-local *and stays correct*
  — two concurrent identical submits meet in one shard's in-flight
  table exactly as they would on a single daemon.
* **Self-healing**: per-shard health checks with a deadline and a
  missed-heartbeat threshold, crash detection, bounded
  exponential-backoff restarts, and re-routing of a dead shard's
  in-flight dispatches to the ring's next live shard.  Replays are
  safe because the dedup signature makes jobs idempotent — a job that
  half-ran on a dead shard produces the bit-identical answer on the
  next one (at-most-once *side effects*, at-least-once execution).
* **Replicated warm state**: a replication loop periodically sends
  each shard the ``handoff`` control job (snapshot your queue into the
  PR 3 checkpoint journal, return a manifest) and ships the journal
  files to the shard's ring successor; a restarted shard restores
  whatever its local disk lost and reboots warm.
* **Accounting**: every dispatch ends in exactly one of ``completed``
  / ``rerouted`` / ``expired`` / ``drained``, so the fleet-wide
  conservation law ``accepted == completed + expired + drained +
  rerouted`` holds structurally — ``repro fleet status`` and
  ``tools/fleet_smoke.py`` assert it from counters, not logs.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import json
import os
import threading
import time
import traceback
from typing import Any, Dict, Iterable, List, Optional, Set, TextIO

from ..engine import get_engine
from ..engine.events import ShardEvent
from ..errors import EXIT_SERVICE, ReproError, ServiceError
from . import jobs as jobs_mod
from .protocol import (
    CONTROL_JOBS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_frame,
    drained_reply,
    encode_frame,
    error_reply,
    expired_reply,
    invalid_reply,
    ok_reply,
    overloaded_reply,
    validate_request,
)
from .supervisor import ShardHandle, ShardSpec, ShardSupervisor


# ----------------------------------------------------------------------
# Consistent hashing.
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hash ring over shard ids with virtual nodes.

    The ring always carries *every* configured shard's points; liveness
    is a filter applied at lookup time.  That is what gives the
    stability property the fleet (and the property tests) rely on:
    when a shard dies, only the signatures it owned move — to its ring
    successor — and every other signature keeps its owner.
    """

    def __init__(self, shard_ids: Iterable[str], replicas: int = 64):
        self.shard_ids = sorted(set(shard_ids))
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        points = []
        for sid in self.shard_ids:
            for v in range(replicas):
                points.append((self._hash(f"{sid}#{v}"), sid))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [sid for _, sid in points]

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def _walk(self, start_hash: int) -> Iterable[str]:
        """Ring order (with wraparound) starting at the first point at
        or after ``start_hash``; yields shard ids, possibly repeated."""
        if not self._hashes:
            return
        index = bisect.bisect_left(self._hashes, start_hash)
        n = len(self._hashes)
        for step in range(n):
            yield self._owners[(index + step) % n]

    def owner(
        self, signature: str, live: Optional[Set[str]] = None
    ) -> Optional[str]:
        """The first live shard clockwise from the signature's point."""
        live_set = set(self.shard_ids) if live is None else live
        for sid in self._walk(self._hash(signature)):
            if sid in live_set:
                return sid
        return None

    def preference(
        self, signature: str, live: Optional[Set[str]] = None
    ) -> List[str]:
        """All live shards in ring order from the signature's point —
        the failover order a replayed dispatch walks."""
        live_set = set(self.shard_ids) if live is None else live
        seen: List[str] = []
        for sid in self._walk(self._hash(signature)):
            if sid in live_set and sid not in seen:
                seen.append(sid)
        return seen

    def successor_shard(
        self, shard_id: str, live: Optional[Set[str]] = None
    ) -> Optional[str]:
        """The next distinct live shard after ``shard_id`` on the ring
        (the replication target for its warm state)."""
        live_set = set(self.shard_ids) if live is None else live
        for sid in self._walk(self._hash(f"{shard_id}#0") + 1):
            if sid != shard_id and sid in live_set:
                return sid
        return None


# ----------------------------------------------------------------------
# Fleet counters.
# ----------------------------------------------------------------------
class FleetStats:
    """Dispatch-level counters (all mutated on the router's loop).

    ``accepted`` counts dispatches handed to a shard; each ends in
    exactly one of ``completed`` (a definitive shard reply, whatever
    its status), ``rerouted`` (the shard died or dropped the wire
    mid-dispatch; the job replays elsewhere), ``expired`` (the
    client's deadline lapsed at the router) or ``drained`` (fleet
    shutdown overtook the dispatch).  Supervision counters ride along.
    """

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.accepted = 0
        self.completed = 0
        self.expired = 0
        self.drained = 0
        self.rerouted = 0
        self.rejected_invalid = 0
        self.rejected_overloaded = 0
        self.spawns = 0
        self.restarts = 0
        self.heartbeat_misses = 0
        self.handoffs = 0
        self.connections = 0

    @property
    def conservation_ok(self) -> bool:
        return self.accepted == (
            self.completed + self.expired + self.drained + self.rerouted
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "accepted": self.accepted,
            "completed": self.completed,
            "expired": self.expired,
            "drained": self.drained,
            "rerouted": self.rerouted,
            "rejected_invalid": self.rejected_invalid,
            "rejected_overloaded": self.rejected_overloaded,
            "spawns": self.spawns,
            "restarts": self.restarts,
            "heartbeat_misses": self.heartbeat_misses,
            "handoffs": self.handoffs,
            "connections": self.connections,
            "conservation_ok": self.conservation_ok,
        }


class _DispatchLost(Exception):
    """The shard died / dropped the wire mid-dispatch; replay."""


class _FleetDraining(Exception):
    """Fleet shutdown overtook an in-flight dispatch."""


class _RouterDeadline(Exception):
    """The request's deadline lapsed while the router waited."""


# ----------------------------------------------------------------------
# The router.
# ----------------------------------------------------------------------
class FleetRouter:
    """Front door + supervisor host for N engine shards."""

    def __init__(
        self,
        socket_path: str,
        shards: int = 2,
        state_dir: Optional[str] = None,
        workers_per_shard: int = 2,
        queue_limit: int = 64,
        jobs_per_shard: int = 0,
        passes: str = "",
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 1.0,
        miss_threshold: int = 3,
        boot_timeout: float = 45.0,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        max_restarts: Optional[int] = None,
        replication_interval: float = 5.0,
        ring_replicas: int = 64,
        no_shard_wait: float = 20.0,
        log_stream: Optional[TextIO] = None,
    ):
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.socket_path = socket_path
        self.state_dir = state_dir or (socket_path + ".fleet")
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.miss_threshold = miss_threshold
        self.boot_timeout = boot_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_restarts = max_restarts
        self.replication_interval = replication_interval
        self.no_shard_wait = no_shard_wait
        self._log_stream = log_stream
        self.stats = FleetStats()
        self.shards: Dict[str, ShardHandle] = {}
        for index in range(shards):
            sid = f"s{index}"
            spec = ShardSpec(
                shard_id=sid,
                socket_path=f"{socket_path}.{sid}",
                checkpoint_dir=os.path.join(self.state_dir, f"shard-{sid}"),
                replica_dir=os.path.join(self.state_dir, "replica", sid),
                workers=workers_per_shard,
                queue_limit=queue_limit,
                jobs=jobs_per_shard,
                passes=passes,
            )
            self.shards[sid] = ShardHandle(spec)
        self.ring = HashRing(self.shards.keys(), replicas=ring_replicas)
        self.stopping = False
        self._draining = False
        self._stopped = threading.Event()
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._any_live: Optional[asyncio.Event] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._inflight_dispatches = 0
        self._dispatch_ids = itertools.count(1)
        self._tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle (thread-hosted event loop, mirrors ReproServer's API).
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-fleet", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._boot_error is not None:
            raise ServiceError(f"fleet failed to boot: {self._boot_error}")
        if not self._ready.is_set():
            raise ServiceError("fleet event loop never came up")

    def serve_forever(self) -> None:
        self._stopped.wait()

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until at least one shard answers pings (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if any(h.live for h in self.shards.values()):
                return True
            if self._stopped.is_set():
                return False
            time.sleep(0.05)
        return False

    def shutdown(self, drain: bool = True, timeout: float = 90.0) -> None:
        """Thread-safe: schedule the drain on the loop and wait."""
        loop = self._loop
        if loop is None or self._stopped.is_set():
            self._stopped.set()
            return
        try:
            loop.call_soon_threadsafe(self._begin_shutdown, drain)
        except RuntimeError:
            self._stopped.set()
            return
        self._stopped.wait(timeout)

    def _begin_shutdown(self, drain: bool) -> None:
        if self.stopping:
            return
        asyncio.ensure_future(self._shutdown_async(drain))

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.set_exception_handler(self._loop_exception)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as err:  # noqa: BLE001 — surface boot failures
            self._boot_error = err
            self._ready.set()
            # Post-boot this is fatal to the whole fleet; a silent exit
            # would strand live shard subprocesses with no supervisor.
            self._log_line({
                "kind": "fleet_crash",
                "error": repr(err),
                "traceback": traceback.format_exc(),
            })
        finally:
            try:
                loop.close()
            except OSError:
                pass
            self._stopped.set()

    def _loop_exception(self, loop, context) -> None:
        # Unhandled task/callback exceptions must never be invisible:
        # asyncio's default handler writes to a logger nobody wired up.
        err = context.get("exception")
        self._log_line({
            "kind": "fleet_task_error",
            "message": context.get("message", ""),
            "error": repr(err) if err is not None else None,
            "traceback": (
                "".join(traceback.format_exception(
                    type(err), err, err.__traceback__
                ))
                if err is not None
                else None
            ),
        })

    async def _main(self) -> None:
        os.makedirs(self.state_dir, exist_ok=True)
        self._any_live = asyncio.Event()
        self._drain_event = asyncio.Event()
        self._stop_async = asyncio.Event()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(
            self._handle_client,
            path=self.socket_path,
            limit=MAX_FRAME_BYTES + 2,
        )
        for handle in self.shards.values():
            supervisor = ShardSupervisor(
                handle,
                self,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                miss_threshold=self.miss_threshold,
                boot_timeout=self.boot_timeout,
                backoff_base=self.backoff_base,
                backoff_cap=self.backoff_cap,
                max_restarts=self.max_restarts,
            )
            self._tasks.append(asyncio.ensure_future(supervisor.run()))
        if self.replication_interval > 0:
            self._tasks.append(
                asyncio.ensure_future(self._replication_loop())
            )
        self._log_line({
            "kind": "fleet_ready", "socket": self.socket_path,
            "shards": sorted(self.shards),
        })
        self._ready.set()
        await self._stop_async.wait()

    async def _shutdown_async(self, drain: bool) -> None:
        self.stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        if drain:
            # Final replication round, then ask every live shard to
            # drain (their executing jobs finish and are answered, the
            # queued rest is checkpointed — zero accepted jobs lost).
            await self._replicate_once()
            for handle in self.shards.values():
                if not handle.live:
                    continue
                try:
                    await self.shard_control(
                        handle, "shutdown", params={"drain": True},
                        timeout=5.0,
                    )
                except Exception:
                    pass
            grace = time.monotonic() + 30.0
            while self._inflight_dispatches and time.monotonic() < grace:
                await asyncio.sleep(0.05)
        assert self._drain_event is not None
        self._drain_event.set()  # stragglers answer ``drained``
        await asyncio.sleep(0.05)
        for handle in self.shards.values():
            handle.live = False
            handle.dead_event.set()
            handle.kill()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._log_line({
            "kind": "fleet_drained" if drain else "fleet_stopped",
            "stats": self.stats.to_dict(),
        })
        self._stop_async.set()

    # ------------------------------------------------------------------
    # Helpers the supervisors call (all on the loop).
    # ------------------------------------------------------------------
    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        try:
            await asyncio.wait_for(
                self._stop_async.wait(), timeout=seconds
            )
        except asyncio.TimeoutError:
            pass

    def live_shards(self) -> Set[str]:
        return {sid for sid, h in self.shards.items() if h.live}

    def note_shard_ready(self, handle: ShardHandle) -> None:
        assert self._any_live is not None
        self._any_live.set()

    def note_shard_dead(self, handle: ShardHandle) -> None:
        if not self.live_shards():
            assert self._any_live is not None
            self._any_live.clear()

    def emit_shard_event(
        self, shard: str, action: str, epoch: int, detail: str = ""
    ) -> None:
        get_engine()._emit(ShardEvent(
            shard=shard, action=action, epoch=epoch, detail=detail,
        ))
        self._log_line({
            "kind": "shard_event", "shard": shard, "action": action,
            "epoch": epoch, "detail": detail,
        })

    async def shard_control(
        self,
        handle: ShardHandle,
        job: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: float = 5.0,
    ) -> Dict[str, Any]:
        """One control round trip to a shard (heartbeats, handoff,
        shutdown).  Raises on transport failure or timeout."""
        wire = {"id": f"ctl{next(self._dispatch_ids)}", "job": job,
                "params": params or {}}
        return await asyncio.wait_for(
            self._roundtrip_raw(handle.spec.socket_path, wire),
            timeout=timeout,
        )

    async def _roundtrip_raw(
        self, socket_path: str, wire: Dict[str, Any]
    ) -> Dict[str, Any]:
        reader, writer = await asyncio.open_unix_connection(
            socket_path, limit=MAX_FRAME_BYTES + 2
        )
        try:
            writer.write(encode_frame(wire))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("shard closed the connection")
            return decode_frame(line, require_newline=True)
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # Replication (warm-state shipping to ring successors).
    # ------------------------------------------------------------------
    async def _replication_loop(self) -> None:
        while not self.stopping:
            await self.sleep(self.replication_interval)
            if self.stopping:
                return
            try:
                await self._replicate_once()
            except Exception:
                pass  # replication is best-effort, like the PR 3 journal

    async def _replicate_once(self) -> Dict[str, int]:
        """One handoff round: snapshot every live shard's warm state
        and ship the journal files to its ring successor's replica."""
        from .supervisor import replicate_files

        loop = asyncio.get_event_loop()
        shipped: Dict[str, int] = {}
        for sid in sorted(self.live_shards()):
            handle = self.shards[sid]
            try:
                reply = await self.shard_control(
                    handle, "handoff", timeout=self.heartbeat_timeout + 4.0
                )
            except Exception:
                continue
            if reply.get("status") != "ok":
                continue
            manifest = reply.get("result") or {}
            names = [
                f["name"] for f in manifest.get("files", ())
                if isinstance(f, dict) and isinstance(f.get("name"), str)
            ]
            if not names:
                continue
            successor = self.ring.successor_shard(sid, self.live_shards())
            if successor is None:
                continue
            copied = await loop.run_in_executor(
                None,
                replicate_files,
                handle.spec.checkpoint_dir,
                handle.spec.replica_dir,
                names,
            )
            shipped[sid] = len(copied)
            self.stats.handoffs += 1
            self.emit_shard_event(
                sid, "handoff", handle.epoch,
                detail=f"{len(copied)} files -> {successor}",
            )
        return shipped

    # ------------------------------------------------------------------
    # Client connections.
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self.stats.rejected_invalid += 1
                    writer.write(encode_frame(invalid_reply(
                        None,
                        f"frame exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
                    )))
                    await writer.drain()
                    return
                if not line:
                    return
                reply = await self._handle_line(line)
                if reply is None:
                    continue
                writer.write(encode_frame(reply))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer went away mid-conversation
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _handle_line(self, line: bytes) -> Optional[Dict[str, Any]]:
        req_id: Optional[str] = None
        try:
            obj = decode_frame(line, require_newline=True)
            raw_id = obj.get("id")
            req_id = raw_id if isinstance(raw_id, str) else None
            request = validate_request(obj)
        except ProtocolError as err:
            self.stats.rejected_invalid += 1
            return invalid_reply(req_id, str(err))
        if request.job in CONTROL_JOBS:
            return await self._handle_control(request)
        return await self._dispatch(request)

    async def _handle_control(self, request: Request) -> Dict[str, Any]:
        if request.job == "ping":
            return ok_reply(request.id, {
                "pong": True,
                "protocol_version": PROTOCOL_VERSION,
                "fleet": True,
                "shards": len(self.shards),
            })
        if request.job == "health":
            return ok_reply(request.id, self.health_payload())
        if request.job == "handoff":
            shipped = await self._replicate_once()
            return ok_reply(request.id, {"replicated": shipped})
        if request.job == "stats":
            return ok_reply(request.id, await self._aggregate_stats())
        # shutdown — acknowledge, then drain.
        drain = request.params.get("drain", True)
        asyncio.ensure_future(self._shutdown_async(drain))
        return ok_reply(request.id, {
            "shutting_down": True, "drain": drain, "fleet": True,
        })

    def health_payload(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            "protocol_version": PROTOCOL_VERSION,
            "fleet": {
                "socket": self.socket_path,
                "shards": len(self.shards),
                "live": sorted(self.live_shards()),
                "draining": self._draining,
                **self.stats.to_dict(),
            },
            "shards": {
                sid: handle.status(now)
                for sid, handle in sorted(self.shards.items())
            },
        }

    async def _aggregate_stats(self) -> Dict[str, Any]:
        per_shard: Dict[str, Any] = {}
        for sid in sorted(self.shards):
            handle = self.shards[sid]
            if not handle.live:
                per_shard[sid] = None
                continue
            try:
                reply = await self.shard_control(handle, "stats", timeout=5.0)
                per_shard[sid] = reply.get("result")
            except Exception:
                per_shard[sid] = None
        return {
            "protocol_version": PROTOCOL_VERSION,
            "fleet": self.stats.to_dict(),
            "shards": per_shard,
        }

    # ------------------------------------------------------------------
    # Dispatch (the routing + failover core).
    # ------------------------------------------------------------------
    def _signature_of(self, request: Request) -> str:
        return jobs_mod.prepare(request).signature

    def _retry_after_hint(self) -> float:
        # No live shard: suggest roughly one restart backoff.
        return round(min(30.0, max(0.5, self.backoff_cap / 2.0)), 3)

    async def _dispatch(self, request: Request) -> Dict[str, Any]:
        if self._draining:
            self.stats.rejected_overloaded += 1
            return overloaded_reply(request.id, 1.0)
        loop = asyncio.get_event_loop()
        try:
            signature = await loop.run_in_executor(
                None, self._signature_of, request
            )
        except ReproError as err:
            return error_reply(
                request.id, err.kind, str(err), err.exit_code
            )
        deadline_at = (
            time.monotonic() + request.deadline
            if request.deadline is not None
            else None
        )
        attempt = request.attempt
        reroutes = 0
        max_reroutes = 2 * len(self.shards) + 2
        # Shards that lost a dispatch of THIS job: skipped on re-route
        # until every live shard is suspect.  The supervisor may not
        # have noticed a kill yet (liveness lags by up to a heartbeat),
        # so without this a replay re-resolves the same dead owner and
        # burns the whole re-route budget in milliseconds.
        suspects: Set[str] = set()
        self._inflight_dispatches += 1
        try:
            while True:
                live = self.live_shards() - suspects
                if not live and suspects:
                    suspects.clear()
                    live = self.live_shards()
                owner = self.ring.owner(signature, live)
                if owner is None:
                    if not await self._await_any_live(deadline_at):
                        if self._draining:
                            return drained_reply(request.id)
                        if (
                            deadline_at is not None
                            and time.monotonic() >= deadline_at
                        ):
                            return expired_reply(request.id)
                        self.stats.rejected_overloaded += 1
                        return overloaded_reply(
                            request.id, self._retry_after_hint()
                        )
                    continue
                handle = self.shards[owner]
                wire = dataclasses_replace_wire(request, attempt)
                self.stats.accepted += 1
                try:
                    reply = await self._shard_dispatch(
                        handle, wire, deadline_at
                    )
                except _DispatchLost as err:
                    self.stats.rerouted += 1
                    self.emit_shard_event(
                        owner, "reroute", handle.epoch,
                        detail=f"attempt {attempt}: {err}",
                    )
                    suspects.add(owner)
                    reroutes += 1
                    attempt += 1
                    if reroutes > max_reroutes:
                        return error_reply(
                            request.id,
                            "ServiceError",
                            f"job bounced off {reroutes} shard dispatches "
                            "without a definitive reply",
                            EXIT_SERVICE,
                        )
                    # Brief pause so supervision can catch up with the
                    # failure we just observed before we pick again.
                    await asyncio.sleep(min(0.5, 0.05 * reroutes))
                    continue
                except _RouterDeadline:
                    self.stats.expired += 1
                    return expired_reply(request.id)
                except _FleetDraining:
                    self.stats.drained += 1
                    return drained_reply(request.id)
                self.stats.completed += 1
                reply["id"] = request.id
                return reply
        finally:
            self._inflight_dispatches -= 1

    async def _await_any_live(
        self, deadline_at: Optional[float]
    ) -> bool:
        assert self._any_live is not None
        timeout = self.no_shard_wait
        if deadline_at is not None:
            timeout = min(timeout, max(0.0, deadline_at - time.monotonic()))
        try:
            await asyncio.wait_for(self._any_live.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _shard_dispatch(
        self,
        handle: ShardHandle,
        wire: Dict[str, Any],
        deadline_at: Optional[float],
    ) -> Dict[str, Any]:
        """Send one job to one shard; the reply read races the shard's
        death, fleet drain and the request deadline."""
        dead_event = handle.dead_event
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(
                    handle.spec.socket_path, limit=MAX_FRAME_BYTES + 2
                ),
                timeout=self.heartbeat_timeout + 4.0,
            )
        except (OSError, asyncio.TimeoutError) as err:
            raise _DispatchLost(f"connect failed: {err}")
        try:
            try:
                writer.write(encode_frame(wire))
                await writer.drain()
            except (OSError, ConnectionError) as err:
                raise _DispatchLost(f"send failed: {err}")
            read_task = asyncio.ensure_future(reader.readline())
            dead_task = asyncio.ensure_future(dead_event.wait())
            assert self._drain_event is not None
            drain_task = asyncio.ensure_future(self._drain_event.wait())
            timeout = (
                max(0.0, deadline_at - time.monotonic())
                if deadline_at is not None
                else None
            )
            done, pending = await asyncio.wait(
                {read_task, dead_task, drain_task},
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            for task in pending:
                task.cancel()
            if read_task in done:
                try:
                    line = read_task.result()
                except (OSError, ConnectionError, ValueError,
                        asyncio.LimitOverrunError) as err:
                    raise _DispatchLost(f"read failed: {err}")
                if not line:
                    raise _DispatchLost("shard closed the connection")
                try:
                    return decode_frame(line, require_newline=True)
                except ProtocolError as err:
                    # The killed-mid-write case: a truncated frame is a
                    # typed protocol failure, never a JSON traceback.
                    raise _DispatchLost(f"undecodable reply: {err}")
            if dead_task in done:
                raise _DispatchLost("shard declared dead mid-job")
            if drain_task in done:
                raise _FleetDraining()
            raise _RouterDeadline()
        finally:
            try:
                writer.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Logging.
    # ------------------------------------------------------------------
    def _log_line(self, payload: Dict[str, Any]) -> None:
        if self._log_stream is None:
            return
        try:
            self._log_stream.write(
                json.dumps(payload, sort_keys=True) + "\n"
            )
            self._log_stream.flush()
        except (OSError, ValueError):
            pass


def dataclasses_replace_wire(request: Request, attempt: int) -> Dict[str, Any]:
    """The wire frame forwarded to a shard: the client's request with
    the fleet's replay counter stamped in."""
    wire = request.to_wire()
    if attempt:
        wire["attempt"] = attempt
    else:
        wire.pop("attempt", None)
    return wire


def fleet_main(
    socket_path: str,
    shards: int,
    state_dir: Optional[str] = None,
    workers_per_shard: int = 2,
    queue_limit: int = 64,
    jobs_per_shard: int = 0,
    passes: str = "",
    heartbeat_interval: float = 1.0,
    replication_interval: float = 5.0,
    log_stream: Optional[TextIO] = None,
) -> int:
    """Blocking entry point for ``repro serve --shards N``."""
    import signal
    import sys as _sys

    router = FleetRouter(
        socket_path=socket_path,
        shards=shards,
        state_dir=state_dir,
        workers_per_shard=workers_per_shard,
        queue_limit=queue_limit,
        jobs_per_shard=jobs_per_shard,
        passes=passes,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=max(0.5, heartbeat_interval),
        replication_interval=replication_interval,
        log_stream=log_stream if log_stream is not None else _sys.stderr,
    )
    router.start()

    def _drain(signum, frame):  # noqa: ARG001
        threading.Thread(
            target=router.shutdown, kwargs={"drain": True}, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(
        f"repro serve: fleet of {shards} shards on {socket_path}",
        file=_sys.stderr,
    )
    router.serve_forever()
    if router._boot_error is not None:
        print(
            f"repro serve: fleet router died: {router._boot_error!r}",
            file=_sys.stderr,
        )
        return 1
    return 0


__all__ = [
    "FleetRouter",
    "FleetStats",
    "HashRing",
    "fleet_main",
]
