"""Job semantics of the compilation service.

Each evaluation job type maps onto exactly the code path the one-shot
CLI runs, so a warm daemon returns **bit-identical** results to ``repro
crat`` / ``repro simulate`` — the service adds batching, dedup and a
warm cache, never a different answer.

A request's life has two phases:

:func:`prepare`
    Runs on the connection handler thread: resolve the target (Table 3
    app abbreviation or inline PTX text), parse/verify it, and compute
    the job's **content signature** — ``sha256(job, kernel
    fingerprint, config signature, semantically relevant params)``.
    The signature is the single-flight dedup key: two requests collide
    exactly when their answers must be identical.  Load/parse failures
    surface here, before the request ever occupies a queue slot.

    Engine *tuning* state is deliberately absent from the signature:
    multi-point sweeps inside a job run on the warm engine's batched
    SoA core (:mod:`repro.sim.batch`) whenever it is enabled, and
    because the batched core is bit-identical to the scalar path, a
    batched and an unbatched evaluation of the same content may share
    one single-flight slot.  Only content that changes the *answer*
    (kernel, config, passes pipeline, job params) may enter the hash.

:func:`execute`
    Runs on a worker thread against the warm shared engine and returns
    the JSON-ready result payload.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

from ..arch import get_config
from ..arch.config import GPUConfig
from ..engine import FastPathPolicy, config_signature, get_engine
from ..errors import classify_error
from ..ir.pipeline import pipeline_signature, run_pipeline
from ..ptx import parse_kernel, verify_kernel
from ..ptx.module import Kernel
from ..workloads import BY_ABBR, RESOURCE_SENSITIVE, load_workload
from .protocol import Request

#: Daemon-wide default optimization pipeline (``repro serve --passes``);
#: per-request ``passes`` params override it.  Always stored normalized.
_default_passes = ""


def set_default_passes(spec: str) -> str:
    """Set (and validate) the daemon's default ``--passes`` pipeline.

    Raises :class:`repro.errors.ParseError` on unknown pass names, so a
    typo'd daemon flag dies at startup instead of failing every job.
    """
    global _default_passes
    _default_passes = pipeline_signature(spec)
    return _default_passes


def _passes_of(params: Dict[str, Any]) -> str:
    """The normalized pipeline a request runs under.

    Client input: normalization can raise :class:`ParseError`, which
    :func:`prepare` surfaces before the request occupies a queue slot.
    """
    spec = params.get("passes")
    if spec is None:
        return _default_passes
    return pipeline_signature(str(spec))


class PreparedJob:
    """A request with its target resolved and its dedup key computed."""

    def __init__(
        self,
        request: Request,
        signature: str,
        kernel: Optional[Kernel],
        workload: Optional[object],
        config: Optional[GPUConfig],
    ):
        self.request = request
        self.signature = signature
        self.kernel = kernel
        self.workload = workload
        self.config = config


def _sig(*parts: object) -> str:
    """Single-flight signature: ``sha256(schema tag, *parts)``.

    The engine's cache schema tag is folded in first, so bumping *any*
    result-affecting schema version (result layout, fastpath policy,
    pipeline format, batch core, tier-0 cost model) also invalidates
    in-flight dedup collisions — a job prepared under the old model
    version can never be answered by a slot keyed under the new one.
    """
    from ..engine.cache import cache_schema_version

    digest = hashlib.sha256(
        "\x1f".join(repr(p) for p in (cache_schema_version(),) + parts)
        .encode()
    )
    return digest.hexdigest()[:32]


def _load_target(params: Dict[str, Any]) -> Tuple[Kernel, Optional[object]]:
    """Resolve ``target`` (app abbreviation) or ``ptx`` (inline text).

    The service deliberately does not read files named by clients: a
    remote client's paths are meaningless on the server, and a daemon
    that opens arbitrary local paths on request is a confused deputy.
    Clients with a file send its *contents* as ``ptx``.
    """
    target = params.get("target")
    if target is not None:
        abbr = target.upper()
        if abbr not in BY_ABBR:
            raise classify_error(
                ValueError(
                    f"unknown app {target!r} (expected one of "
                    f"{', '.join(sorted(BY_ABBR))}); file targets must be "
                    "sent inline via 'ptx'"
                ),
                app=target,
                stage="parse",
            )
        workload = load_workload(abbr)
        return workload.kernel, workload
    try:
        kernel = parse_kernel(params["ptx"])
        verify_kernel(kernel)
    except Exception as err:
        raise classify_error(err, stage="parse")
    return kernel, None


def prepare(request: Request) -> PreparedJob:
    """Resolve the target and derive the single-flight signature."""
    params = request.params
    config_name = params.get("config", "fermi")
    if request.job == "suite":
        apps = tuple(
            a.upper() for a in params.get(
                "apps", [w.abbr for w in RESOURCE_SENSITIVE]
            )
        )
        unknown = [a for a in apps if a not in BY_ABBR]
        if unknown:
            raise classify_error(
                ValueError(f"unknown app(s): {', '.join(unknown)}"),
                stage="parse",
            )
        signature = _sig(
            "suite", config_name, apps, bool(params.get("verify")),
            _passes_of(params),
        )
        return PreparedJob(request, signature, None, None, None)

    kernel, workload = _load_target(params)
    config = get_config(config_name)
    fingerprint = kernel.fingerprint()
    if request.job == "crat":
        signature = _sig(
            "crat",
            fingerprint,
            config_signature(config),
            bool(params.get("static")),
            bool(params.get("no_shm_spill")),
            bool(params.get("verify")),
            params.get("fastpath_topk"),
            bool(params.get("no_refine")),
            _passes_of(params),
        )
    elif request.job == "simulate":
        signature = _sig(
            "simulate",
            fingerprint,
            config_signature(config),
            params.get("tlp", 4),
            params.get("grid", 0),
            _passes_of(params),
        )
    else:  # verify
        signature = _sig(
            "verify", fingerprint, bool(params.get("strict"))
        )
    return PreparedJob(request, signature, kernel, workload, config)


# ----------------------------------------------------------------------
# Result serialization (shared with the CLI identity tests and the
# via-server bench: one rendering, no drift between surfaces).
# ----------------------------------------------------------------------
def sim_result_to_dict(sim) -> Dict[str, Any]:
    return {
        "cycles": sim.cycles,
        "instructions": sim.instructions,
        "ipc": sim.ipc,
        "l1_hit_rate": sim.l1_hit_rate,
        "mshr_stall_cycles": sim.mshr_stall_cycles,
        "local_insts": sim.local_insts,
        "dram_bytes": sim.dram_bytes,
        "energy_nj": sim.energy_nj,
        "estimated": bool(getattr(sim, "estimated", False)),
    }


def crat_result_to_dict(result) -> Dict[str, Any]:
    return {
        "opt_tlp": result.opt_tlp,
        "opt_tlp_source": result.opt_tlp_source,
        "variant": result.variant,
        "candidates": [
            {"reg": s.point.reg, "tlp": s.point.tlp, "tpsc": s.tpsc}
            for s in result.candidates
        ],
        "chosen": {"reg": result.reg, "tlp": result.tlp},
        "sim": sim_result_to_dict(result.sim),
        "speedup_vs_opttlp": result.speedup_vs("opttlp"),
        "speedup_vs_maxtlp": result.speedup_vs("maxtlp"),
    }


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------
def execute(prepared: PreparedJob) -> Dict[str, Any]:
    """Run one prepared job on the warm shared engine.

    Raises the structured :mod:`repro.errors` taxonomy on job failure;
    the server maps it onto an ``error`` reply carrying the same kind
    and exit code the one-shot CLI would have used.
    """
    handler = _HANDLERS[prepared.request.job]
    return handler(prepared)


def _execute_crat(prepared: PreparedJob) -> Dict[str, Any]:
    from ..core import CRATOptimizer

    params = prepared.request.params
    fastpath = None
    topk = params.get("fastpath_topk")
    if topk:
        fastpath = FastPathPolicy(
            top_k=topk, refine=not params.get("no_refine", False)
        )
    optimizer = CRATOptimizer(
        prepared.config,
        enable_shm_spill=not params.get("no_shm_spill", False),
        opt_tlp_mode="static" if params.get("static") else "profile",
        verify=bool(params.get("verify")),
        engine=get_engine(),
        fastpath=fastpath,
        passes=_passes_of(params),
    )
    workload = prepared.workload
    result = optimizer.optimize(
        prepared.kernel,
        default_reg=workload.default_reg if workload else None,
        grid_blocks=workload.grid_blocks if workload else None,
        param_sizes=workload.param_sizes if workload else None,
    )
    return crat_result_to_dict(result)


def _execute_simulate(prepared: PreparedJob) -> Dict[str, Any]:
    params = prepared.request.params
    workload = prepared.workload
    grid = params.get("grid", 0) or (
        workload.grid_blocks if workload else None
    )
    kernel = prepared.kernel
    passes = _passes_of(params)
    if passes:
        kernel = run_pipeline(kernel, passes).kernel
    sim = get_engine().simulate(
        kernel,
        prepared.config,
        tlp=params.get("tlp", 4),
        grid_blocks=grid,
        param_sizes=workload.param_sizes if workload else None,
    )
    return sim_result_to_dict(sim)


def _execute_verify(prepared: PreparedJob) -> Dict[str, Any]:
    from .. import verify as verify_mod

    report = verify_mod.lint_kernel(prepared.kernel)
    strict = bool(prepared.request.params.get("strict"))
    passed = not report.errors and not (strict and report.warnings)
    payload = report.to_dict()
    payload["passed"] = passed
    return payload


def _execute_suite(prepared: PreparedJob) -> Dict[str, Any]:
    from .. import bench
    from ..bench import run_suite

    params = prepared.request.params
    abbrs = [
        a.upper() for a in params.get(
            "apps", [w.abbr for w in RESOURCE_SENSITIVE]
        )
    ]
    config_name = params.get("config", "fermi")
    # Only forward non-default knobs: tests monkeypatch two-argument
    # drivers in place of ``evaluate_app``.
    extra: Dict[str, Any] = {}
    if params.get("verify"):
        extra["verify"] = True
    passes = _passes_of(params)
    if passes:
        extra["passes"] = passes
    report = run_suite(
        abbrs,
        config_name=config_name,
        evaluate=lambda abbr, config: (
            bench.evaluate_app(abbr, config, **extra)
            if extra
            else bench.evaluate_app(abbr, config)
        ),
    )
    payload = report.to_dict()
    payload["speedups"] = {
        abbr: {
            "maxtlp": ev.speedup("maxtlp"),
            "crat_local": ev.speedup("crat-local"),
            "crat": ev.speedup("crat"),
        }
        for abbr, ev in sorted(report.evaluations.items())
    }
    return payload


_HANDLERS = {
    "crat": _execute_crat,
    "simulate": _execute_simulate,
    "verify": _execute_verify,
    "suite": _execute_suite,
}
