"""Wire protocol of the compilation service: newline-delimited JSON.

One request per line, one reply per line, UTF-8, in order per
connection.  The framing is deliberately boring — every language can
speak it from a shell one-liner (``echo '{"job":"ping"}' | nc -U ...``)
— and the interesting guarantees live above it: schema validation with
stable error strings, a hard frame-size ceiling (:data:`MAX_FRAME_BYTES`)
so a misbehaving client cannot balloon the daemon, and reply statuses
that map 1:1 onto the structured error taxonomy of :mod:`repro.errors`.

Request shape::

    {"id": "r1", "job": "crat", "params": {"target": "GAU"},
     "deadline": 30.0, "priority": 0}

``id`` is echoed verbatim in the reply so clients can pipeline.
``job`` is one of :data:`JOB_TYPES`; ``params`` is job-specific and
validated per job.  ``deadline`` (seconds, optional) bounds the
request's total time in the service — a request still queued when its
deadline passes is answered ``expired`` without ever running.
``priority`` (optional int, default 0, higher runs earlier) orders the
service queue.

Reply statuses::

    ok          {"id", "status": "ok", "result": {...}}
    error       {"id", "status": "error", "error": {kind, message,
                 exit_code}}           — the job itself failed
    invalid     {"id"?, "status": "invalid", "error": {...}}
                                       — the frame failed validation
    overloaded  {"id", "status": "overloaded", "retry_after": s}
                                       — queue full (429-style)
    expired     {"id", "status": "expired"}  — deadline passed in queue
    drained     {"id", "status": "drained"}  — server shut down before
                 the queued job ran; it was checkpointed, resubmit
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

#: Protocol revision, echoed by ``ping``/``stats``; bump on breaking
#: changes to the frame shape.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame (request or reply), newline included.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Evaluation jobs (queued, deduplicated, executed on workers) …
EVAL_JOBS = ("crat", "simulate", "verify", "suite")
#: … and control jobs (answered inline by the connection handler).
#: ``health`` is the fleet heartbeat: shard identity + live counters,
#: cheap enough to poll sub-second.  ``handoff`` asks a shard to
#: snapshot its queued jobs into the checkpoint journal and return a
#: manifest of the journal files, so the fleet can replicate its warm
#: state to the shard's ring successor.  ``reload-model`` hot-loads a
#: (re)trained tier-0 cost-model artifact into the shared engine
#: without a restart — the operator's path to recover from a drift
#: demotion.
CONTROL_JOBS = ("ping", "stats", "shutdown", "health", "handoff",
                "reload-model")
JOB_TYPES = EVAL_JOBS + CONTROL_JOBS

#: Per-job parameter schema: name -> (type, required).  ``params`` keys
#: outside the schema are rejected — typos must not silently change a
#: job's meaning (and its dedup signature).
_COMMON_PARAMS: Dict[str, tuple] = {
    "target": (str, False),   # app abbreviation (Table 3)
    "ptx": (str, False),      # inline PTX-subset text
    "config": (str, False),   # architecture preset (default "fermi")
}
PARAM_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    "crat": {
        **_COMMON_PARAMS,
        "static": (bool, False),
        "no_shm_spill": (bool, False),
        "verify": (bool, False),
        "fastpath_topk": (int, False),
        "no_refine": (bool, False),
        "passes": (str, False),
    },
    "simulate": {
        **_COMMON_PARAMS,
        "tlp": (int, False),
        "grid": (int, False),
        "passes": (str, False),
    },
    "verify": {
        **_COMMON_PARAMS,
        "strict": (bool, False),
    },
    "suite": {
        "config": (str, False),
        "apps": (list, False),
        "verify": (bool, False),
        "passes": (str, False),
    },
    "ping": {},
    "stats": {
        "include_events": (bool, False),
    },
    "shutdown": {
        "drain": (bool, False),
    },
    "health": {},
    "handoff": {},
    "reload-model": {
        "path": (str, False),
    },
}


class ProtocolError(Exception):
    """A frame failed framing or schema validation (client bug)."""


@dataclasses.dataclass(frozen=True)
class Request:
    """One validated request, ready for the queue.

    ``attempt`` counts fleet-level dispatch replays (0 = first try).
    It never enters the dedup signature — a replayed job must collide
    with its original — but shard-level fault-injection tokens include
    it, so a job that killed one shard re-rolls on the next instead of
    deterministically chasing the fleet through a kill loop.
    """

    job: str
    params: Dict[str, Any]
    id: Optional[str] = None
    deadline: Optional[float] = None
    priority: int = 0
    attempt: int = 0

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"job": self.job, "params": self.params}
        if self.id is not None:
            wire["id"] = self.id
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.priority:
            wire["priority"] = self.priority
        if self.attempt:
            wire["attempt"] = self.attempt
        return wire


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message as a single NDJSON frame.

    ``json.dumps`` with default separators never emits raw newlines, so
    the frame invariant (exactly one ``\\n``, at the end) holds by
    construction; oversized payloads are a :class:`ProtocolError`
    rather than a silently unreadable frame on the peer.
    """
    data = json.dumps(message, separators=(",", ":"), sort_keys=True)
    frame = data.encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return frame


def decode_frame(line: bytes, require_newline: bool = False) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Wire read paths pass ``require_newline=True``: a line without its
    trailing ``\\n`` means the peer died mid-write (a shard killed
    between ``write`` and ``flush``), and even if the fragment happens
    to be parseable JSON it must surface as a typed
    :class:`ProtocolError`, never as a silently short answer.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    if require_newline and not line.endswith(b"\n"):
        raise ProtocolError(
            f"truncated frame ({len(line)} bytes, no trailing newline): "
            "peer died mid-write"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"undecodable frame: {err}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# Schema validation.
# ----------------------------------------------------------------------
def validate_request(obj: Dict[str, Any]) -> Request:
    """Validate a decoded frame into a :class:`Request`.

    Every rejection names the offending field — the string travels back
    to the client verbatim, so it has to be actionable on its own.
    """
    known_top = {"id", "job", "params", "deadline", "priority", "attempt"}
    unknown = sorted(set(obj) - known_top)
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(unknown)}")

    job = obj.get("job")
    if not isinstance(job, str):
        raise ProtocolError("missing or non-string 'job'")
    if job not in JOB_TYPES:
        raise ProtocolError(
            f"unknown job {job!r} (expected one of "
            f"{', '.join(JOB_TYPES)})"
        )

    req_id = obj.get("id")
    if req_id is not None and not isinstance(req_id, str):
        raise ProtocolError("'id' must be a string")

    deadline = obj.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ProtocolError("'deadline' must be a number of seconds")
        if deadline <= 0:
            raise ProtocolError("'deadline' must be positive")
        deadline = float(deadline)

    priority = obj.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("'priority' must be an integer")

    attempt = obj.get("attempt", 0)
    if not isinstance(attempt, int) or isinstance(attempt, bool):
        raise ProtocolError("'attempt' must be an integer")
    if attempt < 0:
        raise ProtocolError("'attempt' must be non-negative")

    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    schema = PARAM_SCHEMAS[job]
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise ProtocolError(
            f"job {job!r}: unknown param(s): {', '.join(unknown)}"
        )
    for name, (expected, required) in schema.items():
        if name not in params:
            if required:
                raise ProtocolError(f"job {job!r}: missing param {name!r}")
            continue
        value = params[name]
        if expected in (int, float) and isinstance(value, bool):
            raise ProtocolError(
                f"job {job!r}: param {name!r} must be {expected.__name__}"
            )
        if not isinstance(value, expected):
            raise ProtocolError(
                f"job {job!r}: param {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if job in ("crat", "simulate", "verify"):
        if ("target" in params) == ("ptx" in params):
            raise ProtocolError(
                f"job {job!r}: exactly one of 'target' or 'ptx' is required"
            )
    return Request(
        job=job, params=dict(params), id=req_id,
        deadline=deadline, priority=priority, attempt=attempt,
    )


# ----------------------------------------------------------------------
# Reply constructors (the only way the server builds replies, so the
# reply vocabulary cannot drift between code paths).
# ----------------------------------------------------------------------
def ok_reply(req_id: Optional[str], result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": req_id, "status": "ok", "result": result}


def error_reply(
    req_id: Optional[str], kind: str, message: str, exit_code: int
) -> Dict[str, Any]:
    return {
        "id": req_id,
        "status": "error",
        "error": {"kind": kind, "message": message, "exit_code": exit_code},
    }


def invalid_reply(req_id: Optional[str], message: str) -> Dict[str, Any]:
    return {
        "id": req_id,
        "status": "invalid",
        "error": {"kind": "ProtocolError", "message": message, "exit_code": 7},
    }


def overloaded_reply(
    req_id: Optional[str], retry_after: float
) -> Dict[str, Any]:
    """The 429: queue full; ``retry_after`` is the server's estimate of
    when capacity frees up (the client library honors it)."""
    return {
        "id": req_id,
        "status": "overloaded",
        "retry_after": round(retry_after, 3),
    }


def expired_reply(req_id: Optional[str]) -> Dict[str, Any]:
    return {"id": req_id, "status": "expired"}


def drained_reply(req_id: Optional[str]) -> Dict[str, Any]:
    return {"id": req_id, "status": "drained"}
