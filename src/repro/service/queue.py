"""Service-side job bookkeeping: bounded priority queue + single-flight.

Two small, separately testable structures:

:class:`JobQueue`
    A bounded, thread-safe priority queue.  ``put`` never blocks — a
    full queue raises :class:`QueueFullError` immediately so the
    connection handler can send the 429-style ``overloaded`` reply with
    a ``retry_after`` hint instead of silently building an unbounded
    backlog (explicit backpressure beats implicit latency).  Ordering
    is by descending ``priority`` then FIFO within a priority.

:class:`InFlightJob` / :class:`SingleFlightTable`
    The deduplication layer.  Jobs are keyed by their content
    *signature* (kernel fingerprint + config signature + the param
    subset that changes the answer); concurrent identical requests
    attach to the one in-flight job and all wake on its completion,
    so a stampede of N identical submits costs exactly one evaluation.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .protocol import Request


class QueueFullError(Exception):
    """The bounded queue rejected a job (backpressure signal)."""

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(f"queue full ({depth}/{limit})")


@dataclasses.dataclass
class Waiter:
    """One client request attached to an in-flight job."""

    req_id: Optional[str]
    #: Absolute monotonic deadline (``None`` = wait forever).
    deadline_at: Optional[float]


class InFlightJob:
    """One deduplicated unit of work and everyone waiting on it.

    The first request for a signature creates the job; later identical
    requests only append a :class:`Waiter`.  ``finish`` publishes the
    outcome exactly once and wakes every waiter.  Outcomes are
    ``("ok", result)``, ``("error", (kind, message, exit_code))``,
    ``("expired", None)`` or ``("drained", None)``.
    """

    def __init__(self, signature: str, request: Request):
        self.signature = signature
        #: The canonical request (the first one); its params define the
        #: work, its priority is raised to the max of all attachments.
        self.request = request
        self.accepted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.waiters: List[Waiter] = []
        self.outcome: Optional[Tuple[str, Any]] = None
        #: Set by the server after admission: the resolved
        #: :class:`~repro.service.jobs.PreparedJob` the worker executes.
        self.prepared: Optional[object] = None
        self._done = threading.Event()

    def attach(self, req_id: Optional[str], deadline: Optional[float]) -> Waiter:
        waiter = Waiter(
            req_id=req_id,
            deadline_at=(time.monotonic() + deadline) if deadline else None,
        )
        self.waiters.append(waiter)
        return waiter

    def all_expired(self, now: Optional[float] = None) -> bool:
        """True when every waiter's deadline has already passed (the
        worker skips execution: nobody is left to hear the answer)."""
        now = time.monotonic() if now is None else now
        return bool(self.waiters) and all(
            w.deadline_at is not None and w.deadline_at <= now
            for w in self.waiters
        )

    def finish(self, status: str, payload: Any = None) -> None:
        self.outcome = (status, payload)
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class SingleFlightTable:
    """Signature -> in-flight job map behind one lock.

    ``admit`` is the only entry point: it either attaches the request
    to an existing live job (a dedup hit — the caller must *not*
    enqueue anything) or registers a fresh job the caller is now
    responsible for queueing.  Jobs deregister on completion, so a
    signature can run again later (with a by-then-warm cache).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, InFlightJob] = {}

    def admit(
        self,
        signature: str,
        request: Request,
    ) -> Tuple[InFlightJob, Waiter, bool]:
        """Returns ``(job, waiter, created)``; ``created=False`` is a
        dedup hit."""
        with self._lock:
            job = self._jobs.get(signature)
            if job is not None and not job.done:
                waiter = job.attach(request.id, request.deadline)
                return job, waiter, False
            job = InFlightJob(signature, request)
            waiter = job.attach(request.id, request.deadline)
            self._jobs[signature] = job
            return job, waiter, True

    def complete(self, job: InFlightJob, status: str, payload: Any = None) -> None:
        """Publish the outcome and deregister the signature."""
        with self._lock:
            if self._jobs.get(job.signature) is job:
                del self._jobs[job.signature]
        job.finish(status, payload)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)


class JobQueue:
    """Bounded priority queue of :class:`InFlightJob`.

    ``get`` blocks until a job, ``close()``, or timeout; a closed,
    empty queue yields ``None`` (the worker's exit signal).
    ``drain_remaining`` atomically empties the queue for checkpointing
    during graceful shutdown.
    """

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError("queue limit must be positive")
        self.limit = limit
        self._heap: List[Tuple[int, int, InFlightJob]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._paused = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, job: InFlightJob) -> None:
        with self._not_empty:
            if self._closed:
                raise QueueFullError(len(self._heap), self.limit)
            if len(self._heap) >= self.limit:
                raise QueueFullError(len(self._heap), self.limit)
            heapq.heappush(
                self._heap, (-job.request.priority, self._seq, job)
            )
            self._seq += 1
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[InFlightJob]:
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._not_empty:
            while self._paused or not self._heap:
                if self._closed and not self._heap:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def pause(self) -> None:
        """Hold consumers: ``put`` keeps admitting, ``get`` blocks.

        The gate lives here — not in the consumer's loop — so a worker
        already parked inside ``get`` cannot slip one more job out
        before the pause lands (maintenance and the concurrency tests
        rely on the queue depth being exact while paused)."""
        with self._not_empty:
            self._paused = True

    def resume(self) -> None:
        with self._not_empty:
            self._paused = False
            self._not_empty.notify_all()

    def close(self) -> None:
        """Stop accepting and wake every blocked ``get``."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def snapshot(self) -> List[InFlightJob]:
        """Non-destructive view of the queued jobs in priority order
        (the ``handoff`` control job checkpoints from it while the
        queue keeps running)."""
        with self._lock:
            return [entry[2] for entry in sorted(self._heap)]

    def drain_remaining(self) -> List[InFlightJob]:
        """Close and empty the queue, returning not-yet-started jobs in
        priority order (the shutdown path checkpoints them)."""
        with self._not_empty:
            self._closed = True
            jobs = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            self._not_empty.notify_all()
            return jobs
