"""``repro serve`` — the persistent compilation daemon.

One process owns one warm :class:`~repro.engine.engine.EvaluationEngine`
and serves evaluation requests over a unix socket (or TCP via
``--listen``).  The pieces, front to back:

* **Connection handlers** (one thread per connection) speak the NDJSON
  protocol: validate frames, answer control jobs (``ping``, ``stats``,
  ``shutdown``) inline, and funnel evaluation jobs through admission.
* **Admission** = single-flight dedup + bounded queue.  A request whose
  content signature matches an in-flight job attaches to it (N
  identical concurrent submits cost one evaluation); otherwise it
  occupies a queue slot or — queue full — is refused with an
  ``overloaded`` reply carrying a ``Retry-After`` hint (backpressure is
  explicit, never an unbounded backlog).
* **Workers** (a small thread pool) pop jobs in priority order and run
  them on the shared engine; heavy sweeps still fan out over the
  engine's *process* pool, so worker threads are coordinators, not
  compute.
* **Graceful drain**: on SIGTERM the listener closes, executing jobs
  finish and are answered, and queued-but-unstarted jobs are
  checkpointed to the PR 3 journal directory
  (``service-queue.jsonl``) and answered ``drained`` — zero accepted
  jobs are lost.  A later ``repro serve`` against the same checkpoint
  directory re-enqueues them on boot.
* **Observability**: a ``stats`` request returns service counters
  (queue depth, dedup hits, p50/p95 latency per job type) plus the
  engine snapshot; every reply is also recorded as a typed
  :class:`~repro.engine.events.RequestEvent` in the engine's event
  log, and ``--log-interval`` emits periodic structured JSON lines.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, TextIO, Tuple

from ..engine import get_engine, set_engine
from ..engine import faults
from ..engine.engine import CHECKPOINT_DIR_ENV, EvaluationEngine
from ..engine.events import RequestEvent, event_to_dict
from ..errors import ReproError, ServiceError, classify_error
from . import jobs as jobs_mod
from .protocol import (
    CONTROL_JOBS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_frame,
    drained_reply,
    encode_frame,
    error_reply,
    expired_reply,
    invalid_reply,
    ok_reply,
    overloaded_reply,
    validate_request,
)
from .queue import InFlightJob, JobQueue, QueueFullError, SingleFlightTable

#: Environment variable naming the default unix socket path.
SOCKET_ENV = "REPRO_SOCKET"

#: Set by the fleet supervisor on engine-shard subprocesses: the
#: shard's stable id and its restart epoch (how many times the
#: supervisor has restarted it).  A server with a shard id answers
#: ``health`` with its identity and consults the service-level fault
#: kinds (``shard-crash`` / ``shard-hang`` / ``net-drop``); a plain
#: ``repro serve`` never does.
SHARD_ID_ENV = "REPRO_SHARD_ID"
SHARD_EPOCH_ENV = "REPRO_SHARD_EPOCH"

#: Checkpoint file (inside the PR 3 journal directory) holding the
#: queued-but-unstarted jobs of a drained server.
QUEUE_CHECKPOINT_NAME = "service-queue.jsonl"

#: How many recent per-job latencies feed the p50/p95 estimates.
_LATENCY_WINDOW = 512


def default_socket_path() -> str:
    """``$REPRO_SOCKET`` or a per-user path under the temp directory."""
    env = os.environ.get(SOCKET_ENV, "").strip()
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class ServiceStats:
    """Thread-safe service counters + a bounded latency window."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.dedup_hits = 0
        self.rejected_invalid = 0
        self.rejected_overloaded = 0
        self.expired = 0
        self.drained = 0
        self.executed = 0
        self.connections = 0
        self.model_reloads = 0
        self._latency: Dict[str, deque] = {}
        self._queue_latency: Dict[str, deque] = {}

    def bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def observe_latency(self, job: str, queue_s: float, total_s: float) -> None:
        with self._lock:
            self._latency.setdefault(
                job, deque(maxlen=_LATENCY_WINDOW)
            ).append(total_s)
            self._queue_latency.setdefault(
                job, deque(maxlen=_LATENCY_WINDOW)
            ).append(queue_s)

    def mean_latency(self) -> float:
        with self._lock:
            values = [v for window in self._latency.values() for v in window]
        return sum(values) / len(values) if values else 0.0

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            latency = {
                job: {
                    "count": len(window),
                    "p50": _percentile(list(window), 0.50),
                    "p95": _percentile(list(window), 0.95),
                    "queue_p50": _percentile(
                        list(self._queue_latency.get(job, ())), 0.50
                    ),
                }
                for job, window in sorted(self._latency.items())
            }
            return {
                "uptime_seconds": time.monotonic() - self.started_at,
                "accepted": self.accepted,
                "completed": self.completed,
                "failed": self.failed,
                "dedup_hits": self.dedup_hits,
                "rejected_invalid": self.rejected_invalid,
                "rejected_overloaded": self.rejected_overloaded,
                "expired": self.expired,
                "drained": self.drained,
                "executed": self.executed,
                "connections": self.connections,
                "model_reloads": self.model_reloads,
                "latency": latency,
            }


class _TruncatedReply:
    """Marker returned by ``_handle_eval`` under an injected
    ``net-drop`` fault: the connection handler writes only half the
    encoded frame and drops the connection."""

    def __init__(self, reply: Dict[str, Any]):
        self.reply = reply


class ReproServer:
    """The daemon: socket front-end, admission, workers, drain."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        engine: Optional[EvaluationEngine] = None,
        workers: int = 2,
        queue_limit: int = 64,
        log_stream: Optional[TextIO] = None,
        log_interval: float = 0.0,
        checkpoint_dir: Optional[str] = None,
        shard_id: Optional[str] = None,
        shard_epoch: int = 0,
        costmodel_path: Optional[str] = None,
    ):
        if host is not None:
            self._family = socket.AF_INET
            self._bind_to: Any = (host, port or 0)
            self.socket_path = None
        else:
            self._family = socket.AF_UNIX
            self.socket_path = socket_path or default_socket_path()
            self._bind_to = self.socket_path
        if engine is not None:
            set_engine(engine)
        self.engine = engine if engine is not None else get_engine()
        self.workers = max(1, workers)
        self.stats = ServiceStats()
        self._queue = JobQueue(queue_limit)
        self._inflight = SingleFlightTable()
        self._log_stream = log_stream
        self._log_interval = log_interval
        self._checkpoint_dir = (
            checkpoint_dir
            or self.engine.checkpoint_dir
            or os.environ.get(CHECKPOINT_DIR_ENV)
            or None
        )
        self.shard_id = shard_id
        self.shard_epoch = shard_epoch
        #: Path of the tier-0 model artifact installed at boot (if
        #: any); the default a path-less ``reload-model`` re-reads.
        self.costmodel_path = costmodel_path
        #: Set by an injected ``shard-hang`` fault: the control plane
        #: (ping/health) stalls so the fleet's heartbeat deadline trips.
        self._hung = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conn_threads: List[threading.Thread] = []
        self._draining = False
        self._stopped = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        if self.socket_path:
            return self.socket_path
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> Optional[int]:
        if self.socket_path or self._listener is None:
            return None
        return self._listener.getsockname()[1]

    def start(self) -> None:
        if self.socket_path and os.path.exists(self.socket_path):
            # A previous daemon's stale socket: connect to distinguish a
            # live server (refuse to double-bind) from a leftover file.
            probe = socket.socket(socket.AF_UNIX)
            try:
                probe.settimeout(0.25)
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)
            else:
                probe.close()
                raise ServiceError(
                    f"a server is already listening on {self.socket_path}"
                )
            finally:
                probe.close()
        self._listener = socket.socket(self._family, socket.SOCK_STREAM)
        if self._family == socket.AF_INET:
            self._listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
        self._listener.bind(self._bind_to)
        self._listener.listen(64)
        # A finite accept timeout keeps shutdown deterministic: closing
        # a listener does not reliably wake a thread already blocked in
        # accept() (and the fd number may even be reused), so the
        # accept loop polls the draining flag instead of trusting the
        # close to interrupt it.
        self._listener.settimeout(0.2)
        self._resume_checkpointed_queue()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        accept = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        if self._log_interval > 0:
            logger = threading.Thread(
                target=self._log_loop, name="repro-log", daemon=True
            )
            logger.start()
            self._threads.append(logger)
        self._log_line({"kind": "service_ready", "address": self.address,
                        "workers": self.workers,
                        "queue_limit": self._queue.limit})

    def serve_forever(self) -> None:
        self._stopped.wait()

    def pause_workers(self) -> None:
        """Hold workers before their next job (maintenance / tests).

        Gating happens inside the queue, so even a worker already
        blocked waiting for work cannot pick up another job until
        :meth:`resume_workers`; admission keeps running, so requests
        pile up against the dedup table and the bounded queue exactly
        as they would under a long-running job."""
        self._queue.pause()

    def resume_workers(self) -> None:
        self._queue.resume()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon; with ``drain`` (the SIGTERM path) executing
        jobs finish and the queue is checkpointed, so zero accepted
        jobs are lost."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        pending = self._queue.drain_remaining()
        if drain:
            self._checkpoint_jobs(pending)
        for job in pending:
            self.stats.bump("drained", len(job.waiters))
            self._emit_request(job, "drained", deduped=False)
            self._inflight.complete(job, "drained")
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30.0 if drain else 1.0)
        # Connection threads may be parked in readline() on idle client
        # sockets; give the pack a short collective grace to flush their
        # final replies, then let the daemon threads die with us.
        grace_until = time.monotonic() + 2.0
        for thread in list(self._conn_threads):
            if thread is threading.current_thread():
                continue
            remaining = grace_until - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._log_line({
            "kind": "service_drained" if drain else "service_stopped",
            "checkpointed": len(pending),
            "stats": self.stats.to_dict(),
        })
        self._stopped.set()

    # ------------------------------------------------------------------
    # Queue checkpoint (graceful drain / boot resume).
    # ------------------------------------------------------------------
    def _checkpoint_path(self) -> Optional[str]:
        if not self._checkpoint_dir:
            return None
        return os.path.join(self._checkpoint_dir, QUEUE_CHECKPOINT_NAME)

    def _checkpoint_jobs(self, pending: List[InFlightJob]) -> None:
        path = self._checkpoint_path()
        if not path or not pending:
            return
        try:
            os.makedirs(self._checkpoint_dir, exist_ok=True)
            with open(path, "a") as handle:
                for job in pending:
                    handle.write(
                        json.dumps(job.request.to_wire(), sort_keys=True)
                        + "\n"
                    )
        except OSError:
            pass  # checkpointing is best-effort, like the PR 3 journal

    def _write_queue_snapshot(self, pending: List[InFlightJob]) -> int:
        """Atomically rewrite the queue checkpoint with ``pending``
        (the ``handoff`` snapshot path — unlike the drain path it must
        not append, or every replication round would duplicate the
        queue)."""
        path = self._checkpoint_path()
        if not path:
            return 0
        try:
            os.makedirs(self._checkpoint_dir, exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                for job in pending:
                    handle.write(
                        json.dumps(job.request.to_wire(), sort_keys=True)
                        + "\n"
                    )
            os.replace(tmp, path)
        except OSError:
            return 0
        return len(pending)

    def _handle_handoff(self) -> Dict[str, Any]:
        """Snapshot queued jobs into the journal and return a manifest
        of the checkpoint directory, so the fleet can ship this shard's
        warm state (queue + simulated-result journal) to its ring
        successor."""
        import hashlib

        pending = self._queue.snapshot()
        queued = self._write_queue_snapshot(pending)
        directory = self._checkpoint_dir
        manifest: List[Dict[str, Any]] = []
        if directory and os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                path = os.path.join(directory, name)
                if not os.path.isfile(path) or name.endswith(".tmp"):
                    continue
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                manifest.append({
                    "name": name,
                    "bytes": len(data),
                    "sha256": hashlib.sha256(data).hexdigest(),
                })
        return {
            "shard_id": self.shard_id,
            "epoch": self.shard_epoch,
            "dir": directory,
            "queued": queued,
            "files": manifest,
        }

    def health_payload(self) -> Dict[str, Any]:
        """The ``health`` reply: shard identity + the counters the
        fleet's status surface and the chaos smoke read (cheap — no
        engine snapshot, no latency windows)."""
        stats = self.stats.to_dict()
        engine_stats = self.engine.stats.to_dict()
        return {
            "protocol_version": PROTOCOL_VERSION,
            "shard_id": self.shard_id,
            "epoch": self.shard_epoch,
            "pid": os.getpid(),
            "uptime_seconds": stats["uptime_seconds"],
            "queue_depth": len(self._queue),
            "inflight": len(self._inflight),
            "accepted": stats["accepted"],
            "completed": stats["completed"],
            "failed": stats["failed"],
            "dedup_hits": stats["dedup_hits"],
            "expired": stats["expired"],
            "drained": stats["drained"],
            "checkpoint_hits": engine_stats.get("checkpoint_hits", 0),
            "sim_cache_hits": engine_stats.get("sim_hits", 0),
            "simulations": engine_stats.get("simulations", 0),
        }

    def _resume_checkpointed_queue(self) -> None:
        path = self._checkpoint_path()
        if not path or not os.path.exists(path):
            return
        resumed = 0
        try:
            with open(path) as handle:
                lines = handle.readlines()
            os.unlink(path)
        except OSError:
            return
        seen: set = set()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = validate_request(json.loads(line))
                prepared = jobs_mod.prepare(request)
            except Exception:
                continue  # a stale/invalid record is dropped, not fatal
            if prepared.signature in seen:
                # Drain appends and handoff snapshots can overlap; a
                # job re-runs once on resume, never twice.
                continue
            seen.add(prepared.signature)
            job = InFlightJob(prepared.signature, request)
            job.prepared = prepared
            # No waiters: the job runs purely to rebuild the warm cache.
            try:
                self._queue.put(job)
                resumed += 1
            except QueueFullError:
                break
        if resumed:
            self._log_line({"kind": "service_resume", "jobs": resumed})

    # ------------------------------------------------------------------
    # Accept / connection handling.
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._draining:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed (shutdown)
            conn.settimeout(None)
            self.stats.bump("connections")
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)
            if len(self._conn_threads) > 64:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            while True:
                line = reader.readline(MAX_FRAME_BYTES + 2)
                if not line:
                    return
                if not line.endswith(b"\n") and len(line) > MAX_FRAME_BYTES:
                    # An oversized frame cannot be resynchronized —
                    # report and drop the connection.
                    self.stats.bump("rejected_invalid")
                    self._send(conn, invalid_reply(
                        None,
                        f"frame exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
                    ))
                    return
                reply = self._handle_frame(line)
                if isinstance(reply, _TruncatedReply):
                    # Injected net-drop: write half the frame, then
                    # drop the connection — the peer must surface a
                    # typed ProtocolError and replay elsewhere.
                    frame = encode_frame(reply.reply)
                    try:
                        conn.sendall(frame[: max(1, len(frame) // 2)])
                    except OSError:
                        pass
                    return
                if reply is not None:
                    self._send(conn, reply)
        except OSError:
            pass  # peer went away mid-conversation
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, reply: Dict[str, Any]) -> None:
        try:
            conn.sendall(encode_frame(reply))
        except OSError:
            pass

    def _handle_frame(self, line: bytes) -> Optional[Dict[str, Any]]:
        req_id: Optional[str] = None
        try:
            obj = decode_frame(line)
            raw_id = obj.get("id")
            req_id = raw_id if isinstance(raw_id, str) else None
            request = validate_request(obj)
        except ProtocolError as err:
            self.stats.bump("rejected_invalid")
            return invalid_reply(req_id, str(err))
        if request.job in CONTROL_JOBS:
            return self._handle_control(request)
        return self._handle_eval(request)

    def _handle_control(self, request: Request) -> Dict[str, Any]:
        if request.job in ("ping", "health") and self._hung:
            # Injected shard-hang: the control plane stalls past any
            # reasonable heartbeat deadline (the supervisor must
            # declare the shard dead and kill it).
            plan = faults.active_plan()
            time.sleep(plan.hang_seconds if plan else 30.0)
        if request.job == "ping":
            return ok_reply(request.id, {
                "pong": True, "protocol_version": PROTOCOL_VERSION,
            })
        if request.job == "health":
            return ok_reply(request.id, self.health_payload())
        if request.job == "handoff":
            return ok_reply(request.id, self._handle_handoff())
        if request.job == "stats":
            return ok_reply(request.id, self.stats_payload(
                include_events=bool(request.params.get("include_events"))
            ))
        if request.job == "reload-model":
            return self._handle_reload_model(request)
        # shutdown: acknowledge first, then drain from a fresh thread so
        # the reply reaches the client before the connection dies.
        drain = request.params.get("drain", True)
        threading.Thread(
            target=self.shutdown, kwargs={"drain": drain}, daemon=True
        ).start()
        return ok_reply(request.id, {"shutting_down": True, "drain": drain})

    def _handle_reload_model(self, request: Request) -> Dict[str, Any]:
        """Hot-load a tier-0 model artifact into the shared engine.

        An operator control job: ``params.path`` names the artifact on
        the *server's* filesystem (defaulting to the path the daemon
        booted with), and a load failure — corrupted, legacy, foreign
        schema — is a typed error reply, never a half-installed model.
        An empty ``path`` with no boot-time default clears nothing; it
        is an error, so a typo'd reload cannot silently disable a
        working screen.
        """
        path = request.params.get("path") or self.costmodel_path
        if not path:
            return error_reply(
                request.id, "ServiceError",
                "reload-model needs params.path (no model was "
                "configured at boot)", 7,
            )
        try:
            from ..model.screen import load_screen

            screen = load_screen(str(path))
        except ReproError as err:
            return error_reply(
                request.id, err.kind, str(err), err.exit_code
            )
        self.engine.set_costmodel(screen)
        self.costmodel_path = str(path)
        self.stats.bump("model_reloads")
        return ok_reply(request.id, {
            "reloaded": True,
            "model": str(path),
            **{str(k): v for k, v in screen.summary().items()},
        })

    def _retry_after_hint(self) -> float:
        """Estimate when a queue slot frees: depth x recent mean job
        latency, spread over the worker pool; clamped to [0.1s, 30s]."""
        mean = self.stats.mean_latency() or 0.5
        depth = len(self._queue) + 1
        return max(0.1, min(30.0, depth * mean / self.workers))

    def _handle_eval(self, request: Request) -> Dict[str, Any]:
        if self._draining:
            self.stats.bump("rejected_overloaded")
            return overloaded_reply(request.id, 1.0)
        try:
            prepared = jobs_mod.prepare(request)
        except ReproError as err:
            self.stats.bump("failed")
            return error_reply(request.id, err.kind, str(err), err.exit_code)
        job, waiter, created = self._inflight.admit(
            prepared.signature, request
        )
        if created:
            job.prepared = prepared
            try:
                self._queue.put(job)
            except QueueFullError:
                self._inflight.complete(
                    job, "overloaded", self._retry_after_hint()
                )
                self.stats.bump("rejected_overloaded")
                return overloaded_reply(request.id, self._retry_after_hint())
            self.stats.bump("accepted")
        else:
            self.stats.bump("accepted")
            self.stats.bump("dedup_hits")
        timeout = None
        if waiter.deadline_at is not None:
            timeout = max(0.0, waiter.deadline_at - time.monotonic())
        if not job.wait(timeout):
            self.stats.bump("expired")
            self._emit_request(job, "expired", deduped=not created)
            return expired_reply(request.id)
        status, payload = job.outcome  # type: ignore[misc]
        self._emit_request(job, status, deduped=not created)
        if status == "ok":
            reply: Dict[str, Any] = ok_reply(request.id, payload)
        elif status == "error":
            kind, message, exit_code = payload
            reply = error_reply(request.id, kind, message, exit_code)
        elif status == "overloaded":
            reply = overloaded_reply(request.id, payload or 1.0)
        elif status == "expired":
            reply = expired_reply(request.id)
        else:
            reply = drained_reply(request.id)
        if self.shard_id is not None and faults.shard_net_drop(
            self._fault_token(prepared.signature, request.attempt)
        ):
            return _TruncatedReply(reply)  # type: ignore[return-value]
        return reply

    # ------------------------------------------------------------------
    # Workers.
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get(timeout=0.2)
            if job is None:
                if self._queue.closed:
                    return
                continue
            self._execute_job(job)

    def _fault_token(self, signature: str, attempt: int) -> str:
        """Deterministic decision token for service-level faults.

        Includes the dispatch attempt and the shard's restart epoch so
        a replayed or resumed job re-rolls — without them, a job whose
        signature decides ``shard-crash`` would kill every shard it is
        ever routed to, forever.
        """
        return (
            f"{signature}#a{attempt}@{self.shard_id}#e{self.shard_epoch}"
        )

    def _maybe_inject_shard_fault(self, job: InFlightJob) -> None:
        if self.shard_id is None:
            return
        token = self._fault_token(job.signature, job.request.attempt)
        action = faults.shard_fault(token)
        if action == "crash":
            # Abrupt death — no drain, no checkpoint, no reply. The
            # supervisor must notice, re-route and restart us.
            self._log_line({
                "kind": "shard_fault_crash", "shard": self.shard_id,
                "token": token,
            })
            os._exit(86)
        if action == "hang":
            self._hung = True

    def _execute_job(self, job: InFlightJob) -> None:
        job.started_at = time.monotonic()
        self._maybe_inject_shard_fault(job)
        if job.all_expired():
            # Every waiter's deadline passed while the job sat in the
            # queue: skip the work, nobody is listening (each waiter
            # already counted itself expired when its own wait lapsed).
            self._inflight.complete(job, "expired")
            return
        try:
            result = jobs_mod.execute(job.prepared)
        except BaseException as err:  # noqa: BLE001 — workers never die
            classified = classify_error(err)
            self.stats.bump("failed")
            self.stats.bump("executed")
            self._inflight.complete(
                job,
                "error",
                (classified.kind, str(classified), classified.exit_code),
            )
            return
        self.stats.bump("completed")
        self.stats.bump("executed")
        done = time.monotonic()
        self.stats.observe_latency(
            job.request.job,
            job.started_at - job.accepted_at,
            done - job.accepted_at,
        )
        self._inflight.complete(job, "ok", result)

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def _emit_request(self, job: InFlightJob, status: str, deduped: bool) -> None:
        now = time.monotonic()
        started = job.started_at or now
        self.engine._emit(RequestEvent(
            job=job.request.job,
            status=status,
            deduped=deduped,
            queue_seconds=max(0.0, started - job.accepted_at),
            run_seconds=max(0.0, now - started) if job.started_at else 0.0,
        ))

    def stats_payload(self, include_events: bool = False) -> Dict[str, Any]:
        service = self.stats.to_dict()
        service["queue_depth"] = len(self._queue)
        service["queue_limit"] = self._queue.limit
        service["inflight"] = len(self._inflight)
        service["workers"] = self.workers
        engine = self.engine.snapshot()
        if not include_events:
            engine.pop("events", None)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "service": service,
            "engine": engine,
        }

    def _log_line(self, payload: Dict[str, Any]) -> None:
        if self._log_stream is None:
            return
        try:
            self._log_stream.write(json.dumps(payload, sort_keys=True) + "\n")
            self._log_stream.flush()
        except (OSError, ValueError):
            pass

    def _log_loop(self) -> None:
        while not self._stopped.wait(self._log_interval):
            if self._draining:
                return
            payload = self.stats.to_dict()
            payload["queue_depth"] = len(self._queue)
            self._log_line({"kind": "service_stats", **payload})
            # The most recent request events, rendered through the same
            # typed-event serializer as --trace-json.
            recent = [
                event_to_dict(e)
                for e in self.engine.events[-5:]
                if isinstance(e, RequestEvent)
            ]
            for event in recent:
                self._log_line(event)


def serve_main(
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: int = 2,
    queue_limit: int = 64,
    log_interval: float = 30.0,
    log_stream: Optional[TextIO] = None,
    costmodel_path: Optional[str] = None,
) -> int:
    """Blocking entry point used by ``repro serve``: boot, announce,
    install SIGTERM/SIGINT drain handlers, run until stopped.

    When the fleet supervisor spawned this process as an engine shard
    it passes the shard identity through the environment
    (:data:`SHARD_ID_ENV` / :data:`SHARD_EPOCH_ENV`)."""
    import signal

    shard_id = os.environ.get(SHARD_ID_ENV, "").strip() or None
    try:
        shard_epoch = int(os.environ.get(SHARD_EPOCH_ENV, "0") or "0")
    except ValueError:
        shard_epoch = 0
    server = ReproServer(
        socket_path=socket_path,
        host=host,
        port=port,
        workers=workers,
        queue_limit=queue_limit,
        log_stream=log_stream if log_stream is not None else sys.stderr,
        log_interval=log_interval,
        shard_id=shard_id,
        shard_epoch=shard_epoch,
        costmodel_path=costmodel_path,
    )
    server.start()

    def _drain(signum, frame):  # noqa: ARG001
        threading.Thread(
            target=server.shutdown, kwargs={"drain": True}, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(f"repro serve: listening on {server.address}", file=sys.stderr)
    server.serve_forever()
    return 0
