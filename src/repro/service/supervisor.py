"""Shard supervision for the fleet tier: spawn, watch, heal.

One :class:`ShardSupervisor` owns one engine-shard subprocess (a plain
``repro serve`` daemon with a shard identity in its environment) and
drives its whole lifecycle from an asyncio task inside the fleet
router's event loop:

* **boot** — restore any warm state the ring successor replicated for
  this shard (missing journal files only; local files win), spawn the
  subprocess, and wait for its socket to answer ``ping`` within the
  boot deadline;
* **watch** — heartbeat the shard's ``health`` control job on a fixed
  interval with a hard per-probe deadline; a crashed process
  (``poll()``) is detected immediately, a hung one after
  ``miss_threshold`` consecutive missed heartbeats;
* **heal** — declare the shard dead (waking every dispatch parked on
  it so the router re-routes), kill the process, wait out a bounded
  exponential backoff, and boot again with a bumped restart epoch.

The supervisor never decides *routing* — that is the hash ring's job —
it only publishes liveness.  Everything observable (spawn, ready,
heartbeat-miss, dead, restart, restore) is emitted as a typed
:class:`~repro.engine.events.ShardEvent` and mirrored into the fleet
counters, so ``repro fleet status`` and the chaos smoke read recovery
behavior from data, not logs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import shutil
import signal
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from ..engine.engine import CHECKPOINT_DIR_ENV
from .protocol import PROTOCOL_VERSION  # noqa: F401  (re-exported context)
from .server import SHARD_EPOCH_ENV, SHARD_ID_ENV

#: Exit code a shard uses for an injected abrupt death (``os._exit``);
#: only meaningful in logs — the supervisor treats every unexpected
#: exit the same way.
SHARD_CRASH_EXIT = 86


def restart_backoff(
    restarts: int, base: float = 0.2, cap: float = 5.0
) -> float:
    """Bounded exponential backoff before restart number ``restarts``
    (1-based: the first restart waits ``base``)."""
    if restarts <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (restarts - 1)))


def replicate_files(
    src_dir: str, dst_dir: str, names: List[str]
) -> List[str]:
    """Copy ``names`` from a shard's checkpoint dir into its ring
    successor's replica area.  Best-effort and idempotent: a file that
    vanished mid-round (cache eviction) is skipped, not fatal."""
    copied: List[str] = []
    try:
        os.makedirs(dst_dir, exist_ok=True)
    except OSError:
        return copied
    for name in names:
        src = os.path.join(src_dir, name)
        dst = os.path.join(dst_dir, name)
        try:
            shutil.copy2(src, dst)
        except OSError:
            continue
        copied.append(name)
    return copied


def restore_missing(replica_dir: str, checkpoint_dir: str) -> List[str]:
    """Seed a (re)booting shard's checkpoint dir from its replica.

    Only files the shard does not already have locally are restored —
    the local journal survived an ordinary crash on the same host and
    is always at least as fresh as the replica; the replica matters
    when the shard's own state is gone (new host, wiped disk)."""
    restored: List[str] = []
    if not os.path.isdir(replica_dir):
        return restored
    try:
        os.makedirs(checkpoint_dir, exist_ok=True)
    except OSError:
        return restored
    for name in sorted(os.listdir(replica_dir)):
        src = os.path.join(replica_dir, name)
        dst = os.path.join(checkpoint_dir, name)
        if not os.path.isfile(src) or os.path.exists(dst):
            continue
        try:
            shutil.copy2(src, dst)
        except OSError:
            continue
        restored.append(name)
    return restored


@dataclasses.dataclass
class ShardSpec:
    """Static configuration of one engine shard."""

    shard_id: str
    socket_path: str
    checkpoint_dir: str
    replica_dir: str  # where *this shard's* state is replicated to
    workers: int = 2
    queue_limit: int = 64
    jobs: int = 0
    passes: str = ""

    def spawn_command(self) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", self.socket_path,
            "--workers", str(self.workers),
            "--queue-limit", str(self.queue_limit),
            "--log-interval", "0",
        ]
        if self.jobs:
            cmd += ["--jobs", str(self.jobs)]
        if self.passes:
            cmd += ["--passes", self.passes]
        return cmd

    def spawn_env(self, epoch: int) -> Dict[str, str]:
        env = dict(os.environ)
        env[SHARD_ID_ENV] = self.shard_id
        env[SHARD_EPOCH_ENV] = str(epoch)
        env[CHECKPOINT_DIR_ENV] = self.checkpoint_dir
        env.pop("REPRO_SOCKET", None)
        env.setdefault("PYTHONPATH", "src")
        return env


class ShardHandle:
    """Mutable runtime state of one shard, owned by its supervisor and
    read by the router (same event loop, no locking needed)."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.proc: Optional[subprocess.Popen] = None
        self.live = False
        self.state = "booting"  # booting | live | dead | backoff
        self.epoch = 0          # restart count == current epoch
        self.consecutive_misses = 0
        self.heartbeat_misses = 0
        self.last_heartbeat_at: Optional[float] = None
        self.last_health: Optional[Dict[str, Any]] = None
        self.died_at: Optional[float] = None
        self.last_recovery_seconds: Optional[float] = None
        self.max_recovery_seconds: float = 0.0
        #: Set when the shard is declared dead; every dispatch parked
        #: on this shard races its reply read against this event.
        self.dead_event: asyncio.Event = asyncio.Event()

    @property
    def shard_id(self) -> str:
        return self.spec.shard_id

    @property
    def restarts(self) -> int:
        return self.epoch

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def status(self, now: Optional[float] = None) -> Dict[str, Any]:
        now = time.monotonic() if now is None else now
        return {
            "live": self.live,
            "state": self.state,
            "socket": self.spec.socket_path,
            "pid": self.pid,
            "epoch": self.epoch,
            "restarts": self.restarts,
            "consecutive_misses": self.consecutive_misses,
            "heartbeat_misses": self.heartbeat_misses,
            "last_heartbeat_age": (
                now - self.last_heartbeat_at
                if self.last_heartbeat_at is not None
                else None
            ),
            "last_recovery_seconds": self.last_recovery_seconds,
            "max_recovery_seconds": self.max_recovery_seconds,
            "health": self.last_health,
        }

    def kill(self) -> None:
        if self.proc is None:
            return
        pgid = self.proc.pid
        try:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass
        # The shard leads its own process group (start_new_session), so
        # this also reaps forked engine-pool workers.  They inherit the
        # shard's *listening socket* at fork: an orphaned worker keeps
        # the socket accept()-able for minutes after the shard dies,
        # and every restarted epoch then refuses to boot with "a server
        # is already listening" — a crash loop with nobody serving.
        if hasattr(os, "killpg"):
            try:
                os.killpg(pgid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass


class ShardSupervisor:
    """The per-shard healing loop (one asyncio task per shard)."""

    def __init__(
        self,
        handle: ShardHandle,
        fleet,  # FleetRouter — typed loosely to avoid an import cycle
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 1.0,
        miss_threshold: int = 3,
        boot_timeout: float = 30.0,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        max_restarts: Optional[int] = None,
    ):
        self.handle = handle
        self.fleet = fleet
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.miss_threshold = max(1, miss_threshold)
        self.boot_timeout = boot_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_restarts = max_restarts

    # ------------------------------------------------------------------
    # Lifecycle loop.
    # ------------------------------------------------------------------
    async def run(self) -> None:
        handle = self.handle
        while not self.fleet.stopping:
            booted = await self._boot()
            if self.fleet.stopping:
                return
            if booted:
                reason = await self._watch()
                if self.fleet.stopping:
                    return
                await self._declare_dead(reason)
            if (
                self.max_restarts is not None
                and handle.epoch >= self.max_restarts
            ):
                self.fleet.emit_shard_event(
                    handle.shard_id, "dead", handle.epoch,
                    detail="restart budget exhausted",
                )
                return
            handle.epoch += 1
            handle.state = "backoff"
            delay = restart_backoff(
                handle.epoch, self.backoff_base, self.backoff_cap
            )
            self.fleet.emit_shard_event(
                handle.shard_id, "restart", handle.epoch,
                detail=f"backoff {delay:.2f}s",
            )
            self.fleet.stats.restarts += 1
            await self.fleet.sleep(delay)

    async def _boot(self) -> bool:
        handle = self.handle
        spec = handle.spec
        handle.state = "booting"
        restored = restore_missing(spec.replica_dir, spec.checkpoint_dir)
        if restored:
            self.fleet.emit_shard_event(
                handle.shard_id, "restore", handle.epoch,
                detail=f"{len(restored)} journal files from replica",
            )
        try:
            # Each shard leads its own process group so kill() can take
            # down its forked engine-pool workers with it (they inherit
            # the listening socket — see kill()).
            handle.proc = subprocess.Popen(
                spec.spawn_command(),
                env=spec.spawn_env(handle.epoch),
                start_new_session=hasattr(os, "killpg"),
            )
        except OSError as err:
            self.fleet.emit_shard_event(
                handle.shard_id, "dead", handle.epoch,
                detail=f"spawn failed: {err}",
            )
            await self.fleet.sleep(
                restart_backoff(max(1, handle.epoch),
                                self.backoff_base, self.backoff_cap)
            )
            return False
        self.fleet.stats.spawns += 1
        self.fleet.emit_shard_event(
            handle.shard_id, "spawn", handle.epoch,
            detail=f"pid {handle.proc.pid}",
        )
        deadline = time.monotonic() + self.boot_timeout
        while time.monotonic() < deadline and not self.fleet.stopping:
            if handle.proc.poll() is not None:
                self.fleet.emit_shard_event(
                    handle.shard_id, "dead", handle.epoch,
                    detail=f"exited {handle.proc.returncode} during boot",
                )
                handle.kill()  # reap any process-group stragglers
                return False
            try:
                reply = await self.fleet.shard_control(
                    handle, "ping", timeout=self.heartbeat_timeout
                )
            except Exception:
                await self.fleet.sleep(0.1)
                continue
            if reply.get("status") == "ok":
                self._mark_ready()
                return True
            await self.fleet.sleep(0.1)
        if not self.fleet.stopping:
            self.fleet.emit_shard_event(
                handle.shard_id, "dead", handle.epoch,
                detail="never answered ping within boot deadline",
            )
            handle.kill()
        return False

    def _mark_ready(self) -> None:
        handle = self.handle
        handle.live = True
        handle.state = "live"
        handle.consecutive_misses = 0
        handle.dead_event = asyncio.Event()
        handle.last_heartbeat_at = time.monotonic()
        if handle.died_at is not None:
            recovery = time.monotonic() - handle.died_at
            handle.last_recovery_seconds = recovery
            handle.max_recovery_seconds = max(
                handle.max_recovery_seconds, recovery
            )
            handle.died_at = None
        self.fleet.note_shard_ready(handle)
        self.fleet.emit_shard_event(
            handle.shard_id, "ready", handle.epoch,
            detail=f"pid {handle.pid}",
        )

    async def _watch(self) -> str:
        """Heartbeat until the shard dies; returns the death reason."""
        handle = self.handle
        while not self.fleet.stopping:
            await self.fleet.sleep(self.heartbeat_interval)
            if self.fleet.stopping:
                return "fleet stopping"
            if handle.proc is not None and handle.proc.poll() is not None:
                return f"process exited {handle.proc.returncode}"
            try:
                reply = await self.fleet.shard_control(
                    handle, "health", timeout=self.heartbeat_timeout
                )
                ok = reply.get("status") == "ok"
            except Exception:
                ok = False
            if ok:
                handle.consecutive_misses = 0
                handle.last_heartbeat_at = time.monotonic()
                handle.last_health = reply.get("result")
            else:
                handle.consecutive_misses += 1
                handle.heartbeat_misses += 1
                self.fleet.stats.heartbeat_misses += 1
                self.fleet.emit_shard_event(
                    handle.shard_id, "heartbeat-miss", handle.epoch,
                    detail=f"{handle.consecutive_misses}/"
                           f"{self.miss_threshold}",
                )
                if handle.consecutive_misses >= self.miss_threshold:
                    return (
                        f"unresponsive ({handle.consecutive_misses} "
                        "missed heartbeats)"
                    )
        return "fleet stopping"

    async def _declare_dead(self, reason: str) -> None:
        handle = self.handle
        handle.live = False
        handle.state = "dead"
        handle.died_at = time.monotonic()
        handle.dead_event.set()  # wake every dispatch parked on us
        self.fleet.note_shard_dead(handle)
        self.fleet.emit_shard_event(
            handle.shard_id, "dead", handle.epoch, detail=reason
        )
        # kill() blocks on process waits (up to ~7s for a shard whose
        # drain wedged); run it off-loop so heartbeats of the OTHER
        # shards — and every in-flight dispatch — keep moving.
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, handle.kill)
        if handle.proc is not None and handle.proc.poll() is None:
            self.fleet.emit_shard_event(
                handle.shard_id, "dead", handle.epoch,
                detail=f"pid {handle.pid} survived kill",
            )


__all__ = [
    "SHARD_CRASH_EXIT",
    "ShardHandle",
    "ShardSpec",
    "ShardSupervisor",
    "replicate_files",
    "restart_backoff",
    "restore_missing",
]
