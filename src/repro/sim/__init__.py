"""GPGPU-Sim-like simulator substrate.

Functional SIMT execution of the PTX-subset IR plus a cycle-approximate
SM timing model: GTO warp scheduling, a banked L1 with finite MSHRs, an
L2 slice, a DRAM bandwidth model, and a GPUWattch-style energy model.
"""

from .batch import (
    BATCH_SCHEMA_VERSION,
    BatchedSimulator,
    PackedGrid,
    simulate_traces_batched,
)
from .cache import Cache, CacheStats, DRAMModel, MSHRFullError, ProbeResult
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel, attach_energy
from .executor import (
    BlockExecutor,
    BlockTrace,
    DivergentBranchError,
    WarpOp,
    run_grid,
)
from .gpu import simulate, simulate_traces, trace_grid
from .memory import BlockMemory, GlobalMemory
from .multisim import makespan, simulate_multi_sm
from .scheduler import GTOScheduler, LRRScheduler, WarpScheduler, make_scheduler
from .sm import SMSimulator
from .stats import SimResult

__all__ = [
    "BATCH_SCHEMA_VERSION",
    "BatchedSimulator",
    "BlockExecutor",
    "BlockMemory",
    "BlockTrace",
    "Cache",
    "CacheStats",
    "DEFAULT_ENERGY_MODEL",
    "DRAMModel",
    "DivergentBranchError",
    "EnergyModel",
    "GTOScheduler",
    "GlobalMemory",
    "LRRScheduler",
    "MSHRFullError",
    "PackedGrid",
    "ProbeResult",
    "SMSimulator",
    "SimResult",
    "WarpOp",
    "WarpScheduler",
    "attach_energy",
    "make_scheduler",
    "run_grid",
    "simulate",
    "simulate_multi_sm",
    "simulate_traces",
    "simulate_traces_batched",
    "makespan",
    "trace_grid",
]
