"""Batched structure-of-arrays simulation of many design points at once.

The paper's methodology sweeps one kernel across many (reg, TLP) design
points; the scalar :class:`~repro.sim.sm.SMSimulator` advances one
python-interpreter pass per point, which makes the cycle simulator the
hot path under the suite, the fast-path screen and the service.  This
module simulates a whole sweep in **one** pass:

* **Shared packing** — the block traces are compiled *once per batch*
  into structure-of-arrays form: per-warp op streams become flat arrays
  of kind codes, pre-resolved latencies, dense integer register ids and
  coalesced line addresses (:class:`PackedGrid`), replacing per-issue
  dataclass attribute walks and string-keyed scoreboard lookups.  The
  same packed grid drives every lane of the batch, and ops the trace
  shares between warps are packed once (memoized by identity).
* **Static counters** — every dynamic instruction issues exactly once
  per run regardless of TLP, so instruction counts, per-class issue
  counts and local/shared/global/bypass totals are properties of the
  *trace*, not of the timing.  They are reduced once at pack time with
  one ``np.bincount`` over the per-op category codes and never touched
  in the hot loop.
* **SoA lane state** — the batch keeps per-lane virtual clocks, active
  masks and progress counters in numpy arrays
  (:attr:`BatchedSimulator.clock` / :attr:`~BatchedSimulator.active`)
  and advances every active lane in a lockstep chunk loop; finished
  lanes are masked out and never touched again.

**Why per-lane clocks (and not one shared clock).**  The scalar
simulator jumps its clock to *its own* next event when no warp can
issue (``now = max(now + 1, next_event)``).  Under a single shared
batch clock a stalled lane would instead be re-stepped at every other
lane's issue cycle and would observe its wakeup at the first *shared*
cycle at or after the event — a different (often fractional-cycle
later) issue time, hence different cycle counts.  Bit-identity
therefore requires each lane to advance on its own clock; the batch
wins by sharing the packing, the static reductions and a much leaner
per-issue code path, not by merging clocks.  Lanes are fully
independent, so chunked lockstep interleaving is exact by construction
— the differential gate (``tools/batch_sim_gate.py``) and the property
tests hold it to zero drift against the scalar oracle.

Schema: :data:`BATCH_SCHEMA_VERSION` is folded into the engine's
simulation-cache keys, so results produced before/after a change in the
batched core's semantics can never alias.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.config import GPUConfig
from ..ptx.isa import LatencyClass, Space
from .cache import CacheStats
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel, attach_energy
from .executor import BlockTrace
from .sm import make_l2_slice_config
from .stats import SimResult

#: Revision of the batched core's semantics; folded into engine cache
#: keys (see :func:`repro.engine.cache.cache_schema_version`) so a
#: change here invalidates previously cached results wholesale.
BATCH_SCHEMA_VERSION = 1

# Packed op kind codes.
_COMPUTE = 0
_MEM = 1
_BARRIER = 2

# Packed memory modes (mirrors the branch order of
# ``SMSimulator._issue_memory`` exactly).
_MEM_SHARED = 0
_MEM_GSTORE = 1
_MEM_BYPASS = 2
_MEM_L1 = 3

# Per-op counting categories, reduced with one bincount at pack time:
# 0 alu · 1 sfu · 2 ctrl · 3 barrier · 4 local load · 5 local store ·
# 6 shared · 7 global · 8 global bypassed load · 9 local bypassed load.
_N_CATEGORIES = 10
_KIND_OF_CATEGORY = np.array(
    [_COMPUTE, _COMPUTE, _COMPUTE, _BARRIER,
     _MEM, _MEM, _MEM, _MEM, _MEM, _MEM],
    dtype=np.int8,
)


class _FastCache:
    """Bit-exact, allocation-free re-expression of :class:`sim.cache.Cache`.

    Same tag/LRU/MSHR state machine and the same stats counters, but:
    plain dicts instead of ``OrderedDict`` (``del`` + reinsert is the
    same LRU move; ``del next(iter(d))`` the same FIFO-of-insertion
    eviction as ``popitem(last=False)``), floats returned instead of
    ``ProbeResult`` objects, and MSHR exhaustion — at this level or any
    level below — reported by returning ``None`` (with :attr:`retry_at`
    holding the stalling level's earliest free-up time) instead of
    constructing and unwinding an exception per stall, a path the
    scalar simulator hits millions of times per sweep.  Addresses are
    pre-aligned to line granularity at pack time, so probes take the
    line address directly.
    """

    __slots__ = (
        "sets", "num_sets", "line_bytes", "assoc", "entries",
        "hit_latency", "next_cache", "next_mem", "mshr", "fill_heap",
        "retry_at", "accesses", "hits", "misses", "merges",
        "full_events", "evictions", "write_accesses",
    )

    def __init__(self, config, hit_latency: int, next_cache=None,
                 next_mem=None):
        self.num_sets = config.num_sets
        self.line_bytes = config.line_bytes
        self.assoc = config.associativity
        self.entries = config.mshr_entries
        self.hit_latency = hit_latency
        self.next_cache: Optional[_FastCache] = next_cache
        self.next_mem = next_mem
        self.sets: List[Dict[int, bool]] = [{} for _ in range(self.num_sets)]
        self.mshr: Dict[int, float] = {}
        self.fill_heap: List[Tuple[float, int]] = []
        self.retry_at = 0.0
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.merges = 0
        self.full_events = 0
        self.evictions = 0
        self.write_accesses = 0

    def _promote(self, now: float) -> None:
        heap = self.fill_heap
        mshr = self.mshr
        sets = self.sets
        line_bytes = self.line_bytes
        num_sets = self.num_sets
        assoc = self.assoc
        while heap and heap[0][0] <= now:
            fill_time, line = heappop(heap)
            if mshr.get(line) == fill_time:
                del mshr[line]
                cache_set = sets[(line // line_bytes) % num_sets]
                if len(cache_set) >= assoc:
                    del cache_set[next(iter(cache_set))]
                    self.evictions += 1
                cache_set[line] = True

    def probe(self, line: int, now: float, is_write: bool) -> Optional[float]:
        """Returns the data-ready cycle, or ``None`` on MSHR exhaustion
        at this or a lower level (:attr:`retry_at` holds the earliest
        free-up time of the exhausted level)."""
        fill_heap = self.fill_heap
        if fill_heap and fill_heap[0][0] <= now:
            self._promote(now)
        cache_set = self.sets[(line // self.line_bytes) % self.num_sets]
        self.accesses += 1
        if is_write:
            self.write_accesses += 1
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = True
            self.hits += 1
            return now + self.hit_latency
        self.misses += 1
        pending = self.mshr.get(line)
        if pending is not None:
            self.merges += 1
            return pending
        if len(self.mshr) >= self.entries:
            self.full_events += 1
            self.retry_at = fill_heap[0][0]
            return None
        nxt = self.next_cache
        if nxt is None:
            ready_at = self.next_mem(line, now)
        else:
            ready_at = nxt.probe(line, now, False)
            if ready_at is None:
                # Lower level exhausted before this one allocated: no
                # local MSHR entry, exactly like the scalar's unwound
                # exception (stats partially updated, no allocation).
                self.retry_at = nxt.retry_at
                return None
        self.mshr[line] = ready_at
        heappush(self.fill_heap, (ready_at, line))
        return ready_at

    def probe_no_allocate(self, line: int, now: float) -> Optional[float]:
        """Write-evict access (Fermi global stores)."""
        if self.fill_heap and self.fill_heap[0][0] <= now:
            self._promote(now)
        cache_set = self.sets[(line // self.line_bytes) % self.num_sets]
        self.accesses += 1
        self.write_accesses += 1
        if line in cache_set:
            del cache_set[line]
            self.evictions += 1
        nxt = self.next_cache
        if nxt is None:
            return self.next_mem(line, now)
        ready = nxt.probe(line, now, False)
        if ready is None:
            self.retry_at = nxt.retry_at
        return ready

    def stats(self) -> CacheStats:
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            mshr_merges=self.merges,
            mshr_full_events=self.full_events,
            evictions=self.evictions,
            write_accesses=self.write_accesses,
        )


class _FastDram:
    """Re-expression of :class:`sim.cache.DRAMModel` (same arithmetic)."""

    __slots__ = (
        "latency", "bytes_per_cycle", "line_bytes", "busy_until",
        "transactions", "bytes_transferred",
    )

    def __init__(self, latency: int, bytes_per_cycle: float, line_bytes: int):
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.line_bytes = line_bytes
        self.busy_until = 0.0
        self.transactions = 0
        self.bytes_transferred = 0

    def access(self, line_addr: int, now: float) -> float:
        service_start = max(now, self.busy_until)
        transfer = self.line_bytes / self.bytes_per_cycle
        self.busy_until = service_start + transfer
        self.transactions += 1
        self.bytes_transferred += self.line_bytes
        return service_start + transfer + self.latency


class _Warp:
    __slots__ = ("pc", "ops", "n", "rr", "slot", "barrier_arrival")

    def __init__(self, ops, slot: int, nregs: int):
        self.pc = 0
        self.ops = ops
        self.n = len(ops)
        self.rr = [0.0] * nregs
        self.slot = slot
        self.barrier_arrival = 0.0


class _Sched:
    """Inline GTO/LRR scheduler state (same picks, same tie-breaks).

    Two deliberate departures from the scalar scheduler's *data
    structures* (the pick sequence is provably unchanged):

    * **GTO side channel** — the greedy warp never round-trips through
      the pending heap.  Its single next-ready time lives in
      :attr:`gready` (``None`` while the warp is being issued); the
      side channel is flushed back into the heap the moment another
      warp takes over the greedy slot, so the (time, warp-id) multiset
      — and therefore every pick and every event jump — stays identical
      to the scalar scheduler's.  GTO pins issue to one warp for long
      runs, so this removes the majority of all heap traffic.
    * **Eligible list** — the scalar keeps an eligible *heap* plus a
      membership set with lazy deletion because its API allows stale
      entries.  Here every live warp holds exactly one token at a time
      (a pending entry, an eligible entry, or the greedy side channel),
      so eligibility is a plain list: the pick is ``min()`` — the same
      lowest-warp-id choice the heap makes — and the list is almost
      always one or two entries long.
    """

    __slots__ = ("pending", "eligible", "greedy", "gready", "last")

    def __init__(self):
        self.pending: List[Tuple[float, int]] = []
        self.eligible: List[int] = []
        self.greedy: Optional[int] = None  # GTO
        self.gready: Optional[float] = None  # greedy warp's parked time
        self.last: int = -1  # LRR

    def add(self, warp_id: int, ready_at: float, now: float) -> None:
        if ready_at <= now:
            self.eligible.append(warp_id)
        else:
            heappush(self.pending, (ready_at, warp_id))

    def next_event(self) -> Optional[float]:
        if self.eligible:
            return 0.0
        t = self.pending[0][0] if self.pending else None
        g = self.gready if self.greedy is not None else None
        if g is not None and (t is None or g < t):
            return g
        return t


class _Slot:
    __slots__ = ("live", "barrier_count", "waiters")

    def __init__(self):
        self.live = 0
        self.barrier_count = 0
        self.waiters: List[int] = []


def _pack_op(op, reg_index: Dict[str, int], alu: int, sfu: int, ctrl: int,
             shared_lat: int, line_bytes: int) -> Tuple[tuple, int]:
    """Compile one :class:`WarpOp` to its uniform tuple + category code."""
    setdefault = reg_index.setdefault
    dst = op.dst
    dst_idx = -1 if dst is None else setdefault(dst, len(reg_index))
    srcs = tuple(setdefault(s, len(reg_index)) for s in op.srcs)
    kind = op.kind
    if kind is LatencyClass.MEM:
        space = op.space
        is_store = op.is_store
        bypass_load = op.bypass_l1 and not is_store
        if space is Space.LOCAL:
            category = 5 if is_store else (9 if bypass_load else 4)
        elif space is Space.SHARED:
            category = 6
        else:
            category = 8 if bypass_load else 7
        if space is Space.SHARED:
            cost = shared_lat + 2 * (op.conflict - 1)
            return (_MEM, _MEM_SHARED, cost, dst_idx, srcs, (), False), 6
        if is_store and space is Space.GLOBAL:
            mode = _MEM_GSTORE
        elif bypass_load:
            mode = _MEM_BYPASS
        else:
            mode = _MEM_L1
        # Align once here so probes skip per-access line arithmetic
        # (the executor already emits aligned lines; this is a no-op
        # guard against traces packed with a different geometry).
        lines = tuple(a - a % line_bytes for a in op.lines)
        return (_MEM, mode, 0, dst_idx, srcs, lines, is_store), category
    if kind is LatencyClass.BARRIER:
        return (_BARRIER, 0, 0, -1, srcs, (), False), 3
    if kind is LatencyClass.ALU:
        return (_COMPUTE, alu, 0, dst_idx, srcs, (), False), 0
    if kind is LatencyClass.SFU:
        return (_COMPUTE, sfu, 0, dst_idx, srcs, (), False), 1
    # CTRL: issue latency doubles as the post-issue pipeline bubble.
    return (_COMPUTE, ctrl, ctrl, dst_idx, srcs, (), False), 2


class PackedGrid:
    """Traces compiled to structure-of-arrays form, shared by all lanes.

    ``blocks`` holds per-block lists of per-warp op streams; each op is
    a uniform 7-tuple ``(kind, a, b, dst, srcs, lines, store)``:

    ==========  =======================================================
    kind        ``_COMPUTE`` / ``_MEM`` / ``_BARRIER``
    a           compute: issue latency; mem: memory mode
    b           compute: post-issue bubble (ctrl); mem-shared: the full
                pre-resolved shared-memory cost ``lat + 2*(conflict-1)``
    dst         dense register index of the destination (-1: none)
    srcs        tuple of dense source register indices
    lines       coalesced cache-line addresses (mem only)
    store       bool, mem mode ``_MEM_L1`` only
    ==========  =======================================================

    Ops are memoized by object identity: the trace executor appends the
    *same* ``WarpOp`` object to every warp of a block for uniform
    instructions, so each is compiled once.  ``category_codes`` (one
    int8 per dynamic instruction of the whole grid) is the SoA row the
    static counters are reduced from in a single ``np.bincount``;
    ``kind_codes`` is its projection onto the three kind codes.
    """

    __slots__ = (
        "blocks", "num_warps", "nregs", "category_codes", "kind_codes",
        "instructions", "issued_by_class", "local_load_insts",
        "local_store_insts", "shared_insts", "global_insts",
        "bypassed_insts",
    )

    def __init__(self, traces: Sequence[BlockTrace], config: GPUConfig):
        lat = config.latency
        alu, sfu, ctrl = lat.alu, lat.sfu, lat.ctrl
        shared_lat = lat.shared_mem
        line_bytes = config.l1.line_bytes
        reg_index: Dict[str, int] = {}
        memo: Dict[int, Tuple[tuple, int]] = {}
        self.blocks: List[List[List[tuple]]] = []
        self.num_warps: List[int] = []
        codes: List[int] = []
        code_append = codes.append
        memo_get = memo.get
        for trace in traces:
            packed_block: List[List[tuple]] = []
            for ops in trace.warp_ops:
                stream: List[tuple] = []
                append = stream.append
                for op in ops:
                    key = id(op)
                    entry = memo_get(key)
                    if entry is None:
                        entry = memo[key] = _pack_op(
                            op, reg_index, alu, sfu, ctrl, shared_lat,
                            line_bytes,
                        )
                    append(entry[0])
                    code_append(entry[1])
                packed_block.append(stream)
            self.blocks.append(packed_block)
            self.num_warps.append(trace.num_warps)
        self.nregs = len(reg_index)
        self.category_codes = np.asarray(codes, dtype=np.int8)
        self.kind_codes = _KIND_OF_CATEGORY[self.category_codes]
        counts = np.bincount(self.category_codes, minlength=_N_CATEGORIES)
        self.instructions = len(codes)
        by_class: Dict[str, int] = {}
        for category, klass in (
            (0, LatencyClass.ALU), (1, LatencyClass.SFU),
            (2, LatencyClass.CTRL), (3, LatencyClass.BARRIER),
        ):
            if counts[category]:
                by_class[klass.value] = int(counts[category])
        mem_total = int(counts[4:].sum())
        if mem_total:
            by_class[LatencyClass.MEM.value] = mem_total
        self.issued_by_class = by_class
        self.local_load_insts = int(counts[4] + counts[9])
        self.local_store_insts = int(counts[5])
        self.shared_insts = int(counts[6])
        self.global_insts = int(counts[7] + counts[8])
        self.bypassed_insts = int(counts[8] + counts[9])


class _Lane:
    """One design point's timing state, advanced in chunks.

    A faithful re-expression of :class:`~repro.sim.sm.SMSimulator.run`
    over a :class:`PackedGrid`: the same scheduler heaps, the same
    cache/DRAM state machines, the same float arithmetic in the same
    order — verified bit-identical by the differential gate.
    """

    __slots__ = (
        "config", "packed", "tlp", "requested_tlp", "gto",
        "scheds", "nsched", "warps", "slots", "next_block",
        "blocks_executed", "active_warps", "now", "finish",
        "idle_cycles", "mshr_stall_events", "mshr_stall_cycles",
        "barrier_stall_cycles", "l1", "l2", "dram", "block_launch",
        "deadlocked",
    )

    def __init__(
        self,
        config: GPUConfig,
        packed: PackedGrid,
        tlp: int,
        scheduler: str,
    ):
        if tlp <= 0:
            raise ValueError("tlp must be positive")
        if scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler kind {scheduler!r}")
        self.config = config
        self.packed = packed
        nblocks = len(packed.blocks)
        self.tlp = min(tlp, nblocks) if nblocks else tlp
        self.requested_tlp = tlp
        self.gto = scheduler == "gto"
        lat = config.latency
        self.dram = _FastDram(
            latency=lat.dram - lat.l2_hit,
            bytes_per_cycle=config.dram_bytes_per_cycle,
            line_bytes=config.l1.line_bytes,
        )
        self.l2 = _FastCache(
            make_l2_slice_config(config),
            hit_latency=lat.l2_hit - lat.l1_hit,
            next_mem=self.dram.access,
        )
        self.l1 = _FastCache(
            config.l1, hit_latency=lat.l1_hit, next_cache=self.l2
        )
        self.block_launch = lat.block_launch
        self.nsched = config.num_schedulers
        self.scheds = [_Sched() for _ in range(self.nsched)]
        self.warps: List[_Warp] = []
        self.slots = [_Slot() for _ in range(self.tlp)]
        self.next_block = 0
        self.blocks_executed = 0
        self.active_warps = 0
        self.now = 0.0
        self.finish: Optional[float] = None
        self.idle_cycles = 0.0
        self.mshr_stall_events = 0
        self.mshr_stall_cycles = 0.0
        self.barrier_stall_cycles = 0.0
        self.deadlocked = False
        # Launch the initial wave (SMSimulator.start(0.0)).
        for slot_idx in range(self.tlp):
            if self.next_block < nblocks:
                self._launch_block(slot_idx, 0.0)
        if self.active_warps == 0:
            self.finish = 0.0

    # ------------------------------------------------------------------
    def _launch_block(self, slot_idx: int, now: float) -> None:
        packed = self.packed
        block_idx = self.next_block
        block = packed.blocks[block_idx]
        slot = self.slots[slot_idx]
        slot.live = packed.num_warps[block_idx]
        slot.barrier_count = 0
        slot.waiters = []
        self.next_block = block_idx + 1
        launch_at = now + self.block_launch
        nregs = packed.nregs
        nsched = self.nsched
        scheds = self.scheds
        warps = self.warps
        for stream in block:
            warp_id = len(warps)
            warps.append(_Warp(stream, slot_idx, nregs))
            self.active_warps += 1
            scheds[warp_id % nsched].add(warp_id, launch_at, now)

    def _retire_warp(self, warp_id: int, warp: _Warp, sched: _Sched,
                     now: float) -> None:
        self.active_warps -= 1
        if sched.greedy == warp_id:
            sched.greedy = None
            sched.gready = None
        slot = self.slots[warp.slot]
        slot.live -= 1
        if slot.live == 0:
            self.blocks_executed += 1
            if self.next_block < len(self.packed.blocks):
                self._launch_block(warp.slot, now)

    def _next_ready(self, warp: _Warp, base: float) -> float:
        dep = base
        rr = warp.rr
        for src in warp.ops[warp.pc][4]:
            t = rr[src]
            if t > dep:
                dep = t
        return dep

    def _arrive_barrier(self, warp_id: int, warp: _Warp, sched: _Sched,
                        now: float) -> None:
        slot = self.slots[warp.slot]
        if sched.greedy == warp_id:
            sched.greedy = None
            sched.gready = None
        warp.barrier_arrival = now
        slot.barrier_count += 1
        slot.waiters.append(warp_id)
        if slot.barrier_count < slot.live:
            return
        release = now + 1
        nsched = self.nsched
        scheds = self.scheds
        warps = self.warps
        for waiting_id in slot.waiters:
            waiting = warps[waiting_id]
            self.barrier_stall_cycles += release - waiting.barrier_arrival
            wsched = scheds[waiting_id % nsched]
            if waiting.pc >= waiting.n:
                self._retire_warp(waiting_id, waiting, wsched, now)
            else:
                wsched.add(
                    waiting_id, self._next_ready(waiting, release), now
                )
        slot.barrier_count = 0
        slot.waiters = []

    # ------------------------------------------------------------------
    def _issue(self, warp_id: int, now: float, sched: _Sched) -> None:
        warp = self.warps[warp_id]
        ops = warp.ops
        op = ops[warp.pc]
        kind = op[0]

        if kind == _COMPUTE:
            dst = op[3]
            if dst >= 0:
                warp.rr[dst] = now + op[1]
            pc = warp.pc + 1
            warp.pc = pc
            if pc >= warp.n:
                self._retire_warp(warp_id, warp, sched, now)
                return
            dep = now + 1 + op[2]
            srcs = ops[pc][4]
            if srcs:
                rr = warp.rr
                for src in srcs:
                    t = rr[src]
                    if t > dep:
                        dep = t
            # Re-add: dep > now always, so the scalar path is a pending
            # push; the GTO greedy warp parks in the side channel.
            if self.gto:
                sched.gready = dep
            else:
                heappush(sched.pending, (dep, warp_id))
            return

        if kind == _MEM:
            mode = op[1]
            lines = op[5]
            if mode == _MEM_L1:
                is_store = op[6]
                l1 = self.l1
                l1_probe = l1.probe
                l1_sets = l1.sets
                l1_lb = l1.line_bytes
                l1_ns = l1.num_sets
                ready = now
                for i, line in enumerate(lines):
                    t = now + i
                    fh = l1.fill_heap
                    cs = l1_sets[(line // l1_lb) % l1_ns]
                    if (not fh or fh[0][0] > t) and line in cs:
                        # Inlined L1 hit (same stats/LRU as ``probe``).
                        del cs[line]
                        cs[line] = True
                        l1.accesses += 1
                        l1.hits += 1
                        if is_store:
                            l1.write_accesses += 1
                        r = t + l1.hit_latency
                    else:
                        r = l1_probe(line, t, is_store)
                    if r is None:
                        # MSHR congestion stall, inlined (hot on
                        # memory-bound kernels).
                        retry = l1.retry_at
                        floor = now + 1
                        if floor > retry:
                            retry = floor
                        self.mshr_stall_events += 1
                        self.mshr_stall_cycles += retry - now
                        heappush(sched.pending, (retry, warp_id))
                        if sched.greedy == warp_id:
                            sched.greedy = None
                            sched.gready = None
                        return
                    if r > ready:
                        ready = r
                complete = now + 1 + len(lines) if is_store else ready
            elif mode == _MEM_SHARED:
                complete = now + op[2]
            elif mode == _MEM_GSTORE:
                l1 = self.l1
                probe_no_alloc = l1.probe_no_allocate
                for i, line in enumerate(lines):
                    if probe_no_alloc(line, now + i) is None:
                        self._mshr_stall(warp_id, l1.retry_at, now, sched)
                        return
                complete = now + 1 + len(lines)
            else:  # _MEM_BYPASS
                l2 = self.l2
                l2_probe = l2.probe
                ready = now
                for i, line in enumerate(lines):
                    r = l2_probe(line, now + i, False)
                    if r is None:
                        self._mshr_stall(warp_id, l2.retry_at, now, sched)
                        return
                    if r > ready:
                        ready = r
                complete = ready
            dst = op[3]
            if dst >= 0:
                warp.rr[dst] = complete
            pc = warp.pc + 1
            warp.pc = pc
            if pc >= warp.n:
                self._retire_warp(warp_id, warp, sched, now)
                return
            dep = now + 1
            srcs = ops[pc][4]
            if srcs:
                rr = warp.rr
                for src in srcs:
                    t = rr[src]
                    if t > dep:
                        dep = t
            if self.gto:
                sched.gready = dep
            else:
                heappush(sched.pending, (dep, warp_id))
            return

        # _BARRIER
        warp.pc += 1
        self._arrive_barrier(warp_id, warp, sched, now)

    def _mshr_stall(self, warp_id: int, retry_at: float, now: float,
                    sched: _Sched) -> None:
        retry = max(retry_at, now + 1)
        self.mshr_stall_events += 1
        self.mshr_stall_cycles += retry - now
        heappush(sched.pending, (retry, warp_id))
        if sched.greedy == warp_id:
            sched.greedy = None
            sched.gready = None

    # ------------------------------------------------------------------
    def next_event_time(self) -> Optional[float]:
        times = [
            t for t in (s.next_event() for s in self.scheds) if t is not None
        ]
        return min(times) if times else None

    def advance(self, budget: int) -> bool:
        """Run up to ``budget`` iterations of the scalar run loop on
        this lane's own clock; returns False once the lane finished."""
        if self.finish is not None:
            return False
        now = self.now
        scheds = self.scheds
        warps = self.warps
        gto = self.gto
        push = heappush
        pop = heappop
        for _ in range(budget):
            issued = False
            # Earliest event among the scheds that did NOT issue this
            # cycle, folded into the main pass so a no-issue cycle
            # needs no second scan to find its jump target.
            next_time = None
            for sched in scheds:
                if gto:
                    g = sched.greedy
                    if g is not None and sched.gready <= now:
                        # Greedy chain: no heap traffic at all.  The
                        # compute case and the single-line L1 access —
                        # together the bulk of all issue slots — are
                        # inlined; everything else falls through to
                        # ``_issue``.
                        warp = warps[g]
                        wops = warp.ops
                        pc = warp.pc
                        op = wops[pc]
                        k = op[0]
                        if k == _COMPUTE:
                            rr = warp.rr
                            dst = op[3]
                            if dst >= 0:
                                rr[dst] = now + op[1]
                            pc += 1
                            warp.pc = pc
                            if pc < warp.n:
                                dep = now + 1 + op[2]
                                for src in wops[pc][4]:
                                    t = rr[src]
                                    if t > dep:
                                        dep = t
                                sched.gready = dep
                            else:
                                self._retire_warp(g, warp, sched, now)
                            issued = True
                            continue
                        lines = op[5]
                        if k == _MEM and op[1] == _MEM_L1 \
                                and len(lines) == 1:
                            line = lines[0]
                            is_store = op[6]
                            l1 = self.l1
                            fh = l1.fill_heap
                            cs = l1.sets[
                                (line // l1.line_bytes) % l1.num_sets
                            ]
                            if (not fh or fh[0][0] > now) and line in cs:
                                # L1 hit with no fills due: same stats,
                                # same LRU move as ``probe``, no call.
                                del cs[line]
                                cs[line] = True
                                l1.accesses += 1
                                l1.hits += 1
                                if is_store:
                                    l1.write_accesses += 1
                                r = now + l1.hit_latency
                            else:
                                r = l1.probe(line, now, is_store)
                            if r is None:
                                retry = l1.retry_at
                                floor = now + 1
                                if floor > retry:
                                    retry = floor
                                self.mshr_stall_events += 1
                                self.mshr_stall_cycles += retry - now
                                push(sched.pending, (retry, g))
                                sched.greedy = None
                                sched.gready = None
                            else:
                                rr = warp.rr
                                dst = op[3]
                                if dst >= 0:
                                    rr[dst] = now + 2 if is_store else r
                                pc += 1
                                warp.pc = pc
                                if pc < warp.n:
                                    dep = now + 1
                                    for src in wops[pc][4]:
                                        t = rr[src]
                                        if t > dep:
                                            dep = t
                                    sched.gready = dep
                                else:
                                    self._retire_warp(g, warp, sched, now)
                            issued = True
                            continue
                        sched.gready = None
                        self._issue(g, now, sched)
                        issued = True
                        continue
                    pending = sched.pending
                    elig = sched.eligible
                    if pending and pending[0][0] <= now:
                        while pending and pending[0][0] <= now:
                            elig.append(pop(pending)[1])
                    if not elig:
                        t = pending[0][0] if pending else None
                        if g is not None:
                            gr = sched.gready
                            if t is None or gr < t:
                                t = gr
                        if t is not None and (next_time is None
                                              or t < next_time):
                            next_time = t
                        continue
                    if len(elig) == 1:
                        warp_id = elig.pop()
                    else:
                        warp_id = min(elig)
                        elig.remove(warp_id)
                    if g is not None:
                        # Greedy switch: flush the parked warp back to
                        # the heap so the multiset matches the scalar's.
                        push(pending, (sched.gready, g))
                    sched.greedy = warp_id
                    sched.gready = None
                    self._issue(warp_id, now, sched)
                    issued = True
                else:  # lrr
                    pending = sched.pending
                    elig = sched.eligible
                    if pending and pending[0][0] <= now:
                        while pending and pending[0][0] <= now:
                            elig.append(pop(pending)[1])
                    if not elig:
                        if pending:
                            t = pending[0][0]
                            if next_time is None or t < next_time:
                                next_time = t
                        continue
                    last = sched.last
                    above = [w for w in elig if w > last]
                    warp_id = min(above) if above else min(elig)
                    elig.remove(warp_id)
                    sched.last = warp_id
                    self._issue(warp_id, now, sched)
                    issued = True
            if self.active_warps == 0:
                self.now = now
                self.finish = now
                return False
            if issued:
                now += 1
            else:
                if next_time is None:
                    self.now = now
                    self.deadlocked = True
                    raise RuntimeError(
                        "simulation deadlock: active warps but no pending "
                        "events (mismatched barriers?)"
                    )
                self.idle_cycles += max(0.0, next_time - now)
                now = max(now + 1, next_time)
        self.now = now
        return True

    # ------------------------------------------------------------------
    def result(self) -> SimResult:
        packed = self.packed
        return SimResult(
            cycles=self.finish if self.finish is not None else self.now,
            instructions=packed.instructions,
            tlp=self.requested_tlp,
            blocks_executed=self.blocks_executed,
            l1=self.l1.stats(),
            l2=self.l2.stats(),
            mshr_stall_events=self.mshr_stall_events,
            mshr_stall_cycles=self.mshr_stall_cycles,
            barrier_stall_cycles=self.barrier_stall_cycles,
            idle_cycles=self.idle_cycles,
            local_load_insts=packed.local_load_insts,
            local_store_insts=packed.local_store_insts,
            shared_insts=packed.shared_insts,
            global_insts=packed.global_insts,
            bypassed_insts=packed.bypassed_insts,
            dram_transactions=self.dram.transactions,
            dram_bytes=self.dram.bytes_transferred,
            issued_by_class=dict(packed.issued_by_class),
        )


class BatchedSimulator:
    """Simulate N design points of one kernel in a single batched pass.

    ``tlps`` names the design points (one lane each; duplicates are
    allowed and produce duplicate lanes).  All lanes share one
    :class:`PackedGrid`; per-lane clocks, active masks and issue
    progress live in SoA numpy arrays (:attr:`clock`, :attr:`active`)
    and the run loop advances every active lane in lockstep chunks,
    masking lanes out as they retire.  Results are bit-identical to
    running :class:`~repro.sim.sm.SMSimulator` once per TLP.
    """

    def __init__(
        self,
        config: GPUConfig,
        traces: Sequence[BlockTrace],
        tlps: Sequence[int],
        scheduler: str = "gto",
        chunk: int = 4096,
    ):
        if not tlps:
            raise ValueError("batch needs at least one design point")
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self.config = config
        self.scheduler = scheduler
        self.chunk = chunk
        self.packed = PackedGrid(traces, config)
        self.lanes = [
            _Lane(config, self.packed, tlp, scheduler) for tlp in tlps
        ]
        n = len(self.lanes)
        #: SoA batch state: per-lane virtual clocks and activity mask.
        self.clock = np.zeros(n, dtype=np.float64)
        self.active = np.array(
            [lane.finish is None for lane in self.lanes], dtype=bool
        )
        self.steps = 0

    def next_event_time(self) -> Optional[float]:
        """Earliest pending event across the batch (min over active
        lanes); ``None`` once every lane has retired."""
        times = [
            t
            for lane, live in zip(self.lanes, self.active)
            if live
            for t in (lane.next_event_time(),)
            if t is not None
        ]
        return min(times) if times else None

    def step(self) -> bool:
        """Advance every active lane by one chunk; returns True while
        any lane remains active."""
        lanes = self.lanes
        active = self.active
        clock = self.clock
        chunk = self.chunk
        any_live = False
        for i in np.flatnonzero(active):
            lane = lanes[i]
            live = lane.advance(chunk)
            clock[i] = lane.now
            if not live:
                active[i] = False
            else:
                any_live = True
        self.steps += 1
        return any_live

    def run(self) -> List[SimResult]:
        # The hot loop allocates no reference cycles (heap tuples and
        # floats only), but the packed grid holds hundreds of thousands
        # of container objects the cyclic GC would otherwise rescan on
        # every generational collection mid-run.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            while self.step():
                pass
        finally:
            if was_enabled:
                gc.enable()
        return [lane.result() for lane in self.lanes]


def simulate_traces_batched(
    traces: Sequence[BlockTrace],
    config: GPUConfig,
    tlps: Sequence[int],
    scheduler: str = "gto",
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> List[SimResult]:
    """Batched counterpart of :func:`repro.sim.gpu.simulate_traces`:
    one result per requested TLP, bit-identical to the scalar path."""
    sim = BatchedSimulator(config, traces, tlps, scheduler=scheduler)
    return [attach_energy(result, energy_model) for result in sim.run()]
