"""Set-associative cache with LRU replacement and a finite MSHR table.

This is the L1 data cache of paper Table 2 (32 KB, 4-way, 128 B lines,
LRU, 32 MSHR entries) and, with different geometry, the per-SM slice of
the L2.  Two behaviours matter for reproducing the paper:

* **capacity contention** — more concurrent thread blocks enlarge the
  aggregate working set past 32 KB and the hit rate collapses (Figure
  5a), which is why thread throttling helps;
* **MSHR congestion** — when every miss-status register is busy, new
  misses cannot even be issued and the pipeline stalls (Figure 5b's
  "stall caused by the congestion of cache requests").

The cache is timing-aware but event-free: a probe at time ``now``
returns when the data will be ready.  A missed line enters the MSHR
table and is promoted into the tag store only once its fill time has
passed, so back-to-back accesses to an in-flight line merge into the
outstanding request instead of fake-hitting.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import OrderedDict
from typing import Callable, Dict, List, Tuple

from ..arch.config import CacheConfig


@dataclasses.dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_full_events: int = 0
    evictions: int = 0
    write_accesses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


@dataclasses.dataclass(frozen=True)
class ProbeResult:
    """Outcome of one cache probe."""

    ready_at: float  # cycle at which the data is available
    hit: bool
    filled_by_mshr: bool = False


class MSHRFullError(Exception):
    """No miss-status register is free; the request cannot be accepted.

    Carries the earliest cycle at which an entry frees up so the caller
    can model the stall precisely.
    """

    def __init__(self, retry_at: float):
        super().__init__(f"MSHR full until cycle {retry_at}")
        self.retry_at = retry_at


class Cache:
    """One set-associative, LRU, write-allocate cache level.

    ``next_level`` is a callable ``(line_addr, now) -> ready_at`` that
    services misses (the L2 probe, or the DRAM model).
    """

    def __init__(
        self,
        config: CacheConfig,
        hit_latency: int,
        next_level: Callable[[int, float], float],
        name: str = "cache",
    ):
        self.config = config
        self.hit_latency = hit_latency
        self.next_level = next_level
        self.name = name
        self.stats = CacheStats()
        self._sets = [OrderedDict() for _ in range(config.num_sets)]
        self._mshr: Dict[int, float] = {}  # line addr -> fill time
        self._fill_heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    def _set_of(self, line_addr: int) -> OrderedDict:
        return self._sets[(line_addr // self.config.line_bytes) % self.config.num_sets]

    def line_of(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def _promote_fills(self, now: float) -> None:
        """Move MSHR entries whose data has arrived into the tag store."""
        heap = self._fill_heap
        while heap and heap[0][0] <= now:
            fill_time, line = heapq.heappop(heap)
            if self._mshr.get(line) == fill_time:
                del self._mshr[line]
                self._fill(line, self._set_of(line))

    # ------------------------------------------------------------------
    def probe(self, addr: int, now: float, is_write: bool = False) -> ProbeResult:
        """Access the cache; raises :class:`MSHRFullError` on congestion."""
        self._promote_fills(now)
        line = self.line_of(addr)
        cache_set = self._set_of(line)
        self.stats.accesses += 1
        if is_write:
            self.stats.write_accesses += 1

        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return ProbeResult(ready_at=now + self.hit_latency, hit=True)

        self.stats.misses += 1
        pending = self._mshr.get(line)
        if pending is not None:
            # Merge into the in-flight request.
            self.stats.mshr_merges += 1
            return ProbeResult(ready_at=pending, hit=False, filled_by_mshr=True)
        if len(self._mshr) >= self.config.mshr_entries:
            self.stats.mshr_full_events += 1
            raise MSHRFullError(retry_at=self._fill_heap[0][0])

        ready_at = self.next_level(line, now)
        self._mshr[line] = ready_at
        heapq.heappush(self._fill_heap, (ready_at, line))
        return ProbeResult(ready_at=ready_at, hit=False)

    def probe_no_allocate(self, addr: int, now: float) -> ProbeResult:
        """Write-evict access (Fermi global stores): hit evicts, miss bypasses."""
        self._promote_fills(now)
        line = self.line_of(addr)
        cache_set = self._set_of(line)
        self.stats.accesses += 1
        self.stats.write_accesses += 1
        if line in cache_set:
            del cache_set[line]
            self.stats.evictions += 1
        ready_at = self.next_level(line, now)
        return ProbeResult(ready_at=ready_at, hit=False)

    def _fill(self, line: int, cache_set: OrderedDict) -> None:
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = True

    def contains(self, addr: int) -> bool:
        line = self.line_of(addr)
        return line in self._set_of(line)

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._mshr.clear()
        self._fill_heap.clear()


class DRAMModel:
    """Latency + bandwidth model for the DRAM behind the L2.

    Each transaction occupies the channel for ``line_bytes /
    bytes_per_cycle`` cycles; requests arriving while the channel is
    busy queue up, which is how bandwidth saturation at high TLP emerges
    (the paper's Section 4.1 extension: "we extend it by modeling the
    memory bandwidth").
    """

    def __init__(self, latency: int, bytes_per_cycle: float, line_bytes: int = 128):
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.line_bytes = line_bytes
        self.busy_until = 0.0
        self.transactions = 0
        self.bytes_transferred = 0

    def access(self, line_addr: int, now: float) -> float:
        service_start = max(now, self.busy_until)
        transfer = self.line_bytes / self.bytes_per_cycle
        self.busy_until = service_start + transfer
        self.transactions += 1
        self.bytes_transferred += self.line_bytes
        return service_start + transfer + self.latency

    @property
    def queue_delay(self) -> float:
        return self.busy_until

    def reset(self) -> None:
        self.busy_until = 0.0
        self.transactions = 0
        self.bytes_transferred = 0
