"""GPUWattch-style activity-counter energy model.

The paper reports energy with GPUWattch [16]; what its evaluation needs
is the *relative* energy of design points (CRAT saves ~16.5% vs OptTLP,
Section 7.2), which an activity-based model captures: each event class
costs a fixed energy, plus leakage proportional to runtime.  The event
energies below follow the per-access numbers published for Fermi-class
GPUs (GPUWattch / McPAT derived), in nanojoules per warp-instruction or
per transaction.
"""

from __future__ import annotations

import dataclasses

from .stats import SimResult


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (nJ) and static power (W at the SM clock)."""

    alu_op: float = 0.8
    sfu_op: float = 2.0
    register_access: float = 0.15
    shared_access: float = 1.2
    l1_access: float = 1.5
    l2_access: float = 8.0
    dram_access: float = 40.0
    static_watts: float = 2.5
    clock_mhz: int = 700

    def energy_nj(self, result: SimResult) -> float:
        """Total energy (nJ) for one SM's execution."""
        classes = result.issued_by_class
        alu = classes.get("alu", 0) + classes.get("ctrl", 0) + classes.get(
            "barrier", 0
        )
        sfu = classes.get("sfu", 0)
        mem = classes.get("mem", 0)
        # Roughly three register-file accesses per instruction (2R 1W).
        rf = 3 * result.instructions
        dynamic = (
            alu * self.alu_op
            + sfu * self.sfu_op
            + rf * self.register_access
            + result.shared_insts * self.shared_access
            + result.l1.accesses * self.l1_access
            + result.l2.accesses * self.l2_access
            + result.dram_transactions * self.dram_access
        )
        seconds = result.cycles / (self.clock_mhz * 1e6)
        static = self.static_watts * seconds * 1e9  # W * s -> nJ
        return dynamic + static


DEFAULT_ENERGY_MODEL = EnergyModel()


def attach_energy(result: SimResult, model: EnergyModel = DEFAULT_ENERGY_MODEL):
    """Fill ``result.energy_nj`` in place and return the result."""
    result.energy_nj = model.energy_nj(result)
    return result
