"""Functional SIMT execution of PTX-subset kernels.

One thread block executes with all its lanes vectorized as numpy
arrays; branches must be block-uniform (the workload generator uses
predication for lane-divergent behaviour, as GPU compilers do for short
conditionals).  Execution produces:

* **functional effects** — real values flow through registers and
  memory, so tests can compare an allocated/spilled kernel's output
  against the original bit-for-bit;
* **a timing trace** — per warp, a list of :class:`WarpOp` carrying the
  dependency names and, for memory operations, the coalesced cache-line
  addresses that drive the cache/DRAM model.

Local-memory addresses are interleaved across threads the way hardware
does it (word ``w`` of thread ``t`` sits at ``w * nthreads + t``), so
same-slot spill accesses from a warp coalesce into few transactions —
this is what makes spill traffic cache-able and is essential to the
paper's ``Cost_local`` behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ptx.instruction import Imm, Instruction, Label, Reg, Sreg, Sym
from ..ptx.isa import CmpOp, DType, LatencyClass, Opcode, Space
from ..ptx.module import Kernel
from .memory import BlockMemory, GlobalMemory
from .values import LOCAL_BASE, cast_lanes, np_dtype

#: Physical base for interleaved local-memory storage (cache addressing).
LOCAL_PHYS_BASE = 0x8000_0000

_MAX_DYNAMIC_INSTRUCTIONS = 2_000_000


class DivergentBranchError(RuntimeError):
    """A branch guard was not uniform across the block."""


@dataclasses.dataclass(frozen=True)
class WarpOp:
    """One dynamic instruction of one warp, ready for the timing model.

    ``lines`` holds the coalesced cache-line addresses for global/local
    accesses (empty for everything else); ``conflict`` is the shared
    memory bank-serialization factor (1 = conflict-free).
    """

    kind: LatencyClass
    opcode: Opcode
    dst: Optional[str]
    srcs: Tuple[str, ...]
    space: Optional[Space] = None
    is_store: bool = False
    lines: Tuple[int, ...] = ()
    bytes: int = 0
    conflict: int = 1
    #: ld.global.cg: skip the L1, service from the L2 directly.
    bypass_l1: bool = False


@dataclasses.dataclass
class BlockTrace:
    """The execution trace of one thread block, split per warp."""

    block_id: int
    block_size: int
    warp_ops: List[List[WarpOp]]
    instruction_count: int

    @property
    def num_warps(self) -> int:
        return len(self.warp_ops)


class BlockExecutor:
    """Executes one thread block functionally and collects its trace."""

    def __init__(
        self,
        kernel: Kernel,
        global_mem: GlobalMemory,
        block_id: int,
        grid_blocks: int,
        warp_size: int = 32,
        line_bytes: int = 128,
        shared_banks: int = 32,
    ):
        self.kernel = kernel
        self.global_mem = global_mem
        self.block_id = block_id
        self.grid_blocks = grid_blocks
        self.warp_size = warp_size
        self.line_bytes = line_bytes
        self.shared_banks = shared_banks
        self.block_size = kernel.block_size
        if self.block_size % warp_size != 0:
            raise ValueError("block size must be a multiple of the warp size")
        self.num_warps = self.block_size // warp_size
        self.block_mem = BlockMemory(kernel, self.block_size)
        self.regs: Dict[str, np.ndarray] = {}
        self._lane = np.arange(self.block_size)
        self._gtid = block_id * self.block_size + self._lane
        self._total_threads = grid_blocks * self.block_size
        # Flattened program: instructions plus a label index.
        self._program: List[Instruction] = []
        self._label_index: Dict[str, int] = {}
        for item in kernel.body:
            if isinstance(item, Label):
                self._label_index[item.name] = len(self._program)
            else:
                self._program.append(item)
        # SIMT divergence: the reconvergence (immediate post-dominator)
        # position of every branch, computed lazily on first divergence.
        self._join_of: Optional[Dict[int, Optional[int]]] = None
        self._active = np.ones(self.block_size, dtype=bool)

    def _reconvergence_points(self) -> Dict[int, Optional[int]]:
        """Map each branch's program position to its IPDOM position."""
        from ..cfg.dominators import immediate_post_dominators
        from ..cfg.graph import CFG

        cfg = CFG(self.kernel)
        ipdom = immediate_post_dominators(cfg)
        joins: Dict[int, Optional[int]] = {}
        for block in cfg.blocks:
            target = ipdom.get(block.index)
            join_pos = cfg.blocks[target].start if target is not None else None
            for pos, inst in block.positions():
                if inst.is_branch:
                    joins[pos] = join_pos
        return joins

    # ------------------------------------------------------------------
    def run(self) -> BlockTrace:
        """Execute the block to completion; returns its warp traces.

        Divergent *forward* branches are handled with the standard
        SIMT/IPDOM reconvergence stack: the fall-through path runs
        first under the not-taken mask, then the taken path, and the
        full mask is restored at the branch's immediate post-dominator.
        Divergent backward branches (data-dependent trip counts across
        a block) are out of the modeled subset and raise
        :class:`DivergentBranchError`.
        """
        warp_ops: List[List[WarpOp]] = [[] for _ in range(self.num_warps)]
        pc = 0
        executed = 0
        program = self._program
        n = len(program)
        self._active = np.ones(self.block_size, dtype=bool)
        # Stack entries: [join_pos, other_pc, other_mask, saved_mask, pending]
        simt_stack: List[list] = []
        while pc < n:
            # Reconvergence: switch to the pending path or restore.
            while simt_stack and pc == simt_stack[-1][0]:
                entry = simt_stack[-1]
                if entry[4]:
                    entry[4] = False
                    self._active = entry[2]
                    pc = entry[1]
                else:
                    self._active = entry[3]
                    simt_stack.pop()
            if pc >= n:
                break
            executed += 1
            if executed > _MAX_DYNAMIC_INSTRUCTIONS:
                raise RuntimeError(
                    f"kernel {self.kernel.name} exceeded the dynamic "
                    f"instruction budget ({_MAX_DYNAMIC_INSTRUCTIONS})"
                )
            inst = program[pc]
            opcode = inst.opcode
            if opcode in (Opcode.RET, Opcode.EXIT):
                if simt_stack:
                    raise DivergentBranchError(
                        f"kernel {self.kernel.name}: exit inside a divergent "
                        "region is outside the modeled subset"
                    )
                break
            mask = self._guard_mask(inst)
            if opcode is Opcode.BRA:
                pc = self._branch(inst, mask, pc, simt_stack, warp_ops)
                continue
            if opcode is Opcode.BAR:
                if simt_stack:
                    raise DivergentBranchError(
                        f"kernel {self.kernel.name}: barrier inside a "
                        "divergent region would deadlock"
                    )
                self._record_simple(warp_ops, inst)
                pc += 1
                continue
            if opcode is Opcode.LD:
                self._exec_load(inst, mask, warp_ops)
            elif opcode is Opcode.ST:
                self._exec_store(inst, mask, warp_ops)
            else:
                self._exec_compute(inst, mask)
                self._record_simple(warp_ops, inst)
            pc += 1
        total = sum(len(ops) for ops in warp_ops)
        return BlockTrace(
            block_id=self.block_id,
            block_size=self.block_size,
            warp_ops=warp_ops,
            instruction_count=total,
        )

    def _branch(self, inst, mask, pc, simt_stack, warp_ops) -> int:
        """Execute one branch; returns the next pc."""
        self._record_simple(warp_ops, inst)
        target = self._label_index[inst.target]
        active = self._active
        taken = mask  # guard mask already restricted to active lanes
        n_taken = int(taken.sum())
        n_active = int(active.sum())
        if n_taken == n_active:
            return target
        if n_taken == 0:
            return pc + 1
        # Divergence.
        if target <= pc:
            raise DivergentBranchError(
                f"kernel {self.kernel.name}: divergent backward branch at "
                f"{inst} (data-dependent trip counts are outside the "
                "modeled subset; use predication)"
            )
        if self._join_of is None:
            self._join_of = self._reconvergence_points()
        join = self._join_of.get(pc)
        if join is None:
            raise DivergentBranchError(
                f"kernel {self.kernel.name}: divergent branch at {inst} "
                "has no reconvergence point"
            )
        simt_stack.append([join, target, taken.copy(), active.copy(), True])
        self._active = active & ~taken
        return pc + 1

    # ------------------------------------------------------------------
    # Operand evaluation.
    # ------------------------------------------------------------------
    def _read(self, operand, dtype: Optional[DType]) -> np.ndarray:
        if isinstance(operand, Reg):
            value = self.regs.get(operand.name)
            if value is None:
                value = np.zeros(self.block_size, dtype=np_dtype(operand.dtype))
                self.regs[operand.name] = value
            return value
        if isinstance(operand, Imm):
            nd = np_dtype(dtype or operand.dtype)
            return np.full(self.block_size, operand.value, dtype=nd)
        if isinstance(operand, Sreg):
            return self._special(operand.name)
        if isinstance(operand, Sym):
            base = self._sym_base(operand.name)
            return np.full(self.block_size, base, dtype=np.uint64)
        raise TypeError(f"cannot evaluate operand {operand!r}")

    def _sym_base(self, name: str) -> int:
        if name in self.block_mem.sym_base:
            return self.block_mem.sym_base[name]
        if name in self.global_mem.param_base:
            return self.global_mem.param_base[name]
        raise KeyError(f"unknown symbol {name!r}")

    def _special(self, name: str) -> np.ndarray:
        if name == "%tid.x":
            return self._lane.astype(np.uint32)
        if name == "%ctaid.x":
            return np.full(self.block_size, self.block_id, dtype=np.uint32)
        if name == "%ntid.x":
            return np.full(self.block_size, self.block_size, dtype=np.uint32)
        if name == "%nctaid.x":
            return np.full(self.block_size, self.grid_blocks, dtype=np.uint32)
        if name == "%laneid":
            return (self._lane % self.warp_size).astype(np.uint32)
        if name == "%warpid":
            return (self._lane // self.warp_size).astype(np.uint32)
        if name in ("%tid.y", "%ctaid.y", "%ntid.y", "%nctaid.y"):
            return np.zeros(self.block_size, dtype=np.uint32)
        raise KeyError(f"unknown special register {name!r}")

    def _guard_mask(self, inst: Instruction) -> np.ndarray:
        if inst.guard is None:
            return self._active
        mask = self._read(inst.guard, DType.PRED).astype(bool)
        if inst.guard_negated:
            mask = ~mask
        return mask & self._active

    def _uniform(self, mask: np.ndarray, inst: Instruction) -> bool:
        if mask.all():
            return True
        if not mask.any():
            return False
        raise DivergentBranchError(
            f"kernel {self.kernel.name}: divergent branch at {inst} "
            "(the IR subset requires block-uniform branches; use "
            "predication/selp for lane-dependent behaviour)"
        )

    def _write(self, dst: Reg, value: np.ndarray, mask: np.ndarray) -> None:
        nd = np_dtype(dst.dtype)
        value = cast_lanes(np.asarray(value), dst.dtype)
        if mask.all():
            self.regs[dst.name] = value.copy()
            return
        old = self.regs.get(dst.name)
        if old is None:
            old = np.zeros(self.block_size, dtype=nd)
        self.regs[dst.name] = np.where(mask, value, old)

    # ------------------------------------------------------------------
    # Instruction semantics.
    # ------------------------------------------------------------------
    def _exec_compute(self, inst: Instruction, mask: np.ndarray) -> None:
        opcode = inst.opcode
        dtype = inst.dtype
        nd = np_dtype(dtype) if dtype else None

        def src(i: int) -> np.ndarray:
            value = self._read(inst.srcs[i], dtype)
            if nd is not None and opcode is not Opcode.SELP and value.dtype != nd:
                if opcode in (Opcode.SHL, Opcode.SHR) and i == 1:
                    return value  # shift amounts keep their own type
                value = cast_lanes(value, dtype)
            return value

        with np.errstate(all="ignore"):
            if opcode is Opcode.MOV:
                result = src(0)
            elif opcode is Opcode.CVT:
                result = cast_lanes(self._read(inst.srcs[0], None), dtype)
            elif opcode is Opcode.ADD:
                result = src(0) + src(1)
            elif opcode is Opcode.SUB:
                result = src(0) - src(1)
            elif opcode is Opcode.MUL:
                result = src(0) * src(1)
            elif opcode in (Opcode.MAD, Opcode.FMA):
                result = src(0) * src(1) + src(2)
            elif opcode is Opcode.DIV:
                a, b = src(0), src(1)
                if dtype.is_float:
                    result = a / b
                else:
                    safe = np.where(b == 0, 1, b)
                    result = np.where(b == 0, 0, a // safe)
            elif opcode is Opcode.REM:
                a, b = src(0), src(1)
                safe = np.where(b == 0, 1, b)
                result = np.where(b == 0, 0, a % safe)
            elif opcode is Opcode.MIN:
                result = np.minimum(src(0), src(1))
            elif opcode is Opcode.MAX:
                result = np.maximum(src(0), src(1))
            elif opcode is Opcode.NEG:
                result = -src(0)
            elif opcode is Opcode.ABS:
                result = np.abs(src(0))
            elif opcode is Opcode.AND:
                result = src(0) & src(1)
            elif opcode is Opcode.OR:
                result = src(0) | src(1)
            elif opcode is Opcode.XOR:
                result = src(0) ^ src(1)
            elif opcode is Opcode.NOT:
                result = ~src(0)
            elif opcode is Opcode.SHL:
                result = src(0) << cast_lanes(src(1), DType.U32).astype(np.uint32) % np.uint32(dtype.bits)
            elif opcode is Opcode.SHR:
                result = src(0) >> cast_lanes(src(1), DType.U32).astype(np.uint32) % np.uint32(dtype.bits)
            elif opcode is Opcode.SQRT:
                result = np.sqrt(src(0))
            elif opcode is Opcode.RSQRT:
                result = 1.0 / np.sqrt(src(0))
            elif opcode is Opcode.RCP:
                result = 1.0 / src(0)
            elif opcode is Opcode.SIN:
                result = np.sin(src(0))
            elif opcode is Opcode.COS:
                result = np.cos(src(0))
            elif opcode is Opcode.LG2:
                result = np.log2(np.abs(src(0)) + 1e-30)
            elif opcode is Opcode.EX2:
                result = np.exp2(src(0))
            elif opcode is Opcode.SETP:
                result = self._compare(inst.cmp, src(0), src(1))
            elif opcode is Opcode.SELP:
                pred = self._read(inst.srcs[2], DType.PRED).astype(bool)
                result = np.where(pred, src(0), src(1))
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"opcode {opcode}")
        self._write(inst.dst, result, mask)

    @staticmethod
    def _compare(cmp: CmpOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if cmp is CmpOp.EQ:
            return a == b
        if cmp is CmpOp.NE:
            return a != b
        if cmp is CmpOp.LT:
            return a < b
        if cmp is CmpOp.LE:
            return a <= b
        if cmp is CmpOp.GT:
            return a > b
        return a >= b

    # ------------------------------------------------------------------
    # Memory semantics + address capture.
    # ------------------------------------------------------------------
    def _addresses(self, inst: Instruction) -> np.ndarray:
        base = inst.mem.base
        if isinstance(base, Sym):
            addrs = np.full(
                self.block_size, self._sym_base(base.name), dtype=np.uint64
            )
        else:
            addrs = cast_lanes(self._read(base, DType.U64), DType.U64)
        if inst.mem.offset:
            addrs = addrs + np.uint64(inst.mem.offset)
        return addrs

    def _exec_load(self, inst, mask, warp_ops) -> None:
        addrs = self._addresses(inst)
        dtype = inst.dtype
        if inst.space is Space.GLOBAL or inst.space is Space.CONST:
            values = self.global_mem.load(addrs, dtype, mask)
        elif inst.space is Space.SHARED:
            values = self.block_mem.load_shared(addrs, dtype, mask)
        elif inst.space is Space.LOCAL:
            values = self.block_mem.load_local(addrs, dtype, mask)
        elif inst.space is Space.PARAM:
            values = self.global_mem.load(addrs, dtype, mask)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"load from {inst.space}")
        self._write(inst.dst, values, mask)
        self._record_memory(warp_ops, inst, addrs, mask, is_store=False)

    def _exec_store(self, inst, mask, warp_ops) -> None:
        addrs = self._addresses(inst)
        dtype = inst.dtype
        values = cast_lanes(self._read(inst.srcs[0], dtype), dtype)
        if inst.space is Space.GLOBAL:
            self.global_mem.store(addrs, values, dtype, mask)
        elif inst.space is Space.SHARED:
            self.block_mem.store_shared(addrs, values, dtype, mask)
        elif inst.space is Space.LOCAL:
            self.block_mem.store_local(addrs, values, dtype, mask)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"store to {inst.space}")
        self._record_memory(warp_ops, inst, addrs, mask, is_store=True)

    # ------------------------------------------------------------------
    # Trace recording.
    # ------------------------------------------------------------------
    def _record_simple(self, warp_ops, inst: Instruction) -> None:
        kind = inst.latency_class
        dst = inst.dst.name if inst.dst is not None else None
        srcs = tuple(r.name for r in inst.uses())
        op = WarpOp(kind=kind, opcode=inst.opcode, dst=dst, srcs=srcs)
        for ops in warp_ops:
            ops.append(op)

    def _record_memory(self, warp_ops, inst, addrs, mask, is_store) -> None:
        dst = inst.dst.name if inst.dst is not None else None
        srcs = tuple(r.name for r in inst.uses())
        width = inst.dtype.bytes if inst.dtype else 4
        space = inst.space
        ws = self.warp_size
        if space is Space.LOCAL:
            cache_addrs = self._interleave_local(addrs)
        elif space in (Space.GLOBAL, Space.CONST, Space.PARAM):
            cache_addrs = addrs.astype(np.int64)
        else:
            cache_addrs = None

        for w, ops in enumerate(warp_ops):
            lanes = slice(w * ws, (w + 1) * ws)
            wmask = mask[lanes]
            if not wmask.any():
                # Fully predicated-off warps still issue the instruction.
                ops.append(
                    WarpOp(
                        kind=LatencyClass.ALU,
                        opcode=inst.opcode,
                        dst=dst,
                        srcs=srcs,
                    )
                )
                continue
            conflict = 1
            lines: Tuple[int, ...] = ()
            if cache_addrs is not None:
                active = cache_addrs[lanes][wmask]
                line_ids = np.unique(active // self.line_bytes) * self.line_bytes
                lines = tuple(int(x) for x in line_ids)
            elif space is Space.SHARED:
                active = addrs[lanes][wmask].astype(np.int64)
                words = active // 4
                banks = words % self.shared_banks
                # Serialization factor: max distinct words mapping to one bank.
                if len(words):
                    uniq = np.unique(np.stack([banks, words]), axis=1)
                    counts = np.bincount(
                        uniq[0].astype(np.int64), minlength=self.shared_banks
                    )
                    conflict = max(1, int(counts.max()))
            ops.append(
                WarpOp(
                    kind=LatencyClass.MEM,
                    opcode=inst.opcode,
                    dst=dst,
                    srcs=srcs,
                    space=space,
                    is_store=is_store,
                    lines=lines,
                    bytes=int(wmask.sum()) * width,
                    conflict=conflict,
                    bypass_l1=(inst.cache_op == "cg"),
                )
            )

    def _interleave_local(self, addrs: np.ndarray) -> np.ndarray:
        """Map per-thread local offsets to interleaved physical addresses."""
        words = (addrs.astype(np.int64) - int(LOCAL_BASE)) // 4
        return (
            LOCAL_PHYS_BASE
            + (words * self._total_threads + self._gtid) * 4
        ).astype(np.int64)


def run_grid(
    kernel: Kernel,
    global_mem: GlobalMemory,
    grid_blocks: int,
    warp_size: int = 32,
    line_bytes: int = 128,
) -> List[BlockTrace]:
    """Execute every block of a grid sequentially; returns all traces.

    Blocks in the modeled subset do not communicate, so sequential
    functional execution is equivalent to any interleaving.
    """
    traces = []
    for block_id in range(grid_blocks):
        executor = BlockExecutor(
            kernel,
            global_mem,
            block_id=block_id,
            grid_blocks=grid_blocks,
            warp_size=warp_size,
            line_bytes=line_bytes,
        )
        traces.append(executor.run())
    return traces
