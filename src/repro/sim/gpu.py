"""Top-level simulation entry points.

``simulate(kernel, config, tlp)`` runs the whole pipeline: build the
global-memory image, execute every block functionally to produce warp
traces, then replay the traces through the SM timing model at the given
TLP.  Because the traces depend only on the kernel and grid (not on the
TLP), :func:`trace_grid` exposes the expensive functional step so TLP
sweeps (OptTLP profiling, design-space exploration) can reuse it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.config import GPUConfig
from ..ptx.module import Kernel
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel, attach_energy
from .executor import BlockTrace, run_grid
from .memory import GlobalMemory
from .sm import SMSimulator
from .stats import SimResult


def trace_grid(
    kernel: Kernel,
    config: GPUConfig,
    grid_blocks: int,
    param_sizes: Optional[Dict[str, int]] = None,
    global_mem: Optional[GlobalMemory] = None,
) -> List[BlockTrace]:
    """Functionally execute the grid once, returning per-block traces."""
    if global_mem is None:
        global_mem = GlobalMemory(kernel, param_sizes)
    return run_grid(
        kernel,
        global_mem,
        grid_blocks,
        warp_size=config.warp_size,
        line_bytes=config.l1.line_bytes,
    )


def simulate_traces(
    traces: List[BlockTrace],
    config: GPUConfig,
    tlp: int,
    scheduler: str = "gto",
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> SimResult:
    """Replay pre-computed traces through the SM timing model."""
    sim = SMSimulator(config, traces, tlp=tlp, scheduler=scheduler)
    result = sim.run()
    return attach_energy(result, energy_model)


def simulate(
    kernel: Kernel,
    config: GPUConfig,
    tlp: int,
    grid_blocks: Optional[int] = None,
    param_sizes: Optional[Dict[str, int]] = None,
    scheduler: str = "gto",
) -> SimResult:
    """Simulate ``kernel`` at a given TLP (blocks per SM).

    ``grid_blocks`` defaults to two waves at the hardware block limit,
    enough for steady-state behaviour without simulating a full app.
    """
    if grid_blocks is None:
        grid_blocks = 2 * config.max_blocks_per_sm
    traces = trace_grid(kernel, config, grid_blocks, param_sizes)
    return simulate_traces(traces, config, tlp, scheduler=scheduler)
