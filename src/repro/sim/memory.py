"""Functional memory images for the three PTX state spaces.

:class:`GlobalMemory` is shared by the whole grid and holds one buffer
per kernel parameter.  :class:`BlockMemory` gives each thread block its
shared-memory image and each thread its private local-memory image
(spill stacks).  All accesses are vectorized: a warp/block supplies a
lane-address array and an active-lane mask.

Addresses are virtual (see :mod:`repro.sim.values`); accesses that wrap
past a buffer are folded back in (synthetic workloads size their
buffers correctly, so wrapping only guards against pathological
generated addresses rather than silently corrupting neighbours).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..ptx.isa import DType, Space
from ..ptx.module import Kernel
from .values import GLOBAL_BASE, LOCAL_BASE, SHARED_BASE, np_dtype

_DEFAULT_PARAM_BYTES = 1 << 20  # 1 MiB per parameter unless specified


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class GlobalMemory:
    """The grid-wide global-memory image with per-parameter buffers."""

    def __init__(
        self,
        kernel: Kernel,
        param_sizes: Optional[Dict[str, int]] = None,
        fill_seed: Optional[int] = 12345,
    ):
        param_sizes = param_sizes or {}
        self.param_base: Dict[str, int] = {}
        offset = 0
        for param in kernel.params:
            size = _align_up(param_sizes.get(param.name, _DEFAULT_PARAM_BYTES), 256)
            self.param_base[param.name] = int(GLOBAL_BASE) + offset
            offset += size
        self.size = max(offset, 256)
        self.data = np.zeros(self.size, dtype=np.uint8)
        if fill_seed is not None:
            rng = np.random.default_rng(fill_seed)
            # Fill with small positive floats so float kernels stay finite.
            as_f32 = self.data[: self.size // 4 * 4].view(np.float32)
            as_f32[:] = rng.uniform(0.5, 1.5, size=as_f32.shape).astype(np.float32)

    def base_of(self, name: str) -> int:
        return self.param_base[name]

    def load(self, addrs: np.ndarray, dtype: DType, mask: np.ndarray) -> np.ndarray:
        return _gather(self.data, addrs - GLOBAL_BASE, dtype, mask)

    def store(
        self, addrs: np.ndarray, values: np.ndarray, dtype: DType, mask: np.ndarray
    ) -> None:
        _scatter(self.data, addrs - GLOBAL_BASE, values, dtype, mask)

    def read_buffer(self, name: str, dtype: DType, count: int) -> np.ndarray:
        """Read back a parameter buffer (test/inspection helper)."""
        start = self.base_of(name) - int(GLOBAL_BASE)
        width = dtype.bytes
        raw = self.data[start : start + count * width]
        return raw.view(np_dtype(dtype)).copy()

    def write_buffer(self, name: str, values: np.ndarray) -> None:
        """Fill a parameter buffer with test data."""
        start = self.base_of(name) - int(GLOBAL_BASE)
        raw = values.tobytes()
        self.data[start : start + len(raw)] = np.frombuffer(raw, dtype=np.uint8)


class BlockMemory:
    """Shared + local memory images for one thread block.

    Local memory is thread-private: storage is ``(block_size,
    local_bytes)`` and lane ``i`` accesses row ``i``.  Shared memory is
    one image for the block.
    """

    def __init__(self, kernel: Kernel, block_size: int):
        self.block_size = block_size
        shared_bytes = max(kernel.shared_bytes(), 4)
        local_bytes = max(kernel.local_bytes(), 4)
        self.shared = np.zeros(_align_up(shared_bytes, 8), dtype=np.uint8)
        self.local = np.zeros(
            (block_size, _align_up(local_bytes, 8)), dtype=np.uint8
        )
        # Symbol bases within each space.
        self.sym_base: Dict[str, int] = {}
        shared_off = 0
        local_off = 0
        for arr in kernel.arrays:
            if arr.space is Space.SHARED:
                shared_off = _align_up(shared_off, arr.align)
                self.sym_base[arr.name] = int(SHARED_BASE) + shared_off
                shared_off += arr.size_bytes
            else:
                local_off = _align_up(local_off, arr.align)
                self.sym_base[arr.name] = int(LOCAL_BASE) + local_off
                local_off += arr.size_bytes

    def load_shared(
        self, addrs: np.ndarray, dtype: DType, mask: np.ndarray
    ) -> np.ndarray:
        return _gather(self.shared, addrs - SHARED_BASE, dtype, mask)

    def store_shared(
        self, addrs: np.ndarray, values: np.ndarray, dtype: DType, mask: np.ndarray
    ) -> None:
        _scatter(self.shared, addrs - SHARED_BASE, values, dtype, mask)

    def load_local(
        self, addrs: np.ndarray, dtype: DType, mask: np.ndarray
    ) -> np.ndarray:
        offsets = (addrs - LOCAL_BASE).astype(np.int64)
        return _gather_rows(self.local, offsets, dtype, mask)

    def store_local(
        self, addrs: np.ndarray, values: np.ndarray, dtype: DType, mask: np.ndarray
    ) -> None:
        offsets = (addrs - LOCAL_BASE).astype(np.int64)
        _scatter_rows(self.local, offsets, values, dtype, mask)


# ----------------------------------------------------------------------
# Vectorized gather/scatter over byte images.
# ----------------------------------------------------------------------
def _gather(image: np.ndarray, offsets: np.ndarray, dtype: DType, mask: np.ndarray):
    width = dtype.bytes
    nd = np_dtype(dtype)
    n_words = image.size // width
    view = image[: n_words * width].view(nd)
    idx = (offsets.astype(np.int64) // width) % n_words
    out = view[idx]
    if not mask.all():
        out = np.where(mask, out, nd(0))
    return out.astype(nd)


def _scatter(image, offsets, values, dtype: DType, mask) -> None:
    width = dtype.bytes
    nd = np_dtype(dtype)
    n_words = image.size // width
    view = image[: n_words * width].view(nd)
    idx = (offsets.astype(np.int64) // width) % n_words
    view[idx[mask]] = values.astype(nd)[mask]


def _gather_rows(image2d, offsets, dtype: DType, mask):
    width = dtype.bytes
    nd = np_dtype(dtype)
    rows = image2d.shape[0]
    cols = image2d.shape[1] // width
    view = image2d[:, : cols * width].view(nd)
    lane = np.arange(rows)
    idx = (offsets // width) % cols
    out = view[lane, idx]
    if not mask.all():
        out = np.where(mask, out, nd(0))
    return out.astype(nd)


def _scatter_rows(image2d, offsets, values, dtype: DType, mask) -> None:
    width = dtype.bytes
    nd = np_dtype(dtype)
    rows = image2d.shape[0]
    cols = image2d.shape[1] // width
    view = image2d[:, : cols * width].view(nd)
    lane = np.arange(rows)[mask]
    idx = ((offsets // width) % cols)[mask]
    view[lane, idx] = values.astype(nd)[mask]
