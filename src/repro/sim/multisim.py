"""Multi-SM simulation: N SMs sharing the L2 and the DRAM channel.

The paper simulates 15 SMs; the per-figure benchmarks here simulate one
SM with an interference-discounted L2 slice, which is far cheaper.
This module provides the full-chip mode used to *validate* that the
single-SM model is representative: every SM runs the same kernel at the
same TLP, blocks are distributed round-robin, the L2 is the whole
768 KB chip cache contended by everyone, and the DRAM channel carries
``num_sms`` times the per-SM bandwidth share.

SMs advance in lock-step over a global clock; when no SM can issue, the
clock jumps to the earliest pending event.
"""

from __future__ import annotations

from typing import List, Optional

from ..arch.config import GPUConfig
from .cache import Cache, DRAMModel
from .executor import BlockTrace
from .sm import SMSimulator, make_l2_slice_config
from .stats import SimResult


def simulate_multi_sm(
    traces: List[BlockTrace],
    config: GPUConfig,
    tlp: int,
    num_sms: Optional[int] = None,
    scheduler: str = "gto",
) -> List[SimResult]:
    """Simulate ``num_sms`` SMs (default: the config's count) sharing
    the chip-level L2 and DRAM; returns exactly one :class:`SimResult`
    per SM — including SMs the round-robin deal left without blocks,
    which report zero cycles and zero work.

    The block list is dealt round-robin across SMs, mirroring the
    hardware block scheduler's greedy distribution.
    """
    if tlp <= 0:
        raise ValueError("tlp must be positive")
    n = config.num_sms if num_sms is None else num_sms
    if n <= 0:
        raise ValueError("num_sms must be positive")
    lat = config.latency

    dram = DRAMModel(
        latency=lat.dram - lat.l2_hit,
        bytes_per_cycle=config.dram_bytes_per_cycle * n,
        line_bytes=config.l1.line_bytes,
    )
    l2 = Cache(
        make_l2_slice_config(config, whole=True),
        hit_latency=lat.l2_hit - lat.l1_hit,
        next_level=dram.access,
        name="l2-shared",
    )

    # One simulator per SM slot, trace-less SMs included: the returned
    # list always has ``n`` entries, so callers can index it by SM and
    # chip-level aggregates (makespan, per-SM load skew) see the idle
    # SMs instead of a silently shorter list.
    sms = [
        SMSimulator(
            config,
            traces[sm_index::n],
            tlp=tlp,
            scheduler=scheduler,
            shared_l2=l2,
            shared_dram=dram,
        )
        for sm_index in range(n)
    ]

    now = 0.0
    # ``None`` = "has not finished yet"; a numeric value is the cycle
    # the SM drained (0.0 is a legitimate finish time for an SM with no
    # blocks, which the old ``finish_at[idx] > 0`` test misreported as
    # running until the chip-wide end).
    finish_at: List[Optional[float]] = [None] * n
    for idx, sm in enumerate(sms):
        sm.start(now)
        if not sm.active():
            finish_at[idx] = now
    while any(sm.active() for sm in sms):
        issued = False
        for idx, sm in enumerate(sms):
            if not sm.active():
                continue
            if sm.step(now):
                issued = True
            if not sm.active():
                finish_at[idx] = now
        if issued:
            now += 1
            continue
        times = [
            t
            for sm in sms
            if sm.active()
            for t in [sm.next_event_time()]
            if t is not None
        ]
        if not times:
            break
        now = max(now + 1, min(times))

    results = []
    for idx, sm in enumerate(sms):
        cycles = finish_at[idx] if finish_at[idx] is not None else now
        results.append(sm.result(cycles))
    return results


def makespan(results: List[SimResult]) -> float:
    """Chip-level completion time: the slowest SM."""
    return max(r.cycles for r in results) if results else 0.0
