"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin.

The paper's configuration uses two GTO schedulers per SM (Table 2), and
its static OptTLP analysis mimics GTO (Section 4.1): a greedy scheduler
keeps issuing from the same warp until it stalls, then falls back to
the *oldest* ready warp.  GTO naturally concentrates progress in few
warps, which is what makes "TLP at first block completion" a good
OptTLP estimator.

Schedulers are event-driven: warps park in a time-ordered pending heap
and become *eligible* when their next instruction's dependencies are
satisfied; picking among eligibles is O(log W).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple


class WarpScheduler:
    """Base class: event-driven ready-warp bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self._pending: List[Tuple[float, int]] = []  # (ready time, warp id)
        self._eligible: List[int] = []  # min-heap of warp ids
        self._eligible_set: Set[int] = set()

    def add(self, warp_id: int, ready_at: float, now: float) -> None:
        """Register a warp that may issue at ``ready_at``."""
        if ready_at <= now:
            if warp_id not in self._eligible_set:
                heapq.heappush(self._eligible, warp_id)
                self._eligible_set.add(warp_id)
        else:
            heapq.heappush(self._pending, (ready_at, warp_id))

    def refill(self, now: float) -> None:
        """Promote pending warps whose ready time has arrived."""
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, warp_id = heapq.heappop(pending)
            if warp_id not in self._eligible_set:
                heapq.heappush(self._eligible, warp_id)
                self._eligible_set.add(warp_id)

    def next_event(self) -> Optional[float]:
        """Earliest future time at which a parked warp becomes ready."""
        if self._eligible_set:
            return 0.0
        if self._pending:
            return self._pending[0][0]
        return None

    def has_work(self) -> bool:
        return bool(self._eligible_set or self._pending)

    def _pop_oldest(self) -> Optional[int]:
        while self._eligible:
            warp_id = heapq.heappop(self._eligible)
            if warp_id in self._eligible_set:
                self._eligible_set.discard(warp_id)
                return warp_id
        return None

    def _take(self, warp_id: int) -> None:
        self._eligible_set.discard(warp_id)
        # Lazy deletion: the heap entry is skipped when popped later.

    def pick(self, now: float) -> Optional[int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def forget(self, warp_id: int) -> None:
        """Drop any preference for this warp (finished/stalled); no-op here."""


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest: stick with the last warp, else oldest ready."""

    def __init__(self, name: str = "gto"):
        super().__init__(name)
        self._greedy: Optional[int] = None

    def pick(self, now: float) -> Optional[int]:
        self.refill(now)
        if self._greedy is not None and self._greedy in self._eligible_set:
            warp_id = self._greedy
            self._take(warp_id)
            return warp_id
        warp_id = self._pop_oldest()
        if warp_id is not None:
            self._greedy = warp_id
        return warp_id

    def forget(self, warp_id: int) -> None:
        """Drop greedy preference (warp finished or hit a barrier)."""
        if self._greedy == warp_id:
            self._greedy = None


class LRRScheduler(WarpScheduler):
    """Loose round-robin: rotate through ready warps."""

    def __init__(self, name: str = "lrr"):
        super().__init__(name)
        self._last: int = -1

    def pick(self, now: float) -> Optional[int]:
        self.refill(now)
        if not self._eligible_set:
            return None
        # Choose the smallest id greater than the last issued, wrapping.
        above = [w for w in self._eligible_set if w > self._last]
        warp_id = min(above) if above else min(self._eligible_set)
        self._take(warp_id)
        self._last = warp_id
        return warp_id

    def forget(self, warp_id: int) -> None:
        pass


def make_scheduler(kind: str) -> WarpScheduler:
    if kind == "gto":
        return GTOScheduler()
    if kind == "lrr":
        return LRRScheduler()
    raise ValueError(f"unknown scheduler kind {kind!r}")
